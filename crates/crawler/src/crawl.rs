//! The crawl loop: work queue, worker pool, redirect following,
//! destination classification.

use crate::stats::CrawlStats;
use crate::transport::Transport;
use crossbeam::channel;
use squatphi_domain::url::host_of;
use squatphi_html::parse;
use squatphi_render::{render_page, Bitmap, RenderOptions};
use squatphi_squat::{BrandId, BrandRegistry, SquatType};
use squatphi_web::world::MARKETPLACES;
use squatphi_web::{Device, ServeResult};
use std::collections::HashMap;

/// Crawl parameters.
#[derive(Debug, Clone)]
pub struct CrawlConfig {
    /// Worker threads.
    pub workers: usize,
    /// Redirect budget per page.
    pub max_redirects: usize,
    /// Snapshot index being crawled.
    pub snapshot: u8,
    /// Additional fetch attempts on `Unreachable` (0 = no retry). The
    /// paper's crawler sends "1-2 requests for each scan" — transient
    /// failures get one more chance before a domain is recorded dead.
    pub retries: usize,
}

impl Default for CrawlConfig {
    fn default() -> Self {
        CrawlConfig {
            workers: 8,
            max_redirects: 5,
            snapshot: 0,
            retries: 1,
        }
    }
}

/// Where a redirect chain ends, classified as in Tables 2-4.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RedirectClass {
    /// No redirect at all.
    None,
    /// Ends on the impersonated brand's own domain.
    Original,
    /// Ends on a known domain marketplace.
    Market,
    /// Ends somewhere else.
    Other,
}

/// One captured page (per device profile).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PageCapture {
    /// Host that finally served the page.
    pub final_host: String,
    /// The HTML body.
    pub html: String,
    /// Redirect hops taken (hosts).
    pub redirects: Vec<String>,
}

impl PageCapture {
    /// Renders the screenshot for this capture (lazily — bitmaps are too
    /// large to keep for a full crawl).
    pub fn render(&self) -> Bitmap {
        render_page(&parse(&self.html), &RenderOptions::default())
    }
}

/// Everything the crawler learned about one squatting domain.
#[derive(Debug, Clone)]
pub struct CrawlRecord {
    /// The squatting domain.
    pub domain: String,
    /// Impersonated brand.
    pub brand: BrandId,
    /// Squatting type.
    pub squat_type: SquatType,
    /// Web (desktop) capture, `None` when unreachable.
    pub web: Option<PageCapture>,
    /// Mobile capture.
    pub mobile: Option<PageCapture>,
    /// Redirect classification of the web fetch.
    pub web_redirect: RedirectClass,
    /// Redirect classification of the mobile fetch.
    pub mobile_redirect: RedirectClass,
}

impl CrawlRecord {
    /// Whether either profile got any page.
    pub fn is_live(&self) -> bool {
        self.web.is_some() || self.mobile.is_some()
    }
}

/// Crawls every `(domain, brand, type)` job with a worker pool over the
/// transport. Returns records in input order plus aggregate stats.
pub fn crawl_all(
    jobs: &[(String, BrandId, SquatType)],
    registry: &BrandRegistry,
    transport: &dyn Transport,
    config: &CrawlConfig,
) -> (Vec<CrawlRecord>, CrawlStats) {
    let brand_domains: HashMap<usize, String> = registry
        .brands()
        .iter()
        .map(|b| (b.id, b.domain.as_str().to_string()))
        .collect();
    let markets: std::collections::HashSet<&str> = MARKETPLACES.iter().copied().collect();

    let workers = config.workers.max(1);
    let (job_tx, job_rx) = channel::unbounded::<usize>();
    for i in 0..jobs.len() {
        job_tx.send(i).expect("queue open");
    }
    drop(job_tx);

    let records: Vec<CrawlRecord> = crossbeam::thread::scope(|s| {
        let mut handles = Vec::new();
        for _ in 0..workers {
            let job_rx = job_rx.clone();
            let brand_domains = &brand_domains;
            let markets = &markets;
            handles.push(s.spawn(move |_| {
                let mut out = Vec::new();
                while let Ok(i) = job_rx.recv() {
                    let (domain, brand, squat_type) = &jobs[i];
                    let (web, web_redirect) = fetch_one(
                        transport,
                        domain,
                        Device::Web,
                        config,
                        brand_domains.get(brand).map(String::as_str),
                        markets,
                    );
                    let (mobile, mobile_redirect) = fetch_one(
                        transport,
                        domain,
                        Device::Mobile,
                        config,
                        brand_domains.get(brand).map(String::as_str),
                        markets,
                    );
                    out.push((
                        i,
                        CrawlRecord {
                            domain: domain.clone(),
                            brand: *brand,
                            squat_type: *squat_type,
                            web,
                            mobile,
                            web_redirect,
                            mobile_redirect,
                        },
                    ));
                }
                out
            }));
        }
        let mut indexed: Vec<(usize, CrawlRecord)> = handles
            .into_iter()
            .flat_map(|h| h.join().expect("crawl worker panicked"))
            .collect();
        indexed.sort_by_key(|(i, _)| *i);
        indexed.into_iter().map(|(_, r)| r).collect()
    })
    .expect("crawl scope");

    let stats = CrawlStats::from_records(&records);
    (records, stats)
}

fn fetch_one(
    transport: &dyn Transport,
    domain: &str,
    device: Device,
    config: &CrawlConfig,
    brand_domain: Option<&str>,
    markets: &std::collections::HashSet<&str>,
) -> (Option<PageCapture>, RedirectClass) {
    let mut host = domain.to_string();
    let mut redirects: Vec<String> = Vec::new();
    let mut retries_left = config.retries;
    for _ in 0..=(config.max_redirects + config.retries) {
        match transport.fetch(&host, device, config.snapshot) {
            ServeResult::Page(html) => {
                let class = classify_chain(&redirects, &host, domain, brand_domain, markets);
                return (
                    Some(PageCapture {
                        final_host: host,
                        html,
                        redirects,
                    }),
                    class,
                );
            }
            ServeResult::Redirect(url) => {
                let next = host_of(&url).unwrap_or(url);
                redirects.push(next.clone());
                host = next;
            }
            ServeResult::Unreachable => {
                // Transient failures get retried before the domain is
                // written off; a failure mid-chain still classifies the
                // chain seen so far.
                if retries_left > 0 {
                    retries_left -= 1;
                    continue;
                }
                if redirects.is_empty() {
                    return (None, RedirectClass::None);
                }
                let class = classify_chain(&redirects, &host, domain, brand_domain, markets);
                return (
                    Some(PageCapture {
                        final_host: host,
                        html: String::new(),
                        redirects,
                    }),
                    class,
                );
            }
        }
    }
    (None, RedirectClass::Other) // redirect loop
}

fn classify_chain(
    redirects: &[String],
    final_host: &str,
    origin: &str,
    brand_domain: Option<&str>,
    markets: &std::collections::HashSet<&str>,
) -> RedirectClass {
    if redirects.is_empty() || final_host == origin {
        return RedirectClass::None;
    }
    if Some(final_host) == brand_domain {
        return RedirectClass::Original;
    }
    if markets.contains(final_host) {
        return RedirectClass::Market;
    }
    RedirectClass::Other
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::transport::InProcessTransport;
    use squatphi_web::{WebWorld, WorldConfig};
    use std::net::Ipv4Addr;
    use std::sync::Arc;

    fn setup(
        n_brands: usize,
        per_brand: usize,
        phishing: usize,
        seed: u64,
    ) -> (
        Vec<(String, BrandId, SquatType)>,
        BrandRegistry,
        InProcessTransport,
    ) {
        let registry = BrandRegistry::with_size(n_brands);
        let mut squats = Vec::new();
        for (i, b) in registry.brands().iter().enumerate() {
            for j in 0..per_brand {
                squats.push((
                    format!("{}-sq{}.com", b.label, j),
                    i,
                    SquatType::Combo,
                    Ipv4Addr::new(203, 0, (i % 200) as u8, j as u8),
                ));
            }
        }
        let cfg = WorldConfig {
            phishing_domains: phishing,
            seed,
            ..WorldConfig::default()
        };
        let world = Arc::new(WebWorld::build(&squats, &registry, &cfg));
        let jobs: Vec<(String, BrandId, SquatType)> = squats
            .iter()
            .map(|(d, b, t, _)| (d.clone(), *b, *t))
            .collect();
        (jobs, registry, InProcessTransport::new(world))
    }

    #[test]
    fn crawl_covers_all_jobs_in_order() {
        let (jobs, registry, transport) = setup(10, 20, 10, 1);
        let (records, stats) = crawl_all(&jobs, &registry, &transport, &CrawlConfig::default());
        assert_eq!(records.len(), jobs.len());
        for (r, j) in records.iter().zip(&jobs) {
            assert_eq!(r.domain, j.0);
        }
        assert_eq!(stats.total, jobs.len());
    }

    #[test]
    fn live_fraction_reasonable() {
        let (jobs, registry, transport) = setup(10, 30, 5, 2);
        let (records, stats) = crawl_all(&jobs, &registry, &transport, &CrawlConfig::default());
        let live = records.iter().filter(|r| r.is_live()).count();
        assert!(live > 0 && live < records.len());
        assert!(stats.web_live + stats.mobile_live > 0);
    }

    #[test]
    fn redirects_classified() {
        let (jobs, registry, transport) = setup(20, 40, 5, 3);
        let (records, stats) = crawl_all(&jobs, &registry, &transport, &CrawlConfig::default());
        // With 800 domains the original/market/other buckets should all
        // be populated (1.7% / 3% / 8% of live).
        assert!(stats.web_redirect_market > 0, "no marketplace redirects");
        assert!(stats.web_redirect_other > 0, "no other redirects");
        let any_original = records
            .iter()
            .any(|r| r.web_redirect == RedirectClass::Original);
        assert!(any_original, "no original redirects");
    }

    #[test]
    fn single_threaded_matches_parallel() {
        let (jobs, registry, transport) = setup(5, 10, 3, 4);
        let (a, _) = crawl_all(
            &jobs,
            &registry,
            &transport,
            &CrawlConfig {
                workers: 1,
                ..Default::default()
            },
        );
        let (b, _) = crawl_all(
            &jobs,
            &registry,
            &transport,
            &CrawlConfig {
                workers: 8,
                ..Default::default()
            },
        );
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.domain, y.domain);
            assert_eq!(x.web.is_some(), y.web.is_some());
            assert_eq!(x.web_redirect, y.web_redirect);
        }
    }

    #[test]
    fn retries_absorb_transient_failures() {
        use crate::transport::FlakyTransport;
        let (jobs, registry, transport) = setup(5, 10, 3, 9);
        // Baseline without flakiness.
        let (clean, _) = crawl_all(
            &jobs,
            &registry,
            &transport,
            &CrawlConfig {
                workers: 1,
                retries: 0,
                ..Default::default()
            },
        );
        // Every host fails its first attempt; one retry must recover the
        // same liveness picture (each domain is fetched twice — web and
        // mobile — so the first device's retry absorbs the failure).
        let flaky = FlakyTransport::new(transport, 1);
        let (retried, _) = crawl_all(
            &jobs,
            &registry,
            &flaky,
            &CrawlConfig {
                workers: 1,
                retries: 1,
                ..Default::default()
            },
        );
        for (a, b) in clean.iter().zip(&retried) {
            assert_eq!(a.domain, b.domain);
            assert_eq!(
                a.web.is_some(),
                b.web.is_some(),
                "{} liveness changed",
                a.domain
            );
        }
    }

    #[test]
    fn without_retries_flaky_hosts_look_dead() {
        use crate::transport::FlakyTransport;
        let (jobs, registry, transport) = setup(5, 10, 3, 9);
        let flaky = FlakyTransport::new(transport, 99);
        let (records, stats) = crawl_all(
            &jobs,
            &registry,
            &flaky,
            &CrawlConfig {
                workers: 2,
                retries: 0,
                ..Default::default()
            },
        );
        assert_eq!(stats.web_live, 0);
        assert!(records.iter().all(|r| !r.is_live()));
    }

    #[test]
    fn captures_render_lazily() {
        let (jobs, registry, transport) = setup(5, 5, 3, 5);
        let (records, _) = crawl_all(&jobs, &registry, &transport, &CrawlConfig::default());
        let live = records
            .iter()
            .find(|r| r.web.is_some())
            .expect("some live page");
        let bmp = live.web.as_ref().unwrap().render();
        assert!(bmp.width() > 0);
    }
}
