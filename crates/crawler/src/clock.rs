//! The crawl clock: a virtual, deterministic time source.
//!
//! Backoff and deadline middleware must behave identically across runs
//! and machines, so time never comes from the wall. [`VirtualClock`] is
//! an atomic nanosecond counter that layers *advance* instead of
//! sleeping against: a retry "waits" by adding its backoff to the clock,
//! and deadline layers compare the counter against their budgets. A
//! whole chaos-matrix crawl is thereby reproducible bit-for-bit — the
//! clock reads the same in the thousandth run as in the first.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

/// A monotonic time source the middleware stack reads and advances.
pub trait Clock: Send + Sync {
    /// Time elapsed since the clock's epoch.
    fn now(&self) -> Duration;
    /// Advances the clock by `by` (the deterministic substitute for
    /// sleeping).
    fn advance(&self, by: Duration);
}

/// The default deterministic clock: an atomic nanosecond counter
/// starting at zero.
#[derive(Debug, Default)]
pub struct VirtualClock {
    nanos: AtomicU64,
}

impl VirtualClock {
    /// A clock at its epoch.
    pub fn new() -> Self {
        VirtualClock::default()
    }
}

impl Clock for VirtualClock {
    fn now(&self) -> Duration {
        Duration::from_nanos(self.nanos.load(Ordering::Acquire))
    }

    fn advance(&self, by: Duration) {
        let ns = u64::try_from(by.as_nanos()).unwrap_or(u64::MAX);
        self.nanos.fetch_add(ns, Ordering::AcqRel);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn starts_at_epoch_and_advances() {
        let c = VirtualClock::new();
        assert_eq!(c.now(), Duration::ZERO);
        c.advance(Duration::from_millis(250));
        c.advance(Duration::from_millis(750));
        assert_eq!(c.now(), Duration::from_secs(1));
    }

    #[test]
    fn shared_across_threads() {
        let c = std::sync::Arc::new(VirtualClock::new());
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let c = c.clone();
                std::thread::spawn(move || {
                    for _ in 0..100 {
                        c.advance(Duration::from_nanos(1));
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().expect("clock thread");
        }
        assert_eq!(c.now(), Duration::from_nanos(400));
    }
}
