//! Pluggable fetch transports — the fallible base of the middleware
//! stack (see [`crate::middleware`] for the decorator layers).

use crate::error::FetchError;
use crate::metrics::TransportMetrics;
use squatphi_web::{Device, ServeClass, ServeResult, WebWorld};
use std::sync::Arc;

/// A blocking fetch of one host for one device profile at one snapshot.
/// Implementations must be `Send + Sync`: the worker pool shares one
/// transport across threads.
pub trait Transport: Send + Sync {
    /// Fetches `http://host/`; returns the raw serve result (redirects
    /// are followed by the crawler, not the transport) or a structured
    /// [`FetchError`] when the fetch failed.
    fn fetch(&self, host: &str, device: Device, snapshot: u8) -> Result<ServeResult, FetchError>;

    /// The metrics this transport records into, if it exposes any
    /// (middleware stacks do); [`crawl_all`](crate::crawl::crawl_all)
    /// folds these into the crawl stats.
    fn metrics(&self) -> Option<Arc<TransportMetrics>> {
        None
    }
}

impl<T: Transport + ?Sized> Transport for Box<T> {
    fn fetch(&self, host: &str, device: Device, snapshot: u8) -> Result<ServeResult, FetchError> {
        (**self).fetch(host, device, snapshot)
    }

    fn metrics(&self) -> Option<Arc<TransportMetrics>> {
        (**self).metrics()
    }
}

impl<T: Transport + ?Sized> Transport for Arc<T> {
    fn fetch(&self, host: &str, device: Device, snapshot: u8) -> Result<ServeResult, FetchError> {
        (**self).fetch(host, device, snapshot)
    }

    fn metrics(&self) -> Option<Arc<TransportMetrics>> {
        (**self).metrics()
    }
}

/// Direct in-process calls into the world — the bulk-scale transport.
///
/// The world's [`ServeClass::Unreachable`] outcome (dead site, NXDOMAIN,
/// unknown host) maps onto [`FetchError::ConnectionRefused`]; pages and
/// redirects pass through as `Ok`.
#[derive(Clone)]
pub struct InProcessTransport {
    world: Arc<WebWorld>,
}

impl InProcessTransport {
    /// Wraps a shared world.
    pub fn new(world: Arc<WebWorld>) -> Self {
        InProcessTransport { world }
    }
}

impl Transport for InProcessTransport {
    fn fetch(&self, host: &str, device: Device, snapshot: u8) -> Result<ServeResult, FetchError> {
        let result = self.world.serve(host, device, snapshot);
        match result.class() {
            ServeClass::Unreachable => Err(FetchError::ConnectionRefused {
                host: host.to_string(),
                attempt: 0,
            }),
            ServeClass::Redirect | ServeClass::Page => Ok(result),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::error::FetchClass;
    use squatphi_squat::{BrandRegistry, SquatType};
    use squatphi_web::WorldConfig;
    use std::net::Ipv4Addr;

    fn tiny_world() -> Arc<WebWorld> {
        let registry = BrandRegistry::with_size(5);
        let squats = vec![(
            "paypal-login.com".to_string(),
            0usize,
            SquatType::Combo,
            Ipv4Addr::new(9, 9, 9, 9),
        )];
        let cfg = WorldConfig {
            phishing_domains: 1,
            ..WorldConfig::default()
        };
        Arc::new(WebWorld::build(&squats, &registry, &cfg))
    }

    #[test]
    fn in_process_transport_serves() {
        let t = InProcessTransport::new(tiny_world());
        assert!(matches!(
            t.fetch("paypal-login.com", Device::Web, 0),
            Ok(ServeResult::Page(_))
        ));
        let err = t
            .fetch("missing.example", Device::Web, 0)
            .expect_err("unknown hosts are unreachable");
        assert_eq!(err.class(), FetchClass::ConnectionRefused);
        assert_eq!(err.host(), "missing.example");
    }

    #[test]
    fn base_transport_exposes_no_metrics() {
        let t = InProcessTransport::new(tiny_world());
        assert!(t.metrics().is_none());
    }

    #[test]
    fn blanket_impls_forward() {
        let t: Box<dyn Transport> = Box::new(InProcessTransport::new(tiny_world()));
        assert!(t.fetch("paypal-login.com", Device::Web, 0).is_ok());
        let t: Arc<dyn Transport> = Arc::from(t);
        assert!(t.fetch("paypal-login.com", Device::Web, 0).is_ok());
    }
}
