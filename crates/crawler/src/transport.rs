//! Pluggable fetch transports.

use squatphi_web::{Device, ServeResult, WebWorld};
use std::sync::Arc;

/// A blocking fetch of one host for one device profile at one snapshot.
/// Implementations must be `Send + Sync`: the worker pool shares one
/// transport across threads.
pub trait Transport: Send + Sync {
    /// Fetches `http://host/`; returns the raw serve result (redirects are
    /// followed by the crawler, not the transport).
    fn fetch(&self, host: &str, device: Device, snapshot: u8) -> ServeResult;
}

/// Direct in-process calls into the world — the bulk-scale transport.
#[derive(Clone)]
pub struct InProcessTransport {
    world: Arc<WebWorld>,
}

impl InProcessTransport {
    /// Wraps a shared world.
    pub fn new(world: Arc<WebWorld>) -> Self {
        InProcessTransport { world }
    }
}

impl Transport for InProcessTransport {
    fn fetch(&self, host: &str, device: Device, snapshot: u8) -> ServeResult {
        self.world.serve(host, device, snapshot)
    }
}

/// Failure-injection wrapper: every k-th fetch of a host fails with
/// `Unreachable`, deterministically per (host, attempt) pair. Used to test
/// the crawler's retry path; also handy for chaos-style integration tests.
pub struct FlakyTransport<T> {
    inner: T,
    /// Fail the first `fail_first` attempts per host.
    fail_first: usize,
    attempts: parking_lot::Mutex<std::collections::HashMap<String, usize>>,
}

impl<T: Transport> FlakyTransport<T> {
    /// Wraps `inner`; the first `fail_first` fetches of each host fail.
    pub fn new(inner: T, fail_first: usize) -> Self {
        FlakyTransport {
            inner,
            fail_first,
            attempts: parking_lot::Mutex::new(std::collections::HashMap::new()),
        }
    }

    /// Total fetch attempts observed (all hosts).
    pub fn total_attempts(&self) -> usize {
        self.attempts.lock().values().sum()
    }
}

impl<T: Transport> Transport for FlakyTransport<T> {
    fn fetch(&self, host: &str, device: Device, snapshot: u8) -> ServeResult {
        let n = {
            let mut map = self.attempts.lock();
            let e = map.entry(host.to_string()).or_insert(0);
            *e += 1;
            *e
        };
        if n <= self.fail_first {
            return ServeResult::Unreachable;
        }
        self.inner.fetch(host, device, snapshot)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use squatphi_squat::{BrandRegistry, SquatType};
    use squatphi_web::WorldConfig;
    use std::net::Ipv4Addr;

    fn tiny_world() -> Arc<WebWorld> {
        let registry = BrandRegistry::with_size(5);
        let squats = vec![(
            "paypal-login.com".to_string(),
            0usize,
            SquatType::Combo,
            Ipv4Addr::new(9, 9, 9, 9),
        )];
        let cfg = WorldConfig {
            phishing_domains: 1,
            ..WorldConfig::default()
        };
        Arc::new(WebWorld::build(&squats, &registry, &cfg))
    }

    #[test]
    fn flaky_transport_fails_then_recovers() {
        let t = FlakyTransport::new(InProcessTransport::new(tiny_world()), 2);
        assert!(matches!(
            t.fetch("paypal-login.com", Device::Web, 0),
            ServeResult::Unreachable
        ));
        assert!(matches!(
            t.fetch("paypal-login.com", Device::Web, 0),
            ServeResult::Unreachable
        ));
        assert!(matches!(
            t.fetch("paypal-login.com", Device::Web, 0),
            ServeResult::Page(_)
        ));
        assert_eq!(t.total_attempts(), 3);
    }

    #[test]
    fn in_process_transport_serves() {
        let registry = BrandRegistry::with_size(5);
        let squats = vec![(
            "paypal-login.com".to_string(),
            0usize,
            SquatType::Combo,
            Ipv4Addr::new(9, 9, 9, 9),
        )];
        let cfg = WorldConfig {
            phishing_domains: 1,
            ..WorldConfig::default()
        };
        let world = Arc::new(WebWorld::build(&squats, &registry, &cfg));
        let t = InProcessTransport::new(world);
        assert!(matches!(
            t.fetch("paypal-login.com", Device::Web, 0),
            ServeResult::Page(_)
        ));
        assert!(matches!(
            t.fetch("missing.example", Device::Web, 0),
            ServeResult::Unreachable
        ));
    }
}
