//! Crawl aggregate statistics (the Table 2 numbers).

use crate::crawl::{CrawlRecord, RedirectClass};
use crate::metrics::TransportSnapshot;

/// Aggregate crawl counters, web and mobile.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct CrawlStats {
    /// Jobs crawled.
    pub total: usize,
    /// Transport-level counters (attempts, retries, errors by class,
    /// breaker and deadline activity) for this crawl.
    pub transport: TransportSnapshot,
    /// Domains with a live web page.
    pub web_live: usize,
    /// Domains with a live mobile page.
    pub mobile_live: usize,
    /// Web fetches without redirects.
    pub web_no_redirect: usize,
    /// Web fetches redirecting to the brand's original site.
    pub web_redirect_original: usize,
    /// Web fetches redirecting to a marketplace.
    pub web_redirect_market: usize,
    /// Web fetches redirecting elsewhere.
    pub web_redirect_other: usize,
    /// Mobile fetches without redirects.
    pub mobile_no_redirect: usize,
    /// Mobile fetches redirecting to the brand's original site.
    pub mobile_redirect_original: usize,
    /// Mobile fetches redirecting to a marketplace.
    pub mobile_redirect_market: usize,
    /// Mobile fetches redirecting elsewhere.
    pub mobile_redirect_other: usize,
}

impl CrawlStats {
    /// Aggregates over crawl records.
    pub fn from_records(records: &[CrawlRecord]) -> Self {
        let mut s = CrawlStats {
            total: records.len(),
            ..CrawlStats::default()
        };
        for r in records {
            if r.web.is_some() {
                s.web_live += 1;
                match r.web_redirect {
                    RedirectClass::None => s.web_no_redirect += 1,
                    RedirectClass::Original => s.web_redirect_original += 1,
                    RedirectClass::Market => s.web_redirect_market += 1,
                    RedirectClass::Other => s.web_redirect_other += 1,
                }
            }
            if r.mobile.is_some() {
                s.mobile_live += 1;
                match r.mobile_redirect {
                    RedirectClass::None => s.mobile_no_redirect += 1,
                    RedirectClass::Original => s.mobile_redirect_original += 1,
                    RedirectClass::Market => s.mobile_redirect_market += 1,
                    RedirectClass::Other => s.mobile_redirect_other += 1,
                }
            }
        }
        s
    }

    /// Fraction of live web domains with no redirect (paper: 87.3%).
    pub fn web_no_redirect_ratio(&self) -> f64 {
        if self.web_live == 0 {
            0.0
        } else {
            self.web_no_redirect as f64 / self.web_live as f64
        }
    }

    /// Publishes the aggregates into a telemetry scope (canonically
    /// `crawl`); the transport counters land under its `transport.`
    /// subscope.
    pub fn export(&self, scope: &squatphi_telemetry::Scope) {
        scope.set_u64("total", self.total as u64);
        scope.set_u64("web_live", self.web_live as u64);
        scope.set_u64("mobile_live", self.mobile_live as u64);
        scope.set_u64("web_no_redirect", self.web_no_redirect as u64);
        scope.set_u64("web_redirect_original", self.web_redirect_original as u64);
        scope.set_u64("web_redirect_market", self.web_redirect_market as u64);
        scope.set_u64("web_redirect_other", self.web_redirect_other as u64);
        scope.set_u64("mobile_no_redirect", self.mobile_no_redirect as u64);
        scope.set_u64(
            "mobile_redirect_original",
            self.mobile_redirect_original as u64,
        );
        scope.set_u64("mobile_redirect_market", self.mobile_redirect_market as u64);
        scope.set_u64("mobile_redirect_other", self.mobile_redirect_other as u64);
        self.transport.export(&scope.scope("transport"));
    }

    /// Whether every live fetch is counted in exactly one redirect class —
    /// checked declaratively against the exported telemetry.
    pub fn reconciles(&self) -> bool {
        let reg = squatphi_telemetry::Registry::new();
        self.export(&reg.scope("crawl"));
        squatphi_telemetry::invariants::crawl_invariants().all_hold(&reg.snapshot())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::crawl::PageCapture;
    use squatphi_squat::SquatType;

    fn rec(domain: &str, live: bool, class: RedirectClass) -> CrawlRecord {
        CrawlRecord {
            domain: domain.into(),
            brand: 0,
            squat_type: SquatType::Combo,
            web: live.then(|| PageCapture {
                final_host: domain.into(),
                html: "<html></html>".into(),
                redirects: vec![],
            }),
            mobile: None,
            web_redirect: class,
            mobile_redirect: RedirectClass::None,
        }
    }

    #[test]
    fn counts_accumulate() {
        let records = vec![
            rec("a.com", true, RedirectClass::None),
            rec("b.com", true, RedirectClass::Market),
            rec("c.com", false, RedirectClass::None),
            rec("d.com", true, RedirectClass::Original),
        ];
        let s = CrawlStats::from_records(&records);
        assert_eq!(s.total, 4);
        assert_eq!(s.web_live, 3);
        assert_eq!(s.web_no_redirect, 1);
        assert_eq!(s.web_redirect_market, 1);
        assert_eq!(s.web_redirect_original, 1);
        assert!(s.reconciles());
    }

    #[test]
    fn redirect_leak_fails_reconciliation() {
        let mut s = CrawlStats::from_records(&[rec("a.com", true, RedirectClass::None)]);
        // A live fetch with no redirect class accounted for.
        s.web_live += 1;
        assert!(!s.reconciles());
    }

    #[test]
    fn ratio_handles_empty() {
        assert_eq!(CrawlStats::default().web_no_redirect_ratio(), 0.0);
    }
}
