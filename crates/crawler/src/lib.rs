//! Distributed crawler substitute (paper §3.2).
//!
//! The paper crawls 657K squatting domains with a fleet of Puppeteer
//! instances (5 machines × 20 browsers), capturing web and mobile pages
//! plus screenshots and following every redirect. Our crawler keeps that
//! architecture — a work queue drained by a worker pool — over a
//! pluggable, fallible [`Transport`]:
//!
//! * [`transport::InProcessTransport`] — direct calls into the
//!   [`squatphi_web::WebWorld`] (used for bulk scale),
//! * [`middleware`] — tower-style decorator layers composed over any
//!   base transport: retry with seeded backoff, per-fetch / whole-crawl
//!   deadlines on a [`clock::VirtualClock`], a per-host circuit breaker,
//!   and seeded chaos fault injection ([`middleware::TransportStack`]
//!   builds the canonical stack),
//! * a real-TCP transport lives in the `squatphi-http` crate's client and
//!   can be adapted to [`Transport`] by callers that want socket-level
//!   fidelity (see the `active_probe` example).
//!
//! Fetches fail with a structured [`FetchError`] (timeout / refused /
//! truncated / injected); [`TransportMetrics`] counts every attempt,
//! retry, breaker trip and deadline hit, and [`crawl_all`] folds the
//! snapshot into [`CrawlStats::transport`].
//!
//! Captured pages keep the HTML; screenshots are rendered lazily through
//! [`PageCapture::render`] so a million-page crawl does not hold a
//! million bitmaps.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod clock;
pub mod crawl;
pub mod error;
pub mod metrics;
pub mod middleware;
pub mod schedule;
pub mod stats;
pub mod transport;

pub use clock::{Clock, VirtualClock};
pub use crawl::{
    crawl_all, CrawlConfig, CrawlConfigBuilder, CrawlConfigError, CrawlOutcome, CrawlRecord,
    PageCapture, RedirectClass,
};
pub use error::{FetchClass, FetchError};
pub use metrics::{TransportMetrics, TransportSnapshot};
pub use middleware::{
    ChaosTransport, CircuitBreakerPolicy, CircuitBreakerTransport, DeadlinePolicy,
    DeadlineTransport, FaultMode, FaultPlan, RetryPolicy, RetryTransport, StackedTransport,
    TransportStack,
};
pub use schedule::RecrawlScheduler;
pub use stats::CrawlStats;
pub use transport::{InProcessTransport, Transport};
