//! Distributed crawler substitute (paper §3.2).
//!
//! The paper crawls 657K squatting domains with a fleet of Puppeteer
//! instances (5 machines × 20 browsers), capturing web and mobile pages
//! plus screenshots and following every redirect. Our crawler keeps that
//! architecture — a work queue drained by a worker pool — over a
//! pluggable [`Transport`]:
//!
//! * [`transport::InProcessTransport`] — direct calls into the
//!   [`squatphi_web::WebWorld`] (used for bulk scale),
//! * a real-TCP transport lives in the `squatphi-http` crate's client and
//!   can be adapted to [`Transport`] by callers that want socket-level
//!   fidelity (see the `active_probe` example).
//!
//! Captured pages keep the HTML; screenshots are rendered lazily through
//! [`PageCapture::render`] so a million-page crawl does not hold a
//! million bitmaps.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod crawl;
pub mod stats;
pub mod transport;

pub use crawl::{crawl_all, CrawlConfig, CrawlRecord, PageCapture, RedirectClass};
pub use stats::CrawlStats;
pub use transport::{InProcessTransport, Transport};
