//! Composable transport middleware — the crawl robustness engine.
//!
//! Decorator transports wrap any [`Transport`] the way tower layers wrap
//! a service; each one owns a single policy and shares the stack's
//! [`TransportMetrics`] and [`Clock`]:
//!
//! ```text
//!  crawl engine
//!    └─ DeadlineTransport      per-fetch + whole-crawl budgets (virtual clock)
//!        └─ CircuitBreakerTransport   per-host open/half-open/closed
//!            └─ RetryTransport        attempt budget + seeded exp. backoff
//!                └─ ChaosTransport    seeded fault plans (tests / drills)
//!                    └─ InProcessTransport (or any real backend)
//! ```
//!
//! [`TransportStack`] builds that composition fluently:
//!
//! ```
//! # use squatphi_crawler::middleware::*;
//! # use squatphi_crawler::transport::{InProcessTransport, Transport};
//! # use squatphi_squat::{BrandRegistry, SquatType};
//! # use squatphi_web::{Device, WebWorld, WorldConfig};
//! # use std::sync::Arc;
//! # let registry = BrandRegistry::with_size(3);
//! # let squats = vec![("paypal-x.com".to_string(), 0usize, SquatType::Combo,
//! #     std::net::Ipv4Addr::new(9, 9, 9, 9))];
//! # let world = Arc::new(WebWorld::build(&squats, &registry, &WorldConfig {
//! #     phishing_domains: 1, ..WorldConfig::default() }));
//! let stack = TransportStack::new(InProcessTransport::new(world))
//!     .chaos(FaultPlan::fail_first(1))
//!     .retry(RetryPolicy::default())
//!     .breaker(CircuitBreakerPolicy::default())
//!     .deadline(DeadlinePolicy::default())
//!     .build();
//! let metrics = stack.metrics().expect("stack exposes metrics");
//! assert!(stack.fetch("paypal-x.com", Device::Web, 0).is_ok());
//! assert_eq!(metrics.snapshot().retries, 1);
//! ```
//!
//! All timing is virtual ([`VirtualClock`]): retries advance the clock
//! instead of sleeping, so fault handling is deterministic for a fixed
//! seed regardless of machine or thread count.

use crate::clock::{Clock, VirtualClock};
use crate::error::{FetchClass, FetchError};
use crate::metrics::TransportMetrics;
use crate::transport::Transport;
use squatphi_web::{Device, ServeResult};
use std::collections::HashMap;
use std::sync::Arc;
use std::time::Duration;

/// Deterministic splitmix64-style mixer for jitter and fault sampling.
fn mix(seed: u64, host: &str, n: u64) -> u64 {
    let mut h = seed ^ 0x9e3779b97f4a7c15;
    for b in host.bytes() {
        h = (h ^ b as u64).wrapping_mul(0x100000001b3);
    }
    h ^= n.wrapping_mul(0xd6e8feb86659fd93);
    h ^= h >> 32;
    h = h.wrapping_mul(0xd6e8feb86659fd93);
    h ^ (h >> 32)
}

// ---------------------------------------------------------------------------
// Retry

/// Per-fetch retry budget with seeded exponential backoff and jitter.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Extra attempts after the first failure.
    pub max_retries: u32,
    /// Backoff before the first retry (doubles per attempt).
    pub base_backoff: Duration,
    /// Backoff ceiling.
    pub max_backoff: Duration,
    /// Jitter seed — same seed, same backoff schedule.
    pub seed: u64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            max_retries: 2,
            base_backoff: Duration::from_millis(50),
            max_backoff: Duration::from_secs(5),
            seed: 0x5eed,
        }
    }
}

impl RetryPolicy {
    /// The deterministic backoff before retry number `retry` (1-based)
    /// of `host`: `base * 2^(retry-1)` capped at `max_backoff`, jittered
    /// into `[exp/2, exp]` by a hash of `(seed, host, retry)`.
    pub fn backoff_for(&self, host: &str, retry: u32) -> Duration {
        let exp_ns = u64::try_from(self.base_backoff.as_nanos())
            .unwrap_or(u64::MAX)
            .saturating_mul(1u64 << retry.saturating_sub(1).min(32));
        let cap_ns = u64::try_from(self.max_backoff.as_nanos()).unwrap_or(u64::MAX);
        let exp_ns = exp_ns.min(cap_ns);
        let half = exp_ns / 2;
        let jitter = if half == 0 {
            0
        } else {
            mix(self.seed, host, retry as u64) % (half + 1)
        };
        Duration::from_nanos(half + jitter)
    }
}

/// Retries failed fetches with [`RetryPolicy`] backoff, advancing the
/// stack clock instead of sleeping.
pub struct RetryTransport<T> {
    inner: T,
    policy: RetryPolicy,
    clock: Arc<dyn Clock>,
    metrics: Arc<TransportMetrics>,
}

impl<T: Transport> RetryTransport<T> {
    /// Wraps `inner`.
    pub fn new(
        inner: T,
        policy: RetryPolicy,
        clock: Arc<dyn Clock>,
        metrics: Arc<TransportMetrics>,
    ) -> Self {
        RetryTransport {
            inner,
            policy,
            clock,
            metrics,
        }
    }
}

impl<T: Transport> Transport for RetryTransport<T> {
    fn fetch(&self, host: &str, device: Device, snapshot: u8) -> Result<ServeResult, FetchError> {
        let mut attempt: u32 = 1;
        loop {
            match self.inner.fetch(host, device, snapshot) {
                Ok(r) => return Ok(r),
                Err(e) => {
                    if attempt > self.policy.max_retries {
                        // Final failure propagates (and is counted by
                        // whoever consumes it above us).
                        return Err(e.with_attempt(attempt));
                    }
                    // Absorbed by retrying: we are this fault's consumer.
                    self.metrics.record_error(e.class());
                    let backoff = self.policy.backoff_for(host, attempt);
                    self.clock.advance(backoff);
                    self.metrics.record_retry(backoff);
                    attempt += 1;
                }
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Deadline

/// Per-fetch and whole-crawl time budgets, measured on the stack clock.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DeadlinePolicy {
    /// Budget for one fetch (including backoff spent below this layer);
    /// `None` = unlimited.
    pub per_fetch: Option<Duration>,
    /// Budget for everything fetched through this layer since it was
    /// built; `None` = unlimited.
    pub whole_crawl: Option<Duration>,
    /// Virtual cost charged per inner fetch, so budgets make progress
    /// even when no layer below advances the clock.
    pub fetch_cost: Duration,
}

impl Default for DeadlinePolicy {
    fn default() -> Self {
        DeadlinePolicy {
            per_fetch: Some(Duration::from_secs(30)),
            whole_crawl: None,
            fetch_cost: Duration::from_millis(5),
        }
    }
}

/// Enforces [`DeadlinePolicy`]; budget violations surface as
/// [`FetchError::Timeout`].
pub struct DeadlineTransport<T> {
    inner: T,
    policy: DeadlinePolicy,
    clock: Arc<dyn Clock>,
    metrics: Arc<TransportMetrics>,
    start: Duration,
}

impl<T: Transport> DeadlineTransport<T> {
    /// Wraps `inner`; the whole-crawl budget starts counting now.
    pub fn new(
        inner: T,
        policy: DeadlinePolicy,
        clock: Arc<dyn Clock>,
        metrics: Arc<TransportMetrics>,
    ) -> Self {
        let start = clock.now();
        DeadlineTransport {
            inner,
            policy,
            clock,
            metrics,
            start,
        }
    }
}

impl<T: Transport> Transport for DeadlineTransport<T> {
    fn fetch(&self, host: &str, device: Device, snapshot: u8) -> Result<ServeResult, FetchError> {
        if let Some(budget) = self.policy.whole_crawl {
            if self.clock.now().saturating_sub(self.start) >= budget {
                self.metrics.record_crawl_deadline();
                return Err(FetchError::Timeout {
                    host: host.to_string(),
                    attempt: 0,
                });
            }
        }
        let t0 = self.clock.now();
        self.clock.advance(self.policy.fetch_cost);
        let result = self.inner.fetch(host, device, snapshot);
        if let Some(limit) = self.policy.per_fetch {
            let elapsed = self.clock.now().saturating_sub(t0);
            if elapsed > limit {
                // The fetch took longer than its budget: whatever came
                // back is discarded, exactly like a socket timeout.
                self.metrics.record_fetch_deadline();
                return Err(FetchError::Timeout {
                    host: host.to_string(),
                    attempt: 0,
                });
            }
        }
        result
    }
}

// ---------------------------------------------------------------------------
// Circuit breaker

/// Per-host circuit-breaker thresholds.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CircuitBreakerPolicy {
    /// Consecutive failures that open the circuit.
    pub trip_after: u32,
    /// Virtual time an open circuit rejects fetches before allowing a
    /// half-open probe.
    pub cooldown: Duration,
}

impl Default for CircuitBreakerPolicy {
    fn default() -> Self {
        CircuitBreakerPolicy {
            trip_after: 3,
            cooldown: Duration::from_secs(60),
        }
    }
}

/// Half-open is represented implicitly: an expired `Open` lets exactly
/// one fetch through as the probe (see [`CircuitBreakerTransport::fetch`]).
#[derive(Debug, Clone, Copy)]
enum BreakerState {
    Closed { consecutive_failures: u32 },
    Open { until: Duration },
}

/// Stops fetching hosts that keep failing: after
/// [`CircuitBreakerPolicy::trip_after`] consecutive failures the host's
/// circuit opens and fetches are rejected locally
/// ([`FetchError::ConnectionRefused`]) until the cooldown elapses on the
/// stack clock; the next fetch then probes half-open and a success
/// closes the circuit again.
pub struct CircuitBreakerTransport<T> {
    inner: T,
    policy: CircuitBreakerPolicy,
    clock: Arc<dyn Clock>,
    metrics: Arc<TransportMetrics>,
    states: parking_lot::Mutex<HashMap<String, BreakerState>>,
}

impl<T: Transport> CircuitBreakerTransport<T> {
    /// Wraps `inner` with all circuits closed.
    pub fn new(
        inner: T,
        policy: CircuitBreakerPolicy,
        clock: Arc<dyn Clock>,
        metrics: Arc<TransportMetrics>,
    ) -> Self {
        CircuitBreakerTransport {
            inner,
            policy,
            clock,
            metrics,
            states: parking_lot::Mutex::new(HashMap::new()),
        }
    }

    /// Hosts whose circuit is currently open.
    pub fn open_hosts(&self) -> Vec<String> {
        let now = self.clock.now();
        self.states
            .lock()
            .iter()
            .filter(|(_, s)| matches!(s, BreakerState::Open { until } if now < *until))
            .map(|(h, _)| h.clone())
            .collect()
    }
}

impl<T: Transport> Transport for CircuitBreakerTransport<T> {
    fn fetch(&self, host: &str, device: Device, snapshot: u8) -> Result<ServeResult, FetchError> {
        let probing = {
            let mut states = self.states.lock();
            match states.get(host).copied() {
                Some(BreakerState::Open { until }) => {
                    if self.clock.now() < until {
                        self.metrics.record_breaker_short_circuit();
                        return Err(FetchError::ConnectionRefused {
                            host: host.to_string(),
                            attempt: 0,
                        });
                    }
                    // Cooldown over: let exactly this fetch probe, and
                    // keep rejecting concurrent ones until it reports.
                    states.insert(
                        host.to_string(),
                        BreakerState::Open {
                            until: self.clock.now() + self.policy.cooldown,
                        },
                    );
                    true
                }
                _ => false,
            }
        };
        let result = self.inner.fetch(host, device, snapshot);
        let mut states = self.states.lock();
        match &result {
            Ok(_) => {
                states.insert(
                    host.to_string(),
                    BreakerState::Closed {
                        consecutive_failures: 0,
                    },
                );
            }
            Err(_) => {
                let failures = match states.get(host).copied() {
                    _ if probing => self.policy.trip_after, // failed probe reopens
                    Some(BreakerState::Closed {
                        consecutive_failures,
                    }) => consecutive_failures + 1,
                    _ => 1,
                };
                if failures >= self.policy.trip_after {
                    self.metrics.record_breaker_trip();
                    states.insert(
                        host.to_string(),
                        BreakerState::Open {
                            until: self.clock.now() + self.policy.cooldown,
                        },
                    );
                } else {
                    states.insert(
                        host.to_string(),
                        BreakerState::Closed {
                            consecutive_failures: failures,
                        },
                    );
                }
            }
        }
        result
    }
}

// ---------------------------------------------------------------------------
// Chaos

/// When a [`FaultPlan`] fires.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultMode {
    /// Never fire (the zero-fault plan).
    None,
    /// Fail the first `k` fetches of every host.
    FailFirst(u32),
    /// Fail every `k`-th fetch of every host (`k >= 1`).
    FailEvery(u32),
    /// Fail each fetch with probability `permille/1000`, decided by a
    /// hash of `(seed, host, attempt)` — deterministic, order-free.
    FailPermille(u16),
}

/// A seeded fault-injection plan: which fetches fail, and as what class.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultPlan {
    /// Firing rule.
    pub mode: FaultMode,
    /// Error class of injected faults.
    pub class: FetchClass,
    /// Seed for [`FaultMode::FailPermille`] sampling.
    pub seed: u64,
}

impl FaultPlan {
    /// The zero-fault plan.
    pub fn none() -> Self {
        FaultPlan {
            mode: FaultMode::None,
            class: FetchClass::Injected,
            seed: 0,
        }
    }

    /// Fail the first `k` fetches of every host.
    pub fn fail_first(k: u32) -> Self {
        FaultPlan {
            mode: FaultMode::FailFirst(k),
            ..FaultPlan::none()
        }
    }

    /// Fail every `k`-th fetch of every host.
    pub fn fail_every(k: u32) -> Self {
        FaultPlan {
            mode: FaultMode::FailEvery(k.max(1)),
            ..FaultPlan::none()
        }
    }

    /// Fail each fetch with probability `permille/1000`.
    pub fn fail_permille(permille: u16) -> Self {
        FaultPlan {
            mode: FaultMode::FailPermille(permille.min(1000)),
            ..FaultPlan::none()
        }
    }

    /// Sets the injected error class (fail-by-class plans).
    pub fn with_class(mut self, class: FetchClass) -> Self {
        self.class = class;
        self
    }

    /// Sets the sampling seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Whether the `n`-th (1-based) fetch of `host` fails under this plan.
    pub fn fires(&self, host: &str, n: u32) -> bool {
        match self.mode {
            FaultMode::None => false,
            FaultMode::FailFirst(k) => n <= k,
            FaultMode::FailEvery(k) => k >= 1 && n.is_multiple_of(k),
            FaultMode::FailPermille(p) => (mix(self.seed, host, n as u64) % 1000) < p as u64,
        }
    }
}

/// Injects [`FaultPlan`] faults in front of any transport — the
/// generalized successor of the old `FlakyTransport` (which only knew
/// fail-first). Injection is deterministic per `(host, attempt)`, so a
/// chaos crawl replays identically for a fixed seed.
pub struct ChaosTransport<T> {
    inner: T,
    plan: FaultPlan,
    metrics: Arc<TransportMetrics>,
    attempts: parking_lot::Mutex<HashMap<String, u32>>,
}

impl<T: Transport> ChaosTransport<T> {
    /// Wraps `inner` under `plan`.
    pub fn new(inner: T, plan: FaultPlan, metrics: Arc<TransportMetrics>) -> Self {
        ChaosTransport {
            inner,
            plan,
            metrics,
            attempts: parking_lot::Mutex::new(HashMap::new()),
        }
    }

    /// Total fetches that reached this layer (all hosts).
    pub fn total_attempts(&self) -> u64 {
        self.attempts.lock().values().map(|&n| n as u64).sum()
    }
}

impl<T: Transport> Transport for ChaosTransport<T> {
    fn fetch(&self, host: &str, device: Device, snapshot: u8) -> Result<ServeResult, FetchError> {
        let n = {
            let mut map = self.attempts.lock();
            let e = map.entry(host.to_string()).or_insert(0);
            *e += 1;
            *e
        };
        if self.plan.fires(host, n) {
            self.metrics.record_injected(self.plan.class);
            return Err(FetchError::new(self.plan.class, host, n));
        }
        self.inner.fetch(host, device, snapshot)
    }
}

// ---------------------------------------------------------------------------
// Stack builder

/// Fluent builder for a middleware composition over one shared
/// [`TransportMetrics`] and [`VirtualClock`]. Layers wrap in call order
/// — the first layer added sits closest to the inner transport — so the
/// canonical stack reads bottom-up:
/// `.chaos(..).retry(..).breaker(..).deadline(..)`.
pub struct TransportStack {
    inner: Box<dyn Transport>,
    metrics: Arc<TransportMetrics>,
    clock: Arc<VirtualClock>,
}

impl TransportStack {
    /// Starts a stack over `inner` with fresh metrics and a clock at its
    /// epoch.
    pub fn new(inner: impl Transport + 'static) -> Self {
        TransportStack {
            inner: Box::new(inner),
            metrics: Arc::new(TransportMetrics::new()),
            clock: Arc::new(VirtualClock::new()),
        }
    }

    /// The stack's shared metrics.
    pub fn metrics(&self) -> Arc<TransportMetrics> {
        self.metrics.clone()
    }

    /// The stack's shared clock.
    pub fn clock(&self) -> Arc<VirtualClock> {
        self.clock.clone()
    }

    /// Adds a [`ChaosTransport`] layer.
    pub fn chaos(mut self, plan: FaultPlan) -> Self {
        self.inner = Box::new(ChaosTransport::new(self.inner, plan, self.metrics.clone()));
        self
    }

    /// Adds a [`RetryTransport`] layer.
    pub fn retry(mut self, policy: RetryPolicy) -> Self {
        self.inner = Box::new(RetryTransport::new(
            self.inner,
            policy,
            self.clock.clone(),
            self.metrics.clone(),
        ));
        self
    }

    /// Adds a [`CircuitBreakerTransport`] layer.
    pub fn breaker(mut self, policy: CircuitBreakerPolicy) -> Self {
        self.inner = Box::new(CircuitBreakerTransport::new(
            self.inner,
            policy,
            self.clock.clone(),
            self.metrics.clone(),
        ));
        self
    }

    /// Adds a [`DeadlineTransport`] layer.
    pub fn deadline(mut self, policy: DeadlinePolicy) -> Self {
        self.inner = Box::new(DeadlineTransport::new(
            self.inner,
            policy,
            self.clock.clone(),
            self.metrics.clone(),
        ));
        self
    }

    /// Finishes the composition.
    pub fn build(self) -> StackedTransport {
        StackedTransport {
            inner: self.inner,
            metrics: self.metrics,
            clock: self.clock,
        }
    }
}

/// The built middleware composition;
/// [`crawl_all`](crate::crawl::crawl_all) discovers its metrics through
/// [`Transport::metrics`] and folds them into the crawl stats.
pub struct StackedTransport {
    inner: Box<dyn Transport>,
    metrics: Arc<TransportMetrics>,
    clock: Arc<VirtualClock>,
}

impl StackedTransport {
    /// The stack's shared clock.
    pub fn clock(&self) -> Arc<VirtualClock> {
        self.clock.clone()
    }
}

impl Transport for StackedTransport {
    fn fetch(&self, host: &str, device: Device, snapshot: u8) -> Result<ServeResult, FetchError> {
        self.inner.fetch(host, device, snapshot)
    }

    fn metrics(&self) -> Option<Arc<TransportMetrics>> {
        Some(self.metrics.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::transport::InProcessTransport;
    use squatphi_squat::{BrandRegistry, SquatType};
    use squatphi_web::{WebWorld, WorldConfig};
    use std::net::Ipv4Addr;

    fn tiny_world() -> Arc<WebWorld> {
        let registry = BrandRegistry::with_size(5);
        let squats = vec![(
            "paypal-login.com".to_string(),
            0usize,
            SquatType::Combo,
            Ipv4Addr::new(9, 9, 9, 9),
        )];
        let cfg = WorldConfig {
            phishing_domains: 1,
            ..WorldConfig::default()
        };
        Arc::new(WebWorld::build(&squats, &registry, &cfg))
    }

    const HOST: &str = "paypal-login.com";

    #[test]
    fn backoff_is_deterministic_and_bounded() {
        let p = RetryPolicy::default();
        for retry in 1..=5u32 {
            let a = p.backoff_for(HOST, retry);
            let b = p.backoff_for(HOST, retry);
            assert_eq!(a, b);
            assert!(a <= p.max_backoff);
        }
        // Different retries (usually) get different jitter.
        assert_ne!(p.backoff_for(HOST, 1), p.backoff_for(HOST, 2));
    }

    #[test]
    fn retry_absorbs_transient_faults_and_advances_clock() {
        let metrics = Arc::new(TransportMetrics::new());
        let clock: Arc<VirtualClock> = Arc::new(VirtualClock::new());
        let chaos = ChaosTransport::new(
            InProcessTransport::new(tiny_world()),
            FaultPlan::fail_first(2),
            metrics.clone(),
        );
        let retry = RetryTransport::new(
            chaos,
            RetryPolicy::default(),
            clock.clone(),
            metrics.clone(),
        );
        assert!(retry.fetch(HOST, Device::Web, 0).is_ok());
        let s = metrics.snapshot();
        assert_eq!(s.retries, 2);
        assert_eq!(s.injected_total(), 2);
        assert_eq!(s.errors_of(FetchClass::Injected), 2);
        assert!(clock.now() > Duration::ZERO, "backoff advanced the clock");
    }

    #[test]
    fn retry_budget_exhaustion_propagates_last_error() {
        let metrics = Arc::new(TransportMetrics::new());
        let clock: Arc<VirtualClock> = Arc::new(VirtualClock::new());
        let chaos = ChaosTransport::new(
            InProcessTransport::new(tiny_world()),
            FaultPlan::fail_first(10).with_class(FetchClass::Truncated),
            metrics.clone(),
        );
        let retry = RetryTransport::new(
            chaos,
            RetryPolicy {
                max_retries: 1,
                ..RetryPolicy::default()
            },
            clock,
            metrics.clone(),
        );
        let err = retry.fetch(HOST, Device::Web, 0).expect_err("must fail");
        assert_eq!(err.class(), FetchClass::Truncated);
        assert_eq!(err.attempt(), 2);
        // One absorbed (consumed by retry), one propagated (not counted
        // here — its consumer counts it).
        assert_eq!(metrics.snapshot().errors_of(FetchClass::Truncated), 1);
        assert_eq!(metrics.snapshot().injected_of(FetchClass::Truncated), 2);
    }

    #[test]
    fn breaker_opens_after_threshold_and_recovers_half_open() {
        let metrics = Arc::new(TransportMetrics::new());
        let clock: Arc<VirtualClock> = Arc::new(VirtualClock::new());
        let chaos = ChaosTransport::new(
            InProcessTransport::new(tiny_world()),
            FaultPlan::fail_first(3),
            metrics.clone(),
        );
        let breaker = CircuitBreakerTransport::new(
            chaos,
            CircuitBreakerPolicy {
                trip_after: 3,
                cooldown: Duration::from_secs(1),
            },
            clock.clone(),
            metrics.clone(),
        );
        for _ in 0..3 {
            assert!(breaker.fetch(HOST, Device::Web, 0).is_err());
        }
        assert_eq!(metrics.snapshot().breaker_trips, 1);
        assert_eq!(breaker.open_hosts(), vec![HOST.to_string()]);
        // While open: local rejection, no inner attempt.
        let before = breaker.inner.total_attempts();
        assert!(breaker.fetch(HOST, Device::Web, 0).is_err());
        assert_eq!(breaker.inner.total_attempts(), before);
        assert_eq!(metrics.snapshot().breaker_short_circuits, 1);
        // After the cooldown, the half-open probe succeeds (plan only
        // failed the first 3) and the circuit closes.
        clock.advance(Duration::from_secs(2));
        assert!(breaker.fetch(HOST, Device::Web, 0).is_ok());
        assert!(breaker.open_hosts().is_empty());
        assert!(breaker.fetch(HOST, Device::Web, 0).is_ok());
    }

    #[test]
    fn failed_half_open_probe_reopens() {
        let metrics = Arc::new(TransportMetrics::new());
        let clock: Arc<VirtualClock> = Arc::new(VirtualClock::new());
        let chaos = ChaosTransport::new(
            InProcessTransport::new(tiny_world()),
            FaultPlan::fail_first(100),
            metrics.clone(),
        );
        let breaker = CircuitBreakerTransport::new(
            chaos,
            CircuitBreakerPolicy {
                trip_after: 2,
                cooldown: Duration::from_secs(1),
            },
            clock.clone(),
            metrics.clone(),
        );
        for _ in 0..2 {
            let _ = breaker.fetch(HOST, Device::Web, 0);
        }
        clock.advance(Duration::from_secs(2));
        assert!(breaker.fetch(HOST, Device::Web, 0).is_err()); // failed probe
        assert_eq!(metrics.snapshot().breaker_trips, 2);
        assert!(!breaker.open_hosts().is_empty());
    }

    #[test]
    fn deadline_enforces_whole_crawl_budget() {
        let metrics = Arc::new(TransportMetrics::new());
        let clock: Arc<VirtualClock> = Arc::new(VirtualClock::new());
        let deadline = DeadlineTransport::new(
            InProcessTransport::new(tiny_world()),
            DeadlinePolicy {
                per_fetch: None,
                whole_crawl: Some(Duration::from_millis(12)),
                fetch_cost: Duration::from_millis(5),
            },
            clock,
            metrics.clone(),
        );
        assert!(deadline.fetch(HOST, Device::Web, 0).is_ok()); // t=5ms
        assert!(deadline.fetch(HOST, Device::Web, 0).is_ok()); // t=10ms
        assert!(deadline.fetch(HOST, Device::Web, 0).is_ok()); // t=15ms
        let err = deadline.fetch(HOST, Device::Web, 0).expect_err("budget");
        assert_eq!(err.class(), FetchClass::Timeout);
        assert_eq!(metrics.snapshot().crawl_deadline_hits, 1);
    }

    #[test]
    fn deadline_times_out_slow_fetches() {
        let metrics = Arc::new(TransportMetrics::new());
        let clock: Arc<VirtualClock> = Arc::new(VirtualClock::new());
        // Retry under the deadline layer: the backoff it spends counts
        // against the per-fetch budget.
        let chaos = ChaosTransport::new(
            InProcessTransport::new(tiny_world()),
            FaultPlan::fail_first(3),
            metrics.clone(),
        );
        let retry = RetryTransport::new(
            chaos,
            RetryPolicy {
                max_retries: 5,
                base_backoff: Duration::from_millis(200),
                ..RetryPolicy::default()
            },
            clock.clone(),
            metrics.clone(),
        );
        let deadline = DeadlineTransport::new(
            retry,
            DeadlinePolicy {
                per_fetch: Some(Duration::from_millis(100)),
                whole_crawl: None,
                fetch_cost: Duration::from_millis(5),
            },
            clock,
            metrics.clone(),
        );
        let err = deadline.fetch(HOST, Device::Web, 0).expect_err("timeout");
        assert_eq!(err.class(), FetchClass::Timeout);
        assert_eq!(metrics.snapshot().fetch_deadline_hits, 1);
    }

    #[test]
    fn fault_plans_fire_as_specified() {
        let first = FaultPlan::fail_first(2);
        assert!(first.fires("h", 1) && first.fires("h", 2) && !first.fires("h", 3));
        let every = FaultPlan::fail_every(3);
        assert!(!every.fires("h", 1) && !every.fires("h", 2) && every.fires("h", 3));
        assert!(every.fires("h", 6));
        let never = FaultPlan::none();
        assert!(!never.fires("h", 1));
        // Permille sampling is deterministic and roughly calibrated.
        let p = FaultPlan::fail_permille(300).with_seed(9);
        let hits = (1..=1000u32).filter(|&n| p.fires("host", n)).count();
        assert_eq!(hits, (1..=1000u32).filter(|&n| p.fires("host", n)).count());
        assert!((200..400).contains(&hits), "permille hits {hits}");
    }

    #[test]
    fn full_stack_composes_and_reports_metrics() {
        let stack = TransportStack::new(InProcessTransport::new(tiny_world()))
            .chaos(FaultPlan::fail_first(1))
            .retry(RetryPolicy::default())
            .breaker(CircuitBreakerPolicy::default())
            .deadline(DeadlinePolicy::default())
            .build();
        assert!(stack.fetch(HOST, Device::Web, 0).is_ok());
        let m = stack.metrics().expect("stack metrics");
        let s = m.snapshot();
        assert_eq!(s.retries, 1);
        assert_eq!(s.injected_total(), 1);
    }
}
