//! Chaos matrix: crawls under injected fault plans across worker
//! counts, checking determinism, zero-fault equivalence with the plain
//! transport, breaker behavior, and metrics reconciliation.

use squatphi_crawler::{
    crawl_all, CircuitBreakerPolicy, CrawlConfig, CrawlOutcome, CrawlRecord, CrawlStats,
    DeadlinePolicy, FaultPlan, FetchClass, InProcessTransport, RetryPolicy, TransportStack,
};
use squatphi_squat::{BrandId, BrandRegistry, SquatType};
use squatphi_web::{Device, WebWorld, WorldConfig};
use std::net::Ipv4Addr;
use std::sync::Arc;

fn world(
    seed: u64,
) -> (
    Vec<(String, BrandId, SquatType)>,
    BrandRegistry,
    Arc<WebWorld>,
) {
    let registry = BrandRegistry::with_size(8);
    let mut squats = Vec::new();
    for (i, b) in registry.brands().iter().enumerate() {
        for j in 0..12 {
            squats.push((
                format!("{}-sq{}.com", b.label, j),
                i,
                SquatType::Combo,
                Ipv4Addr::new(203, 0, (i % 200) as u8, j as u8),
            ));
        }
    }
    let cfg = WorldConfig {
        phishing_domains: 8,
        seed,
        ..WorldConfig::default()
    };
    let world = Arc::new(WebWorld::build(&squats, &registry, &cfg));
    let jobs = squats
        .iter()
        .map(|(d, b, t, _)| (d.clone(), *b, *t))
        .collect();
    (jobs, registry, world)
}

fn cfg(workers: usize) -> CrawlConfig {
    CrawlConfig::builder()
        .workers(workers)
        .build()
        .expect("nonzero workers")
}

fn stacked_crawl(
    jobs: &[(String, BrandId, SquatType)],
    registry: &BrandRegistry,
    w: &Arc<WebWorld>,
    plan: FaultPlan,
    workers: usize,
) -> (Vec<CrawlRecord>, CrawlStats) {
    let stack = TransportStack::new(InProcessTransport::new(w.clone()))
        .chaos(plan)
        .retry(RetryPolicy::default())
        .breaker(CircuitBreakerPolicy::default())
        .deadline(DeadlinePolicy::default())
        .build();
    crawl_all(jobs, registry, &stack, &cfg(workers))
}

/// Every fault plan replays byte-identically with a single worker, and
/// order-insensitive plans (zero-fault, all-fail) replay byte-identically
/// at every worker count. Order-sensitive plans (`fail_every`,
/// `fail_permille`) hit shared redirect-target hosts in scheduling order,
/// so their cross-run guarantee needs single-flight per host.
#[test]
fn chaos_matrix_replays_deterministically() {
    let (jobs, registry, w) = world(11);
    let single_worker_plans = [
        FaultPlan::none(),
        FaultPlan::fail_first(1),
        FaultPlan::fail_every(3),
        FaultPlan::fail_permille(250).with_seed(42),
    ];
    for plan in single_worker_plans {
        let (a, sa) = stacked_crawl(&jobs, &registry, &w, plan, 1);
        let (b, sb) = stacked_crawl(&jobs, &registry, &w, plan, 1);
        assert_eq!(a, b, "records diverged for {plan:?}");
        assert_eq!(sa, sb, "stats (incl. metrics) diverged for {plan:?}");
    }
    let order_insensitive = [FaultPlan::none(), FaultPlan::fail_every(1)];
    for plan in order_insensitive {
        let (base, _) = stacked_crawl(&jobs, &registry, &w, plan, 1);
        for workers in [2usize, 4, 8] {
            let (r, _) = stacked_crawl(&jobs, &registry, &w, plan, workers);
            assert_eq!(
                base, r,
                "records diverged at {workers} workers for {plan:?}"
            );
        }
    }
}

/// The zero-fault stack (chaos none + retry + breaker + deadline, all
/// defaults) produces byte-identical records and identical crawl
/// aggregates to the plain pre-middleware transport.
#[test]
fn zero_fault_stack_matches_plain_transport() {
    let (jobs, registry, w) = world(7);
    for workers in [1usize, 4] {
        let plain = InProcessTransport::new(w.clone());
        let (base_records, base_stats) = crawl_all(&jobs, &registry, &plain, &cfg(workers));
        let (stack_records, stack_stats) =
            stacked_crawl(&jobs, &registry, &w, FaultPlan::none(), workers);
        assert_eq!(base_records, stack_records);
        // Aggregates match except the transport counters themselves
        // (the stack's retry layer absorbs dead-host failures that the
        // bare engine sees directly).
        let mut base_stats = base_stats;
        let mut stack_stats = stack_stats;
        assert_eq!(stack_stats.transport.injected_total(), 0);
        base_stats.transport = Default::default();
        stack_stats.transport = Default::default();
        assert_eq!(base_stats, stack_stats);
    }
}

/// Under an all-fail plan the breaker trips per host, later fetches are
/// short-circuited, and every domain is still recorded (as dead) in
/// input order — nothing is dropped.
#[test]
fn breaker_tripped_hosts_are_recorded_dead_not_dropped() {
    let (jobs, registry, w) = world(3);
    for workers in [1usize, 4] {
        let (records, stats) =
            stacked_crawl(&jobs, &registry, &w, FaultPlan::fail_every(1), workers);
        assert_eq!(records.len(), jobs.len());
        for (r, j) in records.iter().zip(&jobs) {
            assert_eq!(r.domain, j.0, "input order broken");
            assert_eq!(r.outcome(Device::Web), CrawlOutcome::Dead);
            assert_eq!(r.outcome(Device::Mobile), CrawlOutcome::Dead);
        }
        let t = &stats.transport;
        assert!(t.breaker_trips as usize >= jobs.len(), "one trip per host");
        assert!(t.breaker_short_circuits > 0, "open breaker never consulted");
        assert_eq!(stats.web_live, 0);
        assert_eq!(stats.mobile_live, 0);
    }
}

/// Injected faults reconcile exactly with observed errors: every fault
/// the chaos layer injects is consumed exactly once — either absorbed by
/// the retry layer or surfaced to the engine — for classes the world
/// itself never produces.
#[test]
fn injected_faults_reconcile_with_observed_errors() {
    let (jobs, registry, w) = world(5);
    for class in [
        FetchClass::Timeout,
        FetchClass::Truncated,
        FetchClass::Injected,
    ] {
        for workers in [1usize, 4] {
            let plan = FaultPlan::fail_every(2).with_class(class);
            let stack = TransportStack::new(InProcessTransport::new(w.clone()))
                .chaos(plan)
                .retry(RetryPolicy::default())
                .build();
            let (_, stats) = crawl_all(&jobs, &registry, &stack, &cfg(workers));
            let t = &stats.transport;
            assert!(t.injected_of(class) > 0, "plan never fired for {class}");
            assert_eq!(
                t.injected_of(class),
                t.errors_of(class),
                "injected vs observed mismatch for {class} at {workers} workers"
            );
            assert_eq!(t.injected_total(), t.injected_of(class));
        }
    }
}

/// The per-fetch deadline layer converts slow chains into timeouts and
/// counts them; the whole-crawl budget cuts the crawl off while still
/// returning a record per job.
#[test]
fn deadline_budgets_are_enforced_and_counted() {
    let (jobs, registry, w) = world(13);
    // Whole-crawl budget of 40 fetch-costs: most fetches are answered
    // with a synthesized timeout once the budget is gone.
    let stack = TransportStack::new(InProcessTransport::new(w.clone()))
        .deadline(DeadlinePolicy {
            per_fetch: None,
            whole_crawl: Some(std::time::Duration::from_millis(200)),
            fetch_cost: std::time::Duration::from_millis(5),
        })
        .build();
    let (records, stats) = crawl_all(&jobs, &registry, &stack, &cfg(1));
    assert_eq!(records.len(), jobs.len(), "budget exhaustion dropped jobs");
    assert!(stats.transport.crawl_deadline_hits > 0);
    let dead = records
        .iter()
        .filter(|r| r.outcome(Device::Web) == CrawlOutcome::Dead)
        .count();
    assert!(dead > 0, "deadline never killed a fetch");
    assert!(
        stats.transport.errors_of(FetchClass::Timeout) > 0,
        "synthesized timeouts must be observed by the engine"
    );
}
