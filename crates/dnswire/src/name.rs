//! Domain-name encoding with RFC 1035 §4.1.4 message compression.

use crate::WireError;
use bytes::{BufMut, BytesMut};
use std::collections::HashMap;

/// Errors specific to wire-format names.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum NameError {
    /// A label exceeded 63 bytes or the name exceeded 255 bytes.
    TooLong,
    /// A compression pointer pointed forward or formed a loop.
    BadPointer,
    /// The packet ended inside a name.
    Truncated,
    /// Reserved label-type bits (0b10 / 0b01) were used.
    ReservedLabelType(u8),
}

impl std::fmt::Display for NameError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            NameError::TooLong => write!(f, "name or label too long"),
            NameError::BadPointer => write!(f, "bad compression pointer"),
            NameError::Truncated => write!(f, "name runs past end of packet"),
            NameError::ReservedLabelType(b) => write!(f, "reserved label type bits {b:#04x}"),
        }
    }
}

impl std::error::Error for NameError {}

/// Compression dictionary carried across one message encode: maps a dotted
/// suffix (e.g. `example.com`) to the packet offset where it was first
/// written.
#[derive(Debug, Default)]
pub struct Compressor {
    offsets: HashMap<String, u16>,
}

impl Compressor {
    /// New, empty dictionary.
    pub fn new() -> Self {
        Self::default()
    }
}

/// Encodes `name` (dotted, no trailing dot needed) at the current end of
/// `buf`, using and updating the compression dictionary.
pub fn encode_name(name: &str, buf: &mut BytesMut, comp: &mut Compressor) -> Result<(), WireError> {
    let name = name.trim_end_matches('.');
    if name.is_empty() {
        buf.put_u8(0);
        return Ok(());
    }
    if name.len() > 253 {
        return Err(NameError::TooLong.into());
    }
    let mut rest = name;
    loop {
        // Known suffix → emit pointer and stop.
        if let Some(&off) = comp.offsets.get(rest) {
            buf.put_u16(0xC000 | off);
            return Ok(());
        }
        // Remember this suffix if the offset is representable (14 bits).
        let here = buf.len();
        if here <= 0x3FFF {
            comp.offsets.insert(rest.to_string(), here as u16);
        }
        let (label, tail) = match rest.find('.') {
            Some(p) => (&rest[..p], &rest[p + 1..]),
            None => (rest, ""),
        };
        if label.is_empty() || label.len() > 63 {
            return Err(NameError::TooLong.into());
        }
        buf.put_u8(label.len() as u8);
        buf.put_slice(label.as_bytes());
        if tail.is_empty() {
            buf.put_u8(0);
            return Ok(());
        }
        rest = tail;
    }
}

/// Decodes a name starting at `pos` in `packet`. Returns the dotted name
/// and the offset just past the name *in the original stream* (pointers do
/// not advance the stream past their two bytes).
pub fn decode_name(packet: &[u8], pos: usize) -> Result<(String, usize), WireError> {
    let mut name = String::new();
    let mut i = pos;
    let mut after: Option<usize> = None;
    let mut jumps = 0usize;
    loop {
        let len = *packet.get(i).ok_or(NameError::Truncated)? as usize;
        match len & 0xC0 {
            0x00 => {
                if len == 0 {
                    i += 1;
                    break;
                }
                let label = packet.get(i + 1..i + 1 + len).ok_or(NameError::Truncated)?;
                if !name.is_empty() {
                    name.push('.');
                }
                // Wire labels are arbitrary bytes; we only generate ASCII,
                // so lossy conversion never actually loses data here.
                name.push_str(&String::from_utf8_lossy(label));
                i += 1 + len;
                if name.len() > 253 {
                    return Err(NameError::TooLong.into());
                }
            }
            0xC0 => {
                let b2 = *packet.get(i + 1).ok_or(NameError::Truncated)? as usize;
                let target = ((len & 0x3F) << 8) | b2;
                if after.is_none() {
                    after = Some(i + 2);
                }
                // Pointers must go strictly backwards; cap jumps as a
                // belt-and-braces loop guard.
                if target >= i || jumps > 63 {
                    return Err(NameError::BadPointer.into());
                }
                jumps += 1;
                i = target;
            }
            other => return Err(NameError::ReservedLabelType((other >> 6) as u8).into()),
        }
    }
    Ok((name, after.unwrap_or(i)))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn enc(name: &str) -> BytesMut {
        let mut buf = BytesMut::new();
        let mut c = Compressor::new();
        encode_name(name, &mut buf, &mut c).unwrap();
        buf
    }

    #[test]
    fn encodes_simple_name() {
        let buf = enc("example.com");
        assert_eq!(&buf[..], b"\x07example\x03com\x00");
    }

    #[test]
    fn round_trips() {
        for n in ["facebook.com", "a.b.c.d.e", "xn--fcebook-8va.com", "x.co"] {
            let buf = enc(n);
            let (dec, off) = decode_name(&buf, 0).unwrap();
            assert_eq!(dec, n);
            assert_eq!(off, buf.len());
        }
    }

    #[test]
    fn root_name_is_single_zero() {
        assert_eq!(&enc("")[..], b"\x00");
        let (dec, off) = decode_name(b"\x00", 0).unwrap();
        assert_eq!(dec, "");
        assert_eq!(off, 1);
    }

    #[test]
    fn compression_reuses_suffix() {
        let mut buf = BytesMut::new();
        let mut c = Compressor::new();
        encode_name("mail.example.com", &mut buf, &mut c).unwrap();
        let first_len = buf.len();
        encode_name("www.example.com", &mut buf, &mut c).unwrap();
        // Second name should be: 3 "www" + 2-byte pointer = 6 bytes.
        assert_eq!(buf.len() - first_len, 6);
        let (dec, _) = decode_name(&buf, first_len).unwrap();
        assert_eq!(dec, "www.example.com");
        // Full pointer (identical name) is just 2 bytes.
        let before = buf.len();
        encode_name("mail.example.com", &mut buf, &mut c).unwrap();
        assert_eq!(buf.len() - before, 2);
        let (dec, _) = decode_name(&buf, before).unwrap();
        assert_eq!(dec, "mail.example.com");
    }

    #[test]
    fn rejects_oversized_labels() {
        let label = "a".repeat(64);
        let mut buf = BytesMut::new();
        let mut c = Compressor::new();
        assert!(encode_name(&format!("{label}.com"), &mut buf, &mut c).is_err());
    }

    #[test]
    fn rejects_forward_and_looping_pointers() {
        // Pointer to itself at offset 0.
        assert!(decode_name(b"\xC0\x00", 0).is_err());
        // Forward pointer.
        assert!(decode_name(b"\xC0\x04\x00\x00\x01a\x00", 0).is_err());
        // Two pointers forming a cycle.
        let pkt = b"\xC0\x02\xC0\x00";
        assert!(decode_name(pkt, 2).is_err());
    }

    #[test]
    fn rejects_truncated_names() {
        assert!(decode_name(b"\x05abc", 0).is_err());
        assert!(decode_name(b"", 0).is_err());
        assert!(decode_name(b"\xC0", 0).is_err());
    }

    #[test]
    fn rejects_reserved_label_types() {
        assert!(matches!(
            decode_name(b"\x80abc", 0),
            Err(WireError::Name(NameError::ReservedLabelType(_)))
        ));
    }

    #[test]
    fn decode_returns_offset_after_pointer() {
        // Packet: name at 0 = "a.com"; name at 7 = pointer to 0.
        let mut buf = BytesMut::new();
        let mut c = Compressor::new();
        encode_name("a.com", &mut buf, &mut c).unwrap();
        let p = buf.len();
        encode_name("a.com", &mut buf, &mut c).unwrap();
        let (dec, off) = decode_name(&buf, p).unwrap();
        assert_eq!(dec, "a.com");
        assert_eq!(off, p + 2);
    }
}
