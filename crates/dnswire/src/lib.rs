//! DNS wire-format (RFC 1035) codec.
//!
//! The paper's squatting search runs over the ActiveDNS project's records,
//! which are produced by *active DNS probing*. Our reproduction rebuilds
//! that probing path end-to-end: this crate supplies the message codec used
//! by `squatphi-dnsdb`'s authoritative server and probing client.
//!
//! Scope: the record types that matter for the dataset (A, AAAA, NS, CNAME,
//! MX, TXT, SOA), full name compression on encode and decode, and strict
//! bounds checking — a malformed packet must never panic or loop.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod message;
pub mod name;
pub mod rdata;
pub mod zone;

pub use message::{Flags, Header, Message, Opcode, Question, Rcode, ResourceRecord};
pub use name::{decode_name, encode_name, NameError};
pub use rdata::{RData, RecordType};

/// Errors produced while encoding or decoding DNS messages.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WireError {
    /// Ran past the end of the packet.
    Truncated,
    /// A domain name failed validation (length, pointer loop, bad bytes).
    Name(NameError),
    /// Unknown or unsupported record type on a path that requires decoding.
    UnsupportedType(u16),
    /// RDATA length did not match the record type's expectation.
    BadRdata(&'static str),
}

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WireError::Truncated => write!(f, "truncated DNS message"),
            WireError::Name(e) => write!(f, "bad name: {e}"),
            WireError::UnsupportedType(t) => write!(f, "unsupported record type {t}"),
            WireError::BadRdata(w) => write!(f, "bad rdata: {w}"),
        }
    }
}

impl std::error::Error for WireError {}

impl From<NameError> for WireError {
    fn from(e: NameError) -> Self {
        WireError::Name(e)
    }
}
