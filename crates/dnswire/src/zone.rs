//! A small zone-file text format (RFC 1035 §5 master-file subset).
//!
//! The ActiveDNS pipeline persists snapshots; this codec lets `dnsdb`
//! export/import its synthetic zone in the familiar
//! `name TTL IN TYPE rdata` shape so fixtures can live on disk and be
//! diffed by humans.

use crate::rdata::RData;
use crate::ResourceRecord;
use std::net::{Ipv4Addr, Ipv6Addr};

/// Errors produced by [`parse_zone`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ZoneError {
    /// A line did not have the `name ttl IN type rdata` shape.
    BadLine {
        /// 1-based line number.
        line: usize,
        /// What went wrong.
        reason: &'static str,
    },
}

impl std::fmt::Display for ZoneError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ZoneError::BadLine { line, reason } => write!(f, "zone line {line}: {reason}"),
        }
    }
}

impl std::error::Error for ZoneError {}

/// Serializes records to zone-file text. Comments and unsupported RDATA
/// variants are skipped (SOA is emitted with its serial only — the fixed
/// timers are implementation details).
pub fn format_zone(records: &[ResourceRecord]) -> String {
    let mut out = String::new();
    for rr in records {
        let (ty, rdata) = match &rr.rdata {
            RData::A(ip) => ("A", ip.to_string()),
            RData::Aaaa(ip) => ("AAAA", ip.to_string()),
            RData::Ns(n) => ("NS", format!("{n}.")),
            RData::Cname(n) => ("CNAME", format!("{n}.")),
            RData::Mx {
                preference,
                exchange,
            } => ("MX", format!("{preference} {exchange}.")),
            RData::Txt(s) => ("TXT", format!("\"{}\"", s.replace('"', ""))),
            RData::Soa {
                mname,
                rname,
                serial,
            } => ("SOA", format!("{mname}. {rname}. {serial}")),
            RData::Raw(_) => continue,
        };
        out.push_str(&format!(
            "{}.\t{}\tIN\t{}\t{}\n",
            rr.name, rr.ttl, ty, rdata
        ));
    }
    out
}

/// Parses zone-file text produced by [`format_zone`] (plus `;` comments
/// and blank lines).
pub fn parse_zone(text: &str) -> Result<Vec<ResourceRecord>, ZoneError> {
    let mut out = Vec::new();
    for (i, raw) in text.lines().enumerate() {
        let line = i + 1;
        let content = raw.split(';').next().unwrap_or("").trim();
        if content.is_empty() {
            continue;
        }
        let fields: Vec<&str> = content.split_whitespace().collect();
        if fields.len() < 5 {
            return Err(ZoneError::BadLine {
                line,
                reason: "expected 5+ fields",
            });
        }
        let name = fields[0].trim_end_matches('.').to_string();
        let ttl: u32 = fields[1].parse().map_err(|_| ZoneError::BadLine {
            line,
            reason: "bad TTL",
        })?;
        if !fields[2].eq_ignore_ascii_case("IN") {
            return Err(ZoneError::BadLine {
                line,
                reason: "only class IN supported",
            });
        }
        let rdata = match fields[3].to_ascii_uppercase().as_str() {
            "A" => RData::A(
                fields[4]
                    .parse::<Ipv4Addr>()
                    .map_err(|_| ZoneError::BadLine {
                        line,
                        reason: "bad A address",
                    })?,
            ),
            "AAAA" => {
                RData::Aaaa(
                    fields[4]
                        .parse::<Ipv6Addr>()
                        .map_err(|_| ZoneError::BadLine {
                            line,
                            reason: "bad AAAA address",
                        })?,
                )
            }
            "NS" => RData::Ns(fields[4].trim_end_matches('.').to_string()),
            "CNAME" => RData::Cname(fields[4].trim_end_matches('.').to_string()),
            "MX" => {
                if fields.len() < 6 {
                    return Err(ZoneError::BadLine {
                        line,
                        reason: "MX needs pref + host",
                    });
                }
                RData::Mx {
                    preference: fields[4].parse().map_err(|_| ZoneError::BadLine {
                        line,
                        reason: "bad MX preference",
                    })?,
                    exchange: fields[5].trim_end_matches('.').to_string(),
                }
            }
            "TXT" => RData::Txt(
                content
                    .split_once('"')
                    .and_then(|(_, rest)| rest.rsplit_once('"'))
                    .map(|(body, _)| body.to_string())
                    .ok_or(ZoneError::BadLine {
                        line,
                        reason: "TXT needs quotes",
                    })?,
            ),
            "SOA" => {
                if fields.len() < 7 {
                    return Err(ZoneError::BadLine {
                        line,
                        reason: "SOA needs mname rname serial",
                    });
                }
                RData::Soa {
                    mname: fields[4].trim_end_matches('.').to_string(),
                    rname: fields[5].trim_end_matches('.').to_string(),
                    serial: fields[6].parse().map_err(|_| ZoneError::BadLine {
                        line,
                        reason: "bad SOA serial",
                    })?,
                }
            }
            _ => {
                return Err(ZoneError::BadLine {
                    line,
                    reason: "unsupported record type",
                })
            }
        };
        out.push(ResourceRecord { name, ttl, rdata });
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Vec<ResourceRecord> {
        vec![
            ResourceRecord {
                name: "faceb00k.pw".into(),
                ttl: 300,
                rdata: RData::A(Ipv4Addr::new(203, 0, 113, 9)),
            },
            ResourceRecord {
                name: "goofle.com.ua".into(),
                ttl: 60,
                rdata: RData::Cname("lander.ads.example".into()),
            },
            ResourceRecord {
                name: "paypal-cash.com".into(),
                ttl: 3600,
                rdata: RData::Mx {
                    preference: 10,
                    exchange: "mx.paypal-cash.com".into(),
                },
            },
            ResourceRecord {
                name: "zone.example".into(),
                ttl: 86400,
                rdata: RData::Soa {
                    mname: "ns1.zone.example".into(),
                    rname: "hostmaster.zone.example".into(),
                    serial: 20180906,
                },
            },
            ResourceRecord {
                name: "note.example".into(),
                ttl: 30,
                rdata: RData::Txt("squatting phishing fixture".into()),
            },
        ]
    }

    #[test]
    fn round_trips() {
        let records = sample();
        let text = format_zone(&records);
        let parsed = parse_zone(&text).expect("parse what we formatted");
        assert_eq!(parsed, records);
    }

    #[test]
    fn comments_and_blanks_skipped() {
        let text = "; a comment\n\nfaceb00k.pw.\t300\tIN\tA\t203.0.113.9 ; trailing\n";
        let parsed = parse_zone(text).expect("valid");
        assert_eq!(parsed.len(), 1);
        assert_eq!(parsed[0].name, "faceb00k.pw");
    }

    #[test]
    fn errors_carry_line_numbers() {
        let err = parse_zone("good.example.\t60\tIN\tA\t1.2.3.4\nbad line here\n").unwrap_err();
        assert_eq!(
            err,
            ZoneError::BadLine {
                line: 2,
                reason: "expected 5+ fields"
            }
        );
        let err = parse_zone("x.example.\tNaN\tIN\tA\t1.2.3.4\n").unwrap_err();
        assert!(matches!(err, ZoneError::BadLine { line: 1, .. }));
    }

    #[test]
    fn rejects_unknown_types_and_classes() {
        assert!(parse_zone("x.example.\t60\tCH\tA\t1.2.3.4\n").is_err());
        assert!(parse_zone("x.example.\t60\tIN\tSRV\t1 2 3 t.example.\n").is_err());
    }
}
