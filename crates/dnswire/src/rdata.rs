//! Record types and RDATA payloads.

use crate::name::{decode_name, encode_name, Compressor};
use crate::WireError;
use bytes::{BufMut, BytesMut};
use std::net::{Ipv4Addr, Ipv6Addr};

/// The record types the ActiveDNS-style dataset carries.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum RecordType {
    /// IPv4 address.
    A,
    /// IPv6 address.
    Aaaa,
    /// Authoritative name server.
    Ns,
    /// Canonical name (alias).
    Cname,
    /// Mail exchanger.
    Mx,
    /// Free-form text.
    Txt,
    /// Start of authority.
    Soa,
    /// Anything else (kept as a number so queries round-trip).
    Other(u16),
}

impl RecordType {
    /// Wire value (RFC 1035 §3.2.2).
    pub fn to_u16(self) -> u16 {
        match self {
            RecordType::A => 1,
            RecordType::Ns => 2,
            RecordType::Cname => 5,
            RecordType::Soa => 6,
            RecordType::Mx => 15,
            RecordType::Txt => 16,
            RecordType::Aaaa => 28,
            RecordType::Other(v) => v,
        }
    }

    /// From wire value.
    pub fn from_u16(v: u16) -> Self {
        match v {
            1 => RecordType::A,
            2 => RecordType::Ns,
            5 => RecordType::Cname,
            6 => RecordType::Soa,
            15 => RecordType::Mx,
            16 => RecordType::Txt,
            28 => RecordType::Aaaa,
            other => RecordType::Other(other),
        }
    }
}

/// Decoded RDATA payload.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RData {
    /// A record.
    A(Ipv4Addr),
    /// AAAA record.
    Aaaa(Ipv6Addr),
    /// NS record.
    Ns(String),
    /// CNAME record.
    Cname(String),
    /// MX record: preference + exchange host.
    Mx {
        /// Preference (lower wins).
        preference: u16,
        /// Exchange host name.
        exchange: String,
    },
    /// TXT record (single character-string for simplicity).
    Txt(String),
    /// SOA record, trimmed to the fields the dataset uses.
    Soa {
        /// Primary name server.
        mname: String,
        /// Responsible mailbox.
        rname: String,
        /// Zone serial.
        serial: u32,
    },
    /// Raw bytes for unsupported types.
    Raw(Vec<u8>),
}

impl RData {
    /// The record type this payload belongs to.
    pub fn record_type(&self) -> RecordType {
        match self {
            RData::A(_) => RecordType::A,
            RData::Aaaa(_) => RecordType::Aaaa,
            RData::Ns(_) => RecordType::Ns,
            RData::Cname(_) => RecordType::Cname,
            RData::Mx { .. } => RecordType::Mx,
            RData::Txt(_) => RecordType::Txt,
            RData::Soa { .. } => RecordType::Soa,
            RData::Raw(_) => RecordType::Other(0),
        }
    }

    /// Encodes the payload (without the length prefix — the caller patches
    /// RDLENGTH afterwards because compression makes it position-dependent).
    pub(crate) fn encode(
        &self,
        buf: &mut BytesMut,
        comp: &mut Compressor,
    ) -> Result<(), WireError> {
        match self {
            RData::A(ip) => buf.put_slice(&ip.octets()),
            RData::Aaaa(ip) => buf.put_slice(&ip.octets()),
            RData::Ns(n) | RData::Cname(n) => encode_name(n, buf, comp)?,
            RData::Mx {
                preference,
                exchange,
            } => {
                buf.put_u16(*preference);
                encode_name(exchange, buf, comp)?;
            }
            RData::Txt(s) => {
                let bytes = s.as_bytes();
                let len = bytes.len().min(255);
                buf.put_u8(len as u8);
                buf.put_slice(&bytes[..len]);
            }
            RData::Soa {
                mname,
                rname,
                serial,
            } => {
                encode_name(mname, buf, comp)?;
                encode_name(rname, buf, comp)?;
                buf.put_u32(*serial);
                // refresh / retry / expire / minimum — fixed sane defaults.
                buf.put_u32(3600);
                buf.put_u32(600);
                buf.put_u32(86400);
                buf.put_u32(60);
            }
            RData::Raw(bytes) => buf.put_slice(bytes),
        }
        Ok(())
    }

    /// Decodes RDATA of `rtype` occupying `packet[pos..pos+len]`.
    pub(crate) fn decode(
        rtype: RecordType,
        packet: &[u8],
        pos: usize,
        len: usize,
    ) -> Result<RData, WireError> {
        let slice = packet.get(pos..pos + len).ok_or(WireError::Truncated)?;
        Ok(match rtype {
            RecordType::A => {
                let o: [u8; 4] = slice
                    .try_into()
                    .map_err(|_| WireError::BadRdata("A length"))?;
                RData::A(Ipv4Addr::from(o))
            }
            RecordType::Aaaa => {
                let o: [u8; 16] = slice
                    .try_into()
                    .map_err(|_| WireError::BadRdata("AAAA length"))?;
                RData::Aaaa(Ipv6Addr::from(o))
            }
            RecordType::Ns => RData::Ns(decode_name(packet, pos)?.0),
            RecordType::Cname => RData::Cname(decode_name(packet, pos)?.0),
            RecordType::Mx => {
                if len < 3 {
                    return Err(WireError::BadRdata("MX length"));
                }
                let preference = u16::from_be_bytes([slice[0], slice[1]]);
                let exchange = decode_name(packet, pos + 2)?.0;
                RData::Mx {
                    preference,
                    exchange,
                }
            }
            RecordType::Txt => {
                if slice.is_empty() {
                    return Err(WireError::BadRdata("TXT empty"));
                }
                let l = slice[0] as usize;
                let body = slice
                    .get(1..1 + l)
                    .ok_or(WireError::BadRdata("TXT length"))?;
                RData::Txt(String::from_utf8_lossy(body).into_owned())
            }
            RecordType::Soa => {
                let (mname, off) = decode_name(packet, pos)?;
                let (rname, off) = decode_name(packet, off)?;
                let serial_bytes = packet.get(off..off + 4).ok_or(WireError::Truncated)?;
                let serial = u32::from_be_bytes(serial_bytes.try_into().expect("4 bytes"));
                RData::Soa {
                    mname,
                    rname,
                    serial,
                }
            }
            RecordType::Other(_) => RData::Raw(slice.to_vec()),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_type_round_trips() {
        for t in [
            RecordType::A,
            RecordType::Aaaa,
            RecordType::Ns,
            RecordType::Cname,
            RecordType::Mx,
            RecordType::Txt,
            RecordType::Soa,
            RecordType::Other(999),
        ] {
            assert_eq!(RecordType::from_u16(t.to_u16()), t);
        }
    }

    fn round_trip(rd: &RData) -> RData {
        let mut buf = BytesMut::new();
        let mut c = Compressor::new();
        rd.encode(&mut buf, &mut c).unwrap();
        RData::decode(rd.record_type(), &buf, 0, buf.len()).unwrap()
    }

    #[test]
    fn a_and_aaaa_round_trip() {
        let a = RData::A(Ipv4Addr::new(93, 184, 216, 34));
        assert_eq!(round_trip(&a), a);
        let aaaa = RData::Aaaa("2606:2800:220:1:248:1893:25c8:1946".parse().unwrap());
        assert_eq!(round_trip(&aaaa), aaaa);
    }

    #[test]
    fn name_bearing_rdata_round_trips() {
        for rd in [
            RData::Ns("ns1.example.com".into()),
            RData::Cname("target.example.org".into()),
            RData::Mx {
                preference: 10,
                exchange: "mx.example.com".into(),
            },
        ] {
            assert_eq!(round_trip(&rd), rd);
        }
    }

    #[test]
    fn txt_round_trips_and_truncates_at_255() {
        let rd = RData::Txt("hello world".into());
        assert_eq!(round_trip(&rd), rd);
        let long = RData::Txt("x".repeat(300));
        match round_trip(&long) {
            RData::Txt(s) => assert_eq!(s.len(), 255),
            other => panic!("expected TXT, got {other:?}"),
        }
    }

    #[test]
    fn soa_round_trips() {
        let rd = RData::Soa {
            mname: "ns1.zone.com".into(),
            rname: "hostmaster.zone.com".into(),
            serial: 20180906,
        };
        assert_eq!(round_trip(&rd), rd);
    }

    #[test]
    fn decode_rejects_short_buffers() {
        assert!(RData::decode(RecordType::A, &[1, 2, 3], 0, 3).is_err());
        assert!(RData::decode(RecordType::Mx, &[0], 0, 1).is_err());
        assert!(RData::decode(RecordType::Txt, &[], 0, 0).is_err());
        assert!(RData::decode(RecordType::A, &[1, 2, 3, 4], 2, 4).is_err());
    }
}
