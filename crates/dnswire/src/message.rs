//! DNS message: header, question and resource-record sections.

use crate::name::{decode_name, encode_name, Compressor};
use crate::rdata::{RData, RecordType};
use crate::WireError;
use bytes::{BufMut, BytesMut};

/// Query/response opcode (we only use QUERY).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Opcode {
    /// Standard query.
    Query,
    /// Anything else, preserved numerically.
    Other(u8),
}

/// Response code.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Rcode {
    /// No error.
    NoError,
    /// Format error.
    FormErr,
    /// Server failure.
    ServFail,
    /// Name does not exist.
    NxDomain,
    /// Not implemented.
    NotImp,
    /// Query refused.
    Refused,
    /// Other code.
    Other(u8),
}

impl Rcode {
    fn to_u8(self) -> u8 {
        match self {
            Rcode::NoError => 0,
            Rcode::FormErr => 1,
            Rcode::ServFail => 2,
            Rcode::NxDomain => 3,
            Rcode::NotImp => 4,
            Rcode::Refused => 5,
            Rcode::Other(v) => v & 0x0F,
        }
    }

    fn from_u8(v: u8) -> Self {
        match v & 0x0F {
            0 => Rcode::NoError,
            1 => Rcode::FormErr,
            2 => Rcode::ServFail,
            3 => Rcode::NxDomain,
            4 => Rcode::NotImp,
            5 => Rcode::Refused,
            other => Rcode::Other(other),
        }
    }
}

/// Header flag bits.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Flags {
    /// Query (false) or response (true).
    pub response: bool,
    /// Authoritative answer.
    pub authoritative: bool,
    /// Message was truncated.
    pub truncated: bool,
    /// Recursion desired.
    pub recursion_desired: bool,
    /// Recursion available.
    pub recursion_available: bool,
    /// Response code.
    pub rcode: u8,
}

/// Message header (12 bytes on the wire).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Header {
    /// Transaction id.
    pub id: u16,
    /// Flag bits.
    pub flags: Flags,
}

/// A question-section entry.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Question {
    /// Queried name (dotted).
    pub name: String,
    /// Queried type.
    pub rtype: RecordType,
}

/// A resource record in the answer/authority/additional sections.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ResourceRecord {
    /// Owner name.
    pub name: String,
    /// Time to live.
    pub ttl: u32,
    /// Payload.
    pub rdata: RData,
}

/// A decoded (or to-be-encoded) DNS message.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Message {
    /// Header.
    pub header: Header,
    /// Question section.
    pub questions: Vec<Question>,
    /// Answer section.
    pub answers: Vec<ResourceRecord>,
    /// Authority section.
    pub authority: Vec<ResourceRecord>,
}

impl Message {
    /// Builds a standard A-record query.
    pub fn query(id: u16, name: &str, rtype: RecordType) -> Self {
        Message {
            header: Header {
                id,
                flags: Flags {
                    recursion_desired: true,
                    ..Flags::default()
                },
            },
            questions: vec![Question {
                name: name.to_string(),
                rtype,
            }],
            answers: Vec::new(),
            authority: Vec::new(),
        }
    }

    /// Builds a response skeleton echoing `query`'s id and question.
    pub fn response_to(query: &Message, rcode: Rcode) -> Self {
        Message {
            header: Header {
                id: query.header.id,
                flags: Flags {
                    response: true,
                    authoritative: true,
                    recursion_desired: query.header.flags.recursion_desired,
                    rcode: rcode.to_u8(),
                    ..Flags::default()
                },
            },
            questions: query.questions.clone(),
            answers: Vec::new(),
            authority: Vec::new(),
        }
    }

    /// The response code as an enum.
    pub fn rcode(&self) -> Rcode {
        Rcode::from_u8(self.header.flags.rcode)
    }

    /// Encodes the message to wire format.
    pub fn encode(&self) -> Result<Vec<u8>, WireError> {
        let mut buf = BytesMut::with_capacity(512);
        let mut comp = Compressor::new();
        let f = &self.header.flags;
        buf.put_u16(self.header.id);
        let mut flags: u16 = 0;
        if f.response {
            flags |= 0x8000;
        }
        if f.authoritative {
            flags |= 0x0400;
        }
        if f.truncated {
            flags |= 0x0200;
        }
        if f.recursion_desired {
            flags |= 0x0100;
        }
        if f.recursion_available {
            flags |= 0x0080;
        }
        flags |= (f.rcode & 0x0F) as u16;
        buf.put_u16(flags);
        buf.put_u16(self.questions.len() as u16);
        buf.put_u16(self.answers.len() as u16);
        buf.put_u16(self.authority.len() as u16);
        buf.put_u16(0); // additional

        for q in &self.questions {
            encode_name(&q.name, &mut buf, &mut comp)?;
            buf.put_u16(q.rtype.to_u16());
            buf.put_u16(1); // class IN
        }
        for rr in self.answers.iter().chain(self.authority.iter()) {
            encode_name(&rr.name, &mut buf, &mut comp)?;
            buf.put_u16(rr.rdata.record_type().to_u16());
            buf.put_u16(1); // class IN
            buf.put_u32(rr.ttl);
            let len_pos = buf.len();
            buf.put_u16(0); // RDLENGTH placeholder
            rr.rdata.encode(&mut buf, &mut comp)?;
            let rdlen = (buf.len() - len_pos - 2) as u16;
            buf[len_pos..len_pos + 2].copy_from_slice(&rdlen.to_be_bytes());
        }
        Ok(buf.to_vec())
    }

    /// Decodes a message from wire format.
    pub fn decode(packet: &[u8]) -> Result<Self, WireError> {
        if packet.len() < 12 {
            return Err(WireError::Truncated);
        }
        let id = u16::from_be_bytes([packet[0], packet[1]]);
        let flags = u16::from_be_bytes([packet[2], packet[3]]);
        let qd = u16::from_be_bytes([packet[4], packet[5]]) as usize;
        let an = u16::from_be_bytes([packet[6], packet[7]]) as usize;
        let ns = u16::from_be_bytes([packet[8], packet[9]]) as usize;
        // additional count ignored (we never send any)

        let header = Header {
            id,
            flags: Flags {
                response: flags & 0x8000 != 0,
                authoritative: flags & 0x0400 != 0,
                truncated: flags & 0x0200 != 0,
                recursion_desired: flags & 0x0100 != 0,
                recursion_available: flags & 0x0080 != 0,
                rcode: (flags & 0x0F) as u8,
            },
        };

        let mut pos = 12usize;
        let mut questions = Vec::with_capacity(qd);
        for _ in 0..qd {
            let (name, after) = decode_name(packet, pos)?;
            let t = packet.get(after..after + 2).ok_or(WireError::Truncated)?;
            let rtype = RecordType::from_u16(u16::from_be_bytes([t[0], t[1]]));
            pos = after + 4; // type + class
            if pos > packet.len() {
                return Err(WireError::Truncated);
            }
            questions.push(Question { name, rtype });
        }

        let read_section =
            |pos: &mut usize, count: usize| -> Result<Vec<ResourceRecord>, WireError> {
                let mut out = Vec::with_capacity(count);
                for _ in 0..count {
                    let (name, after) = decode_name(packet, *pos)?;
                    let fixed = packet.get(after..after + 10).ok_or(WireError::Truncated)?;
                    let rtype = RecordType::from_u16(u16::from_be_bytes([fixed[0], fixed[1]]));
                    let ttl = u32::from_be_bytes([fixed[4], fixed[5], fixed[6], fixed[7]]);
                    let rdlen = u16::from_be_bytes([fixed[8], fixed[9]]) as usize;
                    let rd_pos = after + 10;
                    let rdata = RData::decode(rtype, packet, rd_pos, rdlen)?;
                    *pos = rd_pos + rdlen;
                    if *pos > packet.len() {
                        return Err(WireError::Truncated);
                    }
                    out.push(ResourceRecord { name, ttl, rdata });
                }
                Ok(out)
            };
        let answers = read_section(&mut pos, an)?;
        let authority = read_section(&mut pos, ns)?;

        Ok(Message {
            header,
            questions,
            answers,
            authority,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::Ipv4Addr;

    #[test]
    fn query_round_trips() {
        let q = Message::query(0x1234, "faceb00k.pw", RecordType::A);
        let wire = q.encode().unwrap();
        let dec = Message::decode(&wire).unwrap();
        assert_eq!(dec, q);
        assert!(!dec.header.flags.response);
        assert_eq!(dec.questions[0].name, "faceb00k.pw");
    }

    #[test]
    fn response_round_trips_with_answers() {
        let q = Message::query(7, "goofle.com.ua", RecordType::A);
        let mut r = Message::response_to(&q, Rcode::NoError);
        r.answers.push(ResourceRecord {
            name: "goofle.com.ua".into(),
            ttl: 300,
            rdata: RData::A(Ipv4Addr::new(203, 0, 113, 7)),
        });
        let wire = r.encode().unwrap();
        let dec = Message::decode(&wire).unwrap();
        assert_eq!(dec, r);
        assert!(dec.header.flags.response);
        assert!(dec.header.flags.authoritative);
        assert_eq!(dec.rcode(), Rcode::NoError);
    }

    #[test]
    fn nxdomain_round_trips() {
        let q = Message::query(9, "nonexistent.example.com", RecordType::A);
        let r = Message::response_to(&q, Rcode::NxDomain);
        let dec = Message::decode(&r.encode().unwrap()).unwrap();
        assert_eq!(dec.rcode(), Rcode::NxDomain);
        assert_eq!(dec.questions[0].name, "nonexistent.example.com");
    }

    #[test]
    fn compression_shrinks_answer_names() {
        let q = Message::query(1, "a.very.long.domain.example.com", RecordType::A);
        let mut r = Message::response_to(&q, Rcode::NoError);
        for i in 0..5 {
            r.answers.push(ResourceRecord {
                name: "a.very.long.domain.example.com".into(),
                ttl: 60,
                rdata: RData::A(Ipv4Addr::new(10, 0, 0, i)),
            });
        }
        let wire = r.encode().unwrap();
        // Without compression each answer name alone is 32 bytes; with
        // pointers each answer costs 2 (ptr) + 10 (fixed) + 4 (A) = 16.
        assert!(
            wire.len() < 12 + 36 + 5 * 20,
            "compression ineffective: {}",
            wire.len()
        );
        assert_eq!(Message::decode(&wire).unwrap(), r);
    }

    #[test]
    fn decode_rejects_garbage() {
        assert!(Message::decode(&[]).is_err());
        assert!(Message::decode(&[0u8; 5]).is_err());
        // Claims one question but has none.
        let mut hdr = vec![0u8; 12];
        hdr[5] = 1;
        assert!(Message::decode(&hdr).is_err());
    }

    #[test]
    fn decode_rejects_rdata_overrun() {
        let q = Message::query(2, "x.com", RecordType::A);
        let mut r = Message::response_to(&q, Rcode::NoError);
        r.answers.push(ResourceRecord {
            name: "x.com".into(),
            ttl: 1,
            rdata: RData::A(Ipv4Addr::LOCALHOST),
        });
        let mut wire = r.encode().unwrap();
        // Truncate mid-RDATA.
        wire.truncate(wire.len() - 2);
        assert!(Message::decode(&wire).is_err());
    }

    #[test]
    fn soa_authority_section() {
        let q = Message::query(3, "gone.example.com", RecordType::A);
        let mut r = Message::response_to(&q, Rcode::NxDomain);
        r.authority.push(ResourceRecord {
            name: "example.com".into(),
            ttl: 60,
            rdata: RData::Soa {
                mname: "ns1.example.com".into(),
                rname: "hostmaster.example.com".into(),
                serial: 42,
            },
        });
        let dec = Message::decode(&r.encode().unwrap()).unwrap();
        assert_eq!(dec.authority.len(), 1);
        assert_eq!(dec, r);
    }
}
