//! Wire-robustness matrix for `Message::decode`: every strict prefix of a
//! valid encoded message must come back as `Err(WireError)` — never a
//! panic, never an infinite loop — and hand-built pathological packets
//! (compression-pointer cycles, forward pointers, reserved label types)
//! must be rejected the same way.

use squatphi_dnswire::name::decode_name;
use squatphi_dnswire::{Message, RData, Rcode, RecordType, ResourceRecord};
use std::net::{Ipv4Addr, Ipv6Addr};

/// A response exercising every section and rdata shape the codec emits:
/// questions, compressed answer names, MX/TXT/SOA/AAAA payloads and an
/// authority record.
fn rich_message() -> Message {
    let q = Message::query(0xBEEF, "mail.paypal-secure.com.ua", RecordType::A);
    let mut r = Message::response_to(&q, Rcode::NoError);
    r.answers.push(ResourceRecord {
        name: "mail.paypal-secure.com.ua".into(),
        ttl: 300,
        rdata: RData::A(Ipv4Addr::new(203, 0, 113, 9)),
    });
    r.answers.push(ResourceRecord {
        name: "mail.paypal-secure.com.ua".into(),
        ttl: 300,
        rdata: RData::Aaaa(Ipv6Addr::new(0x2001, 0xdb8, 0, 0, 0, 0, 0, 1)),
    });
    r.answers.push(ResourceRecord {
        name: "paypal-secure.com.ua".into(),
        ttl: 600,
        rdata: RData::Mx {
            preference: 10,
            exchange: "mx1.paypal-secure.com.ua".into(),
        },
    });
    r.answers.push(ResourceRecord {
        name: "paypal-secure.com.ua".into(),
        ttl: 60,
        rdata: RData::Txt("v=spf1 -all".into()),
    });
    r.authority.push(ResourceRecord {
        name: "com.ua".into(),
        ttl: 3600,
        rdata: RData::Soa {
            mname: "ns1.com.ua".into(),
            rname: "hostmaster.com.ua".into(),
            serial: 20240101,
        },
    });
    r
}

/// Every strict prefix of a valid message errors — no panic, no hang.
/// This covers truncation inside the header, mid-name, mid-pointer,
/// mid-fixed-RR-fields and mid-RDATA.
#[test]
fn every_prefix_of_valid_message_errors() {
    let wire = rich_message().encode().expect("encode");
    assert!(Message::decode(&wire).is_ok(), "full packet must decode");
    for cut in 0..wire.len() {
        let prefix = &wire[..cut];
        assert!(
            Message::decode(prefix).is_err(),
            "prefix of {cut}/{} bytes decoded successfully",
            wire.len()
        );
    }
}

/// Same matrix over a minimal query (the other common packet shape).
#[test]
fn every_prefix_of_query_errors() {
    let wire = Message::query(1, "a.co", RecordType::A).encode().unwrap();
    assert!(Message::decode(&wire).is_ok());
    for cut in 0..wire.len() {
        assert!(Message::decode(&wire[..cut]).is_err(), "prefix {cut}");
    }
}

/// Corrupting the section counts upward on a truncated body must error,
/// not over-read: each claimed-but-absent record is a truncation.
#[test]
fn inflated_counts_error() {
    let wire = rich_message().encode().unwrap();
    for (off, name) in [(4usize, "qdcount"), (6, "ancount"), (8, "nscount")] {
        let mut bad = wire.clone();
        bad[off] = 0xFF;
        bad[off + 1] = 0xFF;
        assert!(
            Message::decode(&bad).is_err(),
            "{name}=0xFFFF decoded successfully"
        );
    }
}

/// A name whose compression pointer points at itself must error, and the
/// decode must terminate (the jump cap bounds the walk).
#[test]
fn pointer_self_cycle_errors() {
    // Header claiming one question, then a name that is a pointer to its
    // own offset (12).
    let mut pkt = vec![0u8; 12];
    pkt[5] = 1; // qdcount = 1
    pkt.extend_from_slice(&[0xC0, 12]); // pointer -> itself
    pkt.extend_from_slice(&[0, 1, 0, 1]); // type A, class IN
    assert!(Message::decode(&pkt).is_err());
}

/// Two pointers forming a mutual cycle must error.
#[test]
fn pointer_mutual_cycle_errors() {
    // Bytes 12..14 point to 14; bytes 14..16 point to 12. Start the
    // question name at 14 so the first hop goes backwards (passing the
    // strictly-backwards check) and the second hop must be caught.
    let mut pkt = vec![0u8; 12];
    pkt[5] = 1;
    pkt.extend_from_slice(&[0xC0, 14]); // offset 12 -> 14 (forward, unused)
    pkt.extend_from_slice(&[0xC0, 12]); // offset 14 -> 12
    pkt.extend_from_slice(&[0, 1, 0, 1]);
    // decode_name at 14: jumps to 12, which points forward to 14 → cycle.
    assert!(decode_name(&pkt, 14).is_err());
    assert!(Message::decode(&pkt).is_err());
}

/// A long chain of strictly-backwards pointers must terminate via the
/// jump cap rather than walking forever.
#[test]
fn deep_pointer_chain_terminates() {
    // Layout: label "a" + terminator at 0, then 200 pointers each
    // pointing at the previous pointer (strictly backwards, so each hop
    // passes the direction check; only the cap stops the walk).
    let mut pkt = vec![1, b'a', 0];
    let mut prev = 0u16;
    for _ in 0..200 {
        let here = pkt.len() as u16;
        pkt.push(0xC0 | (prev >> 8) as u8);
        pkt.push((prev & 0xFF) as u8);
        prev = here;
    }
    let start = pkt.len() - 2;
    // Must return (either the name, or a BadPointer once the cap hits) —
    // the assertion is termination, the is_err is the cap firing.
    assert!(decode_name(&pkt, start).is_err(), "jump cap must fire");
}

/// Reserved label-type bits (0b10 / 0b01) inside a question name error.
#[test]
fn reserved_label_types_error() {
    for bits in [0x40u8, 0x80] {
        let mut pkt = vec![0u8; 12];
        pkt[5] = 1;
        pkt.extend_from_slice(&[bits, b'x', 0]);
        pkt.extend_from_slice(&[0, 1, 0, 1]);
        assert!(Message::decode(&pkt).is_err(), "label type {bits:#04x}");
    }
}

/// RDLENGTH lying about the payload size (both directions) must error
/// when it runs past the packet end.
#[test]
fn rdlength_overrun_errors() {
    let q = Message::query(2, "x.com", RecordType::A);
    let mut r = Message::response_to(&q, Rcode::NoError);
    r.answers.push(ResourceRecord {
        name: "x.com".into(),
        ttl: 1,
        rdata: RData::A(Ipv4Addr::LOCALHOST),
    });
    let wire = r.encode().unwrap();
    // The A-record RDLENGTH is the last length field before the 4 payload
    // bytes; inflate it so the claimed payload runs past the end.
    let len_pos = wire.len() - 6;
    let mut bad = wire.clone();
    bad[len_pos] = 0xFF;
    bad[len_pos + 1] = 0xFF;
    assert!(Message::decode(&bad).is_err());
}
