//! Shrunk counterexamples from the generator↔detector differential oracle
//! (`squatphi-conformance`). Each test is a domain the oracle surfaced as a
//! disagreement between `PregeneratedDetector` (forward generators hashed)
//! and `SquatDetector` (reverse O(len) probing), minimized by hand to the
//! smallest label that still exercised the defect, committed here so the
//! fixes never regress.

use squatphi_domain::DomainName;
use squatphi_squat::{BrandRegistry, SquatDetector, SquatType};

fn detector() -> (BrandRegistry, SquatDetector) {
    let reg = BrandRegistry::paper();
    let det = SquatDetector::new(&reg);
    (reg, det)
}

fn expect(det: &SquatDetector, reg: &BrandRegistry, domain: &str, brand: &str, ty: SquatType) {
    let m = det
        .classify(&DomainName::parse(domain).unwrap())
        .unwrap_or_else(|| panic!("{domain} not detected"));
    assert_eq!(
        reg.get(m.brand).unwrap().label,
        brand,
        "{domain}: wrong brand"
    );
    assert_eq!(m.squat_type, ty, "{domain}: wrong type");
}

/// Two `l`→`1` swaps at once: the old per-position substitution probe
/// restored each position before trying the next, so only single-swap
/// homographs matched. The canonical-fold index resolves any number of
/// positions with one probe.
#[test]
fn multi_position_digit_swaps_a11iancebank() {
    let (reg, det) = detector();
    expect(
        &det,
        &reg,
        "a11iancebank.com.ua",
        "alliancebank",
        SquatType::Homograph,
    );
}

/// Same defect, letter-for-letter: both `l`s replaced by `i`s.
#[test]
fn multi_position_letter_swaps_aiiiancebank() {
    let (reg, det) = detector();
    expect(
        &det,
        &reg,
        "aiiiancebank.net",
        "alliancebank",
        SquatType::Homograph,
    );
}

/// Both `g`s swapped for `q`s in one label.
#[test]
fn double_q_for_g_bloqqer() {
    let (reg, det) = detector();
    expect(&det, &reg, "bloqqer.net", "blogger", SquatType::Homograph);
}

/// A brand whose *own* label contains a confusable digit (`nets53`): the
/// raw-label index never matched the folded probe string (`netss3`), so
/// every homograph of the brand was invisible. The canonical index keys
/// brands by their folds, which makes these reachable.
#[test]
fn confusable_digits_inside_brand_nets53() {
    let (reg, det) = detector();
    expect(&det, &reg, "net553.com", "nets53", SquatType::Homograph);
    expect(&det, &reg, "netss3.com", "nets53", SquatType::Homograph);
}

/// `rn`→`m` folding probed only the *first* occurrence of the sequence;
/// `fernrnart` (fernmart with `m`→`rn`) contains `rn` twice and only the
/// second fold recovers the brand.
#[test]
fn second_sequence_occurrence_fernrnart() {
    let (reg, det) = detector();
    expect(&det, &reg, "fernrnart.co", "fernmart", SquatType::Homograph);
    expect(
        &det,
        &reg,
        "fernnnart.net",
        "fernmart",
        SquatType::Homograph,
    );
}

/// `service-paypal`: affix probing on token "service" found brand "vice"
/// before the exact-token pass ever saw "paypal". Exact token matches now
/// run across all tokens before any affix probing.
#[test]
fn combo_exact_token_outranks_affix_service_paypal() {
    let (reg, det) = detector();
    expect(&det, &reg, "service-paypal.com", "paypal", SquatType::Combo);
}

/// Short (< 4 char) brands fused with a combo word inside one token were
/// never probed: the affix loop started at cut 4. They now match when the
/// token remainder is a known combo word.
#[test]
fn short_brand_fused_affixes() {
    let (reg, det) = detector();
    expect(&det, &reg, "go-adpfreight.com", "adp", SquatType::Combo);
    expect(&det, &reg, "myadp-freight.net", "adp", SquatType::Combo);
    expect(&det, &reg, "get-btpay.top", "bt", SquatType::Combo);
}

/// The short-affix gate must stay closed for random words: a two-letter
/// brand inside an arbitrary token is not combo-squatting.
#[test]
fn short_affix_gate_rejects_random_words() {
    let (_reg, det) = detector();
    // "bt" heads "btree" but "ree" is not a combo word.
    assert!(det
        .classify(&DomainName::parse("my-btree.com").unwrap())
        .is_none());
}
