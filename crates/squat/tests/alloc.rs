//! Pins the detector's allocation contract: `classify` performs **zero
//! heap allocations** for ASCII labels (the scan hot path), while IDN
//! (`xn--`) labels are exempt because punycode decoding allocates.
//!
//! Integration test on purpose: a `#[global_allocator]` is process-wide,
//! so it lives in its own test binary where it cannot distort the unit
//! tests' behavior or timings.

use squatphi_domain::DomainName;
use squatphi_squat::{BrandRegistry, ClassifyStats, SquatDetector, SquatType};
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

struct CountingAllocator;

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static ALLOC: CountingAllocator = CountingAllocator;

/// Heap allocations performed while running `f`.
fn allocations_during<R>(f: impl FnOnce() -> R) -> (u64, R) {
    let before = ALLOCATIONS.load(Ordering::Relaxed);
    let out = f();
    (ALLOCATIONS.load(Ordering::Relaxed) - before, out)
}

#[test]
fn classify_is_allocation_free_for_ascii_labels() {
    let registry = BrandRegistry::with_size(30);
    let detector = SquatDetector::new(&registry);
    // Misses, near-misses and every ASCII squat type — each exercises a
    // different probe path (skeleton fold, glyph swaps, sequence folds,
    // merged deletion pass, adjacent swaps, omission, combo).
    let cases = [
        ("winterpillow.net", None),
        ("example.com", None),
        ("random-hyphen-words.org", None),
        ("faceb00k.pw", Some(SquatType::Homograph)),
        ("goog1e.nl", Some(SquatType::Homograph)),
        ("facebnok.tk", Some(SquatType::Bits)),
        ("facebok.tk", Some(SquatType::Typo)),
        ("facebo0ok.com", Some(SquatType::Typo)),
        ("fcaebook.org", Some(SquatType::Typo)),
        ("facebook-story.de", Some(SquatType::Combo)),
        ("facebook.audi", Some(SquatType::WrongTld)),
        ("facebook.com", None), // the brand itself
    ];
    let domains: Vec<(DomainName, Option<SquatType>)> = cases
        .iter()
        .map(|(s, t)| (DomainName::parse(s).expect("valid"), *t))
        .collect();

    // Warm-up pass: lets any lazy one-time allocation (hash randomization
    // state etc.) happen outside the measured window.
    for (d, _) in &domains {
        let _ = detector.classify(d);
    }

    for (d, expected) in &domains {
        let (allocs, got) = allocations_during(|| detector.classify(d));
        assert_eq!(got.map(|m| m.squat_type), *expected, "{d}");
        assert_eq!(allocs, 0, "classify({d}) allocated {allocs} times");
    }
}

#[test]
fn classify_with_stats_is_allocation_free_too() {
    let registry = BrandRegistry::with_size(30);
    let detector = SquatDetector::new(&registry);
    let d = DomainName::parse("winterpillow.net").expect("valid");
    let mut stats = ClassifyStats::default();
    let _ = detector.classify_with_stats(&d, &mut stats);
    let (allocs, _) = allocations_during(|| detector.classify_with_stats(&d, &mut stats));
    assert_eq!(allocs, 0);
    assert!(stats.probes > 0);
    assert!(stats.allocations_avoided > 0);
}

#[test]
fn idn_labels_are_exempt_but_still_classified() {
    let registry = BrandRegistry::with_size(30);
    let detector = SquatDetector::new(&registry);
    let d = DomainName::parse("xn--fcebook-8va.com").expect("valid");
    let _ = detector.classify(&d);
    let (allocs, got) = allocations_during(|| detector.classify(&d));
    // Punycode decoding allocates by design — the guarantee covers ASCII
    // labels only. The classification itself must still work.
    assert_eq!(got.map(|m| m.squat_type), Some(SquatType::Homograph));
    assert!(allocs > 0, "expected the IDN path to allocate (it decodes)");
}
