//! Combo-squatting generator (paper §3.1, after Kintis et al.): the brand
//! label concatenated with extra words, joined by hyphens. Combo domains
//! are the cheapest to register — arbitrary words can be attached — which
//! is why they dominate the squatting population (56% in Figure 2).

use crate::words::COMBO_WORDS;

/// Combo candidates for a label. Produces `word-brand`, `brand-word`,
/// `brand-word1word2`-style attachments and the single-letter tail combos
/// seen in the wild (`facebook-c`). Head and tail attachments alternate in
/// the output so budget-truncated prefixes stay diverse.
///
/// ```
/// use squatphi_squat::gen::combo_candidates;
/// let c = combo_candidates("facebook");
/// assert!(c.contains(&"facebook-story".to_string()));
/// assert!(c.contains(&"go-facebook".to_string()));
/// ```
pub fn combo_candidates(label: &str) -> Vec<String> {
    let mut out = Vec::with_capacity(COMBO_WORDS.len() * 2 + 30);
    for w in COMBO_WORDS {
        out.push(format!("{label}-{w}"));
        out.push(format!("{w}-{label}"));
    }
    // Fused head words: "go-uberfreight" attaches "freight" *inside* the
    // token; model as word-brandword fusions for a few service words.
    for w in ["freight", "pay", "store", "support", "mail"] {
        out.push(format!("go-{label}{w}"));
        out.push(format!("get-{label}{w}"));
        out.push(format!("my{label}-{w}"));
    }
    // Single-letter tails (facebook-c.com in Table 10).
    for c in 'a'..='e' {
        out.push(format!("{label}-{c}"));
    }
    // Double-word tails (buy-bitcoin-with-paypal style chains).
    out.push(format!("secure-{label}-login"));
    out.push(format!("{label}-account-verify"));
    out.push(format!("www-{label}"));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_table10_patterns() {
        let c = combo_candidates("facebook");
        assert!(c.contains(&"facebook-story".to_string()), "Table 1");
        assert!(c.contains(&"facebook-c".to_string()), "Table 10");
        let u = combo_candidates("uber");
        assert!(u.contains(&"go-uberfreight".to_string()), "Fig 14b");
        let p = combo_candidates("paypal");
        assert!(p.contains(&"paypal-cash".to_string()), "Table 10");
        let m = combo_candidates("microsoft");
        assert!(m.contains(&"live-microsoft".to_string()), "Fig 14c style");
        let a = combo_candidates("adp");
        assert!(a.contains(&"mobile-adp".to_string()), "Fig 14d");
    }

    #[test]
    fn all_contain_brand_and_hyphen() {
        for c in combo_candidates("citi") {
            assert!(c.contains("citi"), "{c} lost the brand");
            assert!(c.contains('-'), "{c} is not hyphenated");
        }
    }

    #[test]
    fn valid_dns_labels() {
        for c in combo_candidates("santander") {
            assert!(!c.starts_with('-') && !c.ends_with('-'));
            assert!(c.len() <= 63, "{c} too long");
            assert!(c
                .bytes()
                .all(|b| b.is_ascii_lowercase() || b == b'-' || b.is_ascii_digit()));
        }
    }

    #[test]
    fn head_and_tail_variants_both_present() {
        let c = combo_candidates("ebay");
        assert!(c.contains(&"ebay-selling".to_string()));
        assert!(c.contains(&"selling-ebay".to_string()));
    }
}
