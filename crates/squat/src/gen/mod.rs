//! Squatting-candidate generators (the DNSTwist/URLCrazy direction).
//!
//! Each generator takes a brand label and yields candidate *core labels*
//! (or full domains for wrongTLD). All output is deterministic given the
//! input; randomized subset selection is left to callers holding an RNG.

mod bits;
mod combo;
mod homograph;
mod typo;
mod wrongtld;

pub use bits::bits_candidates;
pub use combo::combo_candidates;
pub use homograph::homograph_candidates;
pub use typo::{typo_candidates, TypoOp};
pub use wrongtld::wrong_tld_candidates;

use crate::{Brand, SquatType};
use squatphi_domain::{idna, DomainName};

/// Per-type generation limits, so callers can bound the candidate set when
/// planting populations (combo space is effectively unbounded).
#[derive(Debug, Clone, Copy)]
pub struct GenBudget {
    /// Max homograph candidates.
    pub homograph: usize,
    /// Max bits candidates.
    pub bits: usize,
    /// Max typo candidates.
    pub typo: usize,
    /// Max combo candidates.
    pub combo: usize,
    /// Max wrongTLD candidates.
    pub wrong_tld: usize,
}

impl Default for GenBudget {
    fn default() -> Self {
        GenBudget {
            homograph: 200,
            bits: 100,
            typo: 300,
            combo: 400,
            wrong_tld: 30,
        }
    }
}

/// A generated squatting candidate.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Candidate {
    /// Fully-qualified ASCII (punycoded where needed) domain.
    pub domain: DomainName,
    /// The squatting type this candidate belongs to.
    pub squat_type: SquatType,
}

/// Generates candidates of all five types for `brand`, bounded by `budget`.
///
/// The candidate labels are paired with plausible TLDs: squatters keep the
/// brand's own TLD when they can, and fall back to cheap TLDs otherwise
/// (the label+TLD assignment here is deterministic round-robin; the DNS
/// snapshot generator randomizes it further).
pub fn generate_all(brand: &Brand, budget: GenBudget) -> Vec<Candidate> {
    let label = brand.label.as_str();
    let own_tld = brand.domain.suffix();
    let cheap = [
        "com", "net", "org", "tk", "ml", "pw", "top", "online", "bid", "ga",
    ];
    let mut out = Vec::new();
    let push_label = |l: &str, ty: SquatType, i: usize, out: &mut Vec<Candidate>| {
        let ascii = if l.is_ascii() {
            l.to_string()
        } else {
            match idna::to_ascii(l) {
                Ok(a) => a,
                Err(_) => return,
            }
        };
        let tld = if i.is_multiple_of(3) {
            own_tld
        } else {
            cheap[i % cheap.len()]
        };
        if let Ok(d) = DomainName::from_parts(&ascii, tld) {
            out.push(Candidate {
                domain: d,
                squat_type: ty,
            });
        }
    };

    for (i, l) in homograph_candidates(label)
        .into_iter()
        .take(budget.homograph)
        .enumerate()
    {
        push_label(&l, SquatType::Homograph, i, &mut out);
    }
    for (i, l) in bits_candidates(label)
        .into_iter()
        .take(budget.bits)
        .enumerate()
    {
        push_label(&l, SquatType::Bits, i, &mut out);
    }
    for (i, (l, _op)) in typo_candidates(label)
        .into_iter()
        .take(budget.typo)
        .enumerate()
    {
        push_label(&l, SquatType::Typo, i, &mut out);
    }
    for (i, l) in combo_candidates(label)
        .into_iter()
        .take(budget.combo)
        .enumerate()
    {
        push_label(&l, SquatType::Combo, i, &mut out);
    }
    for d in wrong_tld_candidates(label, own_tld)
        .into_iter()
        .take(budget.wrong_tld)
    {
        out.push(Candidate {
            domain: d,
            squat_type: SquatType::WrongTld,
        });
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::BrandRegistry;

    #[test]
    fn generates_all_five_types_for_facebook() {
        let reg = BrandRegistry::with_size(10);
        let fb = reg.by_label("facebook").unwrap();
        let cands = generate_all(fb, GenBudget::default());
        for ty in SquatType::ALL {
            assert!(
                cands.iter().any(|c| c.squat_type == ty),
                "missing type {ty} for facebook"
            );
        }
    }

    #[test]
    fn budget_bounds_respected() {
        let reg = BrandRegistry::with_size(10);
        let fb = reg.by_label("facebook").unwrap();
        let b = GenBudget {
            homograph: 3,
            bits: 3,
            typo: 3,
            combo: 3,
            wrong_tld: 3,
        };
        let cands = generate_all(fb, b);
        for ty in SquatType::ALL {
            assert!(cands.iter().filter(|c| c.squat_type == ty).count() <= 3);
        }
    }

    #[test]
    fn candidates_never_equal_the_brand_domain() {
        let reg = BrandRegistry::with_size(10);
        for brand in reg.brands() {
            for c in generate_all(brand, GenBudget::default()) {
                assert_ne!(
                    c.domain, brand.domain,
                    "generator produced the brand itself for {}",
                    brand.label
                );
            }
        }
    }
}
