//! Typo-squatting generator (paper §3.1): insertion, omission, repetition
//! and vowel/adjacent swap.

/// The four typo operations the paper enumerates.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TypoOp {
    /// Add an extra character (`facebo0ok`).
    Insertion,
    /// Delete a character (`facebok`).
    Omission,
    /// Duplicate a character (`faceboook`).
    Repetition,
    /// Swap two consecutive characters (`fcaebook`).
    Swap,
}

/// QWERTY adjacency used to keep insertions plausible — a fat-fingered key
/// lands on a neighbor of the intended key.
fn qwerty_neighbors(c: char) -> &'static str {
    match c {
        'q' => "wa1",
        'w' => "qes2",
        'e' => "wrd3",
        'r' => "etf4",
        't' => "ryg5",
        'y' => "tuh6",
        'u' => "yij7",
        'i' => "uok8",
        'o' => "ipl9",
        'p' => "ol0",
        'a' => "qsz",
        's' => "awdx",
        'd' => "sefc",
        'f' => "drgv",
        'g' => "fthb",
        'h' => "gyjn",
        'j' => "hukm",
        'k' => "jil",
        'l' => "kop",
        'z' => "asx",
        'x' => "zsdc",
        'c' => "xdfv",
        'v' => "cfgb",
        'b' => "vghn",
        'n' => "bhjm",
        'm' => "njk",
        '0' => "po",
        '1' => "q2",
        '2' => "w13",
        '3' => "e24",
        '4' => "r35",
        '5' => "t46",
        '6' => "y57",
        '7' => "u68",
        '8' => "i79",
        '9' => "o80",
        _ => "",
    }
}

fn valid_label(l: &str) -> bool {
    !l.is_empty()
        && !l.starts_with('-')
        && !l.ends_with('-')
        && l.len() <= 63
        && l.bytes()
            .all(|b| b.is_ascii_lowercase() || b.is_ascii_digit() || b == b'-')
}

/// All typo candidates for a label, tagged with the operation that produced
/// them. Deterministic order: omissions, repetitions, swaps, insertions.
///
/// ```
/// use squatphi_squat::gen::typo_candidates;
/// let cands = typo_candidates("facebook");
/// assert!(cands.iter().any(|(l, _)| l == "fcaebook")); // swap (Table 1)
/// assert!(cands.iter().any(|(l, _)| l == "faceboook")); // repetition
/// ```
pub fn typo_candidates(label: &str) -> Vec<(String, TypoOp)> {
    let chars: Vec<char> = label.chars().collect();
    let mut out = Vec::new();
    let mut seen = std::collections::HashSet::new();
    let mut push = |s: String, op: TypoOp, out: &mut Vec<(String, TypoOp)>| {
        if s != label && valid_label(&s) && seen.insert(s.clone()) {
            out.push((s, op));
        }
    };

    // Omission: delete each character.
    for i in 0..chars.len() {
        let mut s = String::with_capacity(label.len());
        s.extend(chars.iter().take(i));
        s.extend(chars.iter().skip(i + 1));
        push(s, TypoOp::Omission, &mut out);
    }
    // Repetition: double each character.
    for i in 0..chars.len() {
        let mut s = String::with_capacity(label.len() + 1);
        s.extend(chars.iter().take(i + 1));
        s.push(chars[i]);
        s.extend(chars.iter().skip(i + 1));
        push(s, TypoOp::Repetition, &mut out);
    }
    // Swap: transpose each adjacent pair.
    for i in 0..chars.len().saturating_sub(1) {
        let mut c = chars.clone();
        c.swap(i, i + 1);
        push(c.into_iter().collect(), TypoOp::Swap, &mut out);
    }
    // Insertion: QWERTY-neighbor of the key at each boundary, plus the
    // always-popular `0`/digit insertions seen in the wild (`facebo0ok`).
    for i in 0..=chars.len() {
        let mut pool: Vec<char> = Vec::new();
        if i > 0 {
            pool.extend(qwerty_neighbors(chars[i - 1]).chars());
        }
        if i < chars.len() {
            pool.extend(qwerty_neighbors(chars[i]).chars());
        }
        pool.push('0');
        pool.sort_unstable();
        pool.dedup();
        for c in pool {
            let mut s = String::with_capacity(label.len() + 1);
            s.extend(chars.iter().take(i));
            s.push(c);
            s.extend(chars.iter().skip(i));
            push(s, TypoOp::Insertion, &mut out);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_table1_examples_present() {
        let cands = typo_candidates("facebook");
        let labels: Vec<&str> = cands.iter().map(|(l, _)| l.as_str()).collect();
        assert!(labels.contains(&"fcaebook"), "vowel-swap example");
        // facebo0ok = insert '0' between o and o.
        assert!(labels.contains(&"facebo0ok"), "insertion example");
        assert!(labels.contains(&"facebok"), "omission");
        assert!(labels.contains(&"faceboook"), "repetition");
    }

    #[test]
    fn ops_are_tagged_correctly() {
        let cands = typo_candidates("ab");
        for (l, op) in &cands {
            match op {
                TypoOp::Omission => assert_eq!(l.len(), 1),
                TypoOp::Repetition | TypoOp::Insertion => assert_eq!(l.len(), 3),
                TypoOp::Swap => assert_eq!(l, "ba"),
            }
        }
    }

    #[test]
    fn no_duplicates_or_identity() {
        let cands = typo_candidates("paypal");
        let mut labels: Vec<&String> = cands.iter().map(|(l, _)| l).collect();
        let before = labels.len();
        labels.sort();
        labels.dedup();
        assert_eq!(labels.len(), before);
        assert!(!cands.iter().any(|(l, _)| l == "paypal"));
    }

    #[test]
    fn all_outputs_are_valid_labels() {
        for (l, _) in typo_candidates("google") {
            assert!(valid_label(&l), "invalid label {l}");
        }
    }

    #[test]
    fn single_char_label_degenerates_gracefully() {
        // Omission of a 1-char label would be empty — must be filtered.
        let cands = typo_candidates("a");
        assert!(cands.iter().all(|(l, _)| !l.is_empty()));
    }
}
