//! Bit-squatting generator (paper §3.1, after Nikiforakis et al.):
//! domains one single-bit memory corruption away from the brand.

/// All labels reachable from `label` by flipping exactly one bit of one
/// byte, keeping only results that are valid DNS label characters
/// (`a-z`, `0-9`, `-`, no edge hyphens).
///
/// ```
/// use squatphi_squat::gen::bits_candidates;
/// let cands = bits_candidates("facebook");
/// assert!(cands.contains(&"facebnok".to_string())); // Table 1 example
/// ```
pub fn bits_candidates(label: &str) -> Vec<String> {
    let bytes = label.as_bytes();
    let mut out = Vec::new();
    let mut seen = std::collections::HashSet::new();
    for i in 0..bytes.len() {
        for bit in 0..8u8 {
            let flipped = bytes[i] ^ (1 << bit);
            let valid = flipped.is_ascii_lowercase()
                || flipped.is_ascii_digit()
                || (flipped == b'-' && i != 0 && i != bytes.len() - 1);
            if !valid || flipped == bytes[i] {
                continue;
            }
            let mut s = bytes.to_vec();
            s[i] = flipped;
            let s = String::from_utf8(s).expect("ascii stays utf8");
            if seen.insert(s.clone()) {
                out.push(s);
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use squatphi_domain::distance::is_one_bit_flip;

    #[test]
    fn paper_examples_present() {
        assert!(bits_candidates("facebook").contains(&"facebnok".to_string()));
        assert!(bits_candidates("google").contains(&"goofle".to_string()));
        // facecook: 'b'(62) ^ 'c'(63) = 0x01 — one bit (Table 10).
        assert!(bits_candidates("facebook").contains(&"facecook".to_string()));
    }

    #[test]
    fn every_candidate_is_one_bit_away() {
        for c in bits_candidates("paypal") {
            assert!(is_one_bit_flip("paypal", &c), "{c} not one bit from paypal");
        }
    }

    #[test]
    fn no_identity_and_no_duplicates() {
        let cands = bits_candidates("uber");
        assert!(!cands.contains(&"uber".to_string()));
        let mut sorted = cands.clone();
        sorted.sort();
        sorted.dedup();
        assert_eq!(sorted.len(), cands.len());
    }

    #[test]
    fn edge_hyphens_rejected() {
        // 'm' ^ 0x40 = '-', so flipping bit 6 of a leading 'm' would give
        // a leading hyphen — must be filtered.
        for c in bits_candidates("mm") {
            assert!(!c.starts_with('-') && !c.ends_with('-'));
        }
    }

    #[test]
    fn count_is_bounded_by_8n() {
        let label = "facebook";
        assert!(bits_candidates(label).len() <= 8 * label.len());
    }
}
