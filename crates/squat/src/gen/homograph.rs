//! Homograph-squatting generator (paper §3.1): visually confusable labels,
//! both plain-ASCII glyph tricks (`faceb00k`) and IDN confusables
//! (`fàcebook` → `xn--fcebook-8va`).

use squatphi_domain::ConfusableTable;

/// Homograph candidates for a label (Unicode output — callers punycode the
/// non-ASCII ones). Deterministic order:
/// 1. single-character ASCII swaps (`0` for `o` …),
/// 2. multi-character sequence swaps (`rn` for `m` …),
/// 3. single-character Unicode confusable swaps,
/// 4. double-`0` style swaps of repeated letters (`faceb00k`),
/// 5. two-character Unicode swaps (first × second positions, capped).
///
/// ```
/// use squatphi_squat::gen::homograph_candidates;
/// let c = homograph_candidates("facebook");
/// assert!(c.contains(&"faceb00k".to_string()));
/// assert!(c.contains(&"fàcebook".to_string()));
/// ```
pub fn homograph_candidates(label: &str) -> Vec<String> {
    let table = ConfusableTable::new();
    let chars: Vec<char> = label.chars().collect();
    let mut out = Vec::new();
    let mut seen = std::collections::HashSet::new();
    let mut push = |s: String, out: &mut Vec<String>| {
        if s != label && seen.insert(s.clone()) {
            out.push(s);
        }
    };

    // 1. ASCII single-char swaps.
    for (i, &c) in chars.iter().enumerate() {
        for v in table.variants(c).filter(|v| v.is_ascii()) {
            let mut s: Vec<char> = chars.clone();
            s[i] = v;
            push(s.into_iter().collect(), &mut out);
        }
    }
    // 2. Sequence swaps (m -> rn, w -> vv ...).
    for (i, &c) in chars.iter().enumerate() {
        for seq in table.sequences(c) {
            let mut s = String::new();
            s.extend(chars.iter().take(i));
            s.push_str(seq);
            s.extend(chars.iter().skip(i + 1));
            push(s, &mut out);
        }
    }
    // 3. Unicode single-char swaps.
    for (i, &c) in chars.iter().enumerate() {
        for v in table.variants(c).filter(|v| !v.is_ascii()) {
            let mut s: Vec<char> = chars.clone();
            s[i] = v;
            push(s.into_iter().collect(), &mut out);
        }
    }
    // 4. Repeated-letter pair swaps: oo -> 00 (faceb00k).
    for i in 0..chars.len().saturating_sub(1) {
        if chars[i] == chars[i + 1] {
            for v in table.variants(chars[i]).filter(|v| v.is_ascii()) {
                let mut s: Vec<char> = chars.clone();
                s[i] = v;
                s[i + 1] = v;
                push(s.into_iter().collect(), &mut out);
            }
        }
    }
    // 5. Two-position Unicode swaps (capped to the first few variants per
    // position to keep the candidate set near-linear).
    const PER_POS: usize = 2;
    for i in 0..chars.len() {
        let vi: Vec<char> = table
            .variants(chars[i])
            .filter(|v| !v.is_ascii())
            .take(PER_POS)
            .collect();
        for j in (i + 1)..chars.len() {
            let vj: Vec<char> = table
                .variants(chars[j])
                .filter(|v| !v.is_ascii())
                .take(PER_POS)
                .collect();
            for &a in &vi {
                for &b in &vj {
                    let mut s: Vec<char> = chars.clone();
                    s[i] = a;
                    s[j] = b;
                    push(s.into_iter().collect(), &mut out);
                }
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use squatphi_domain::{idna, ConfusableTable};

    #[test]
    fn paper_examples_present() {
        let c = homograph_candidates("facebook");
        assert!(c.contains(&"faceb00k".to_string()), "Table 1: faceb00k.pw");
        assert!(
            c.contains(&"fàcebook".to_string()),
            "Table 1: xn--fcebook-8va"
        );
        assert!(c.contains(&"facebooκ".to_string()), "Table 10: Greek kappa");
    }

    #[test]
    fn goog1e_and_drapbox_style() {
        assert!(homograph_candidates("google").contains(&"goog1e".to_string()));
        // drapbox (Table 10 lists it as homograph: a for o).
        let c = homograph_candidates("dropbox");
        assert!(c.iter().any(|s| !s.is_ascii()), "unicode variants exist");
    }

    #[test]
    fn all_candidates_fold_back_to_source() {
        let t = ConfusableTable::new();
        // Ambiguous ASCII glyphs cannot be folded deterministically; the
        // detector resolves them with substitution probes instead.
        let ambiguous: &[char] = &['1', 'i', 'l', 'q', 'g', 'u', 'v', '2'];
        for cand in homograph_candidates("paypal") {
            let folded = t.skeleton(&cand);
            if folded.chars().count() == "paypal".chars().count()
                && !cand.chars().any(|c| ambiguous.contains(&c))
            {
                assert_eq!(folded, "paypal", "candidate {cand} folds to {folded}");
            }
        }
    }

    #[test]
    fn unicode_candidates_punycode_round_trip() {
        for cand in homograph_candidates("uber")
            .iter()
            .filter(|c| !c.is_ascii())
        {
            let ascii = idna::to_ascii(cand).expect("encodable");
            assert!(ascii.starts_with("xn--"));
            assert_eq!(idna::to_unicode(&ascii), *cand);
        }
    }

    #[test]
    fn rn_sequence_for_m() {
        let c = homograph_candidates("amazon");
        assert!(c.contains(&"arnazon".to_string()));
    }

    #[test]
    fn deduplicated() {
        let c = homograph_candidates("citi");
        let mut s = c.clone();
        s.sort();
        s.dedup();
        assert_eq!(s.len(), c.len());
    }
}
