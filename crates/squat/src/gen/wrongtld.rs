//! WrongTLD-squatting generator (paper §3.1): keep the brand label, swap
//! the TLD (`facebook.audi`). The paper introduces this module because
//! DNSTwist/URLCrazy only mutate the label and miss e.g. `facebookj.es`.

use squatphi_domain::tld::WRONG_TLD_POOL;
use squatphi_domain::DomainName;

/// WrongTLD candidates: the brand label under every plausible alternative
/// TLD (excluding the brand's own suffix).
///
/// ```
/// use squatphi_squat::gen::wrong_tld_candidates;
/// let c = wrong_tld_candidates("facebook", "com");
/// assert!(c.iter().any(|d| d.as_str() == "facebook.audi"));
/// assert!(!c.iter().any(|d| d.suffix() == "com"));
/// ```
pub fn wrong_tld_candidates(label: &str, own_suffix: &str) -> Vec<DomainName> {
    WRONG_TLD_POOL
        .iter()
        .filter(|t| **t != own_suffix)
        .filter_map(|t| DomainName::from_parts(label, t).ok())
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_example_present() {
        let c = wrong_tld_candidates("facebook", "com");
        assert!(c.iter().any(|d| d.as_str() == "facebook.audi"), "Table 1");
    }

    #[test]
    fn own_suffix_excluded() {
        let c = wrong_tld_candidates("bitcoin", "org");
        assert!(!c.iter().any(|d| d.suffix() == "org"));
        assert!(c.iter().all(|d| d.core_label() == "bitcoin"));
    }

    #[test]
    fn count_matches_pool() {
        let c = wrong_tld_candidates("uber", "com");
        // "com" is not in WRONG_TLD_POOL, so nothing is filtered.
        assert_eq!(c.len(), WRONG_TLD_POOL.len());
        let c2 = wrong_tld_candidates("uber", "tk");
        assert_eq!(c2.len(), WRONG_TLD_POOL.len() - 1);
    }
}
