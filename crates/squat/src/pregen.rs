//! The DNSTwist-style detection strategy: pre-generate every candidate
//! squatting domain per brand and classify records by hash lookup.
//!
//! This is the approach the paper extends (and the upstream tools use).
//! It trades a large build cost and bounded recall (only candidates inside
//! the generation budget are detectable — combo in particular is an
//! unbounded space) for O(1) exact-string classification. It exists here
//! as the ablation comparator for [`crate::SquatDetector`] and as a
//! cross-check: on generated candidates the two strategies must agree.

use crate::brand::{BrandId, BrandRegistry};
use crate::detect::SquatMatch;
use crate::gen::{generate_all, GenBudget};
use crate::SquatType;
use squatphi_domain::DomainName;
use std::collections::HashMap;

/// Lookup-table detector built from pre-generated candidates.
#[derive(Debug)]
pub struct PregeneratedDetector {
    table: HashMap<String, (BrandId, SquatType)>,
    /// Exact brand registrable domains (never squatting).
    own: HashMap<String, BrandId>,
}

impl PregeneratedDetector {
    /// Generates candidates for every brand under `budget` and indexes
    /// them by registrable domain. Earlier brands win collisions
    /// (matching the registry's priority order).
    pub fn build(registry: &BrandRegistry, budget: GenBudget) -> Self {
        let mut table = HashMap::new();
        let mut own = HashMap::new();
        for brand in registry.brands() {
            own.insert(brand.domain.registrable(), brand.id);
            for cand in generate_all(brand, budget) {
                table
                    .entry(cand.domain.registrable())
                    .or_insert((brand.id, cand.squat_type));
            }
        }
        PregeneratedDetector { table, own }
    }

    /// Number of pre-generated candidates indexed.
    pub fn candidate_count(&self) -> usize {
        self.table.len()
    }

    /// Classifies a domain by exact candidate lookup.
    pub fn classify(&self, domain: &DomainName) -> Option<SquatMatch> {
        let key = domain.registrable();
        if self.own.contains_key(&key) {
            return None;
        }
        self.table
            .get(&key)
            .map(|&(brand, squat_type)| SquatMatch { brand, squat_type })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::detect::SquatDetector;

    fn setup() -> (BrandRegistry, PregeneratedDetector, SquatDetector) {
        let registry = BrandRegistry::with_size(25);
        let budget = GenBudget::default();
        let pregen = PregeneratedDetector::build(&registry, budget);
        let probing = SquatDetector::new(&registry);
        (registry, pregen, probing)
    }

    #[test]
    fn classifies_generated_candidates() {
        let (_r, pregen, _p) = setup();
        let d = DomainName::parse("facebook-account.com").expect("valid");
        let m = pregen.classify(&d).expect("indexed candidate");
        assert_eq!(m.squat_type, SquatType::Combo);
    }

    #[test]
    fn brand_domains_are_never_squatting() {
        let (registry, pregen, _p) = setup();
        for brand in registry.brands() {
            assert!(
                pregen.classify(&brand.domain).is_none(),
                "{} flagged",
                brand.domain
            );
        }
    }

    #[test]
    fn strategies_agree_on_generated_candidates() {
        let (registry, pregen, probing) = setup();
        let budget = GenBudget {
            homograph: 20,
            bits: 15,
            typo: 20,
            combo: 20,
            wrong_tld: 5,
        };
        let mut compared = 0usize;
        let mut brand_agree = 0usize;
        for brand in registry.brands() {
            for cand in generate_all(brand, budget) {
                let a = pregen.classify(&cand.domain);
                let b = probing.classify(&cand.domain);
                // Pre-generated lookup always hits (it indexed the same
                // generator output); the probing detector must also hit.
                assert!(
                    a.is_some(),
                    "pregen missed its own candidate {}",
                    cand.domain
                );
                if let (Some(a), Some(b)) = (a, b) {
                    compared += 1;
                    if a.brand == b.brand {
                        brand_agree += 1;
                    }
                }
            }
        }
        assert!(compared > 500, "too few comparable candidates: {compared}");
        // Brand attribution can legitimately differ near label collisions;
        // require near-total agreement.
        assert!(
            brand_agree * 100 >= compared * 97,
            "strategies disagree on brands: {brand_agree}/{compared}"
        );
    }

    #[test]
    fn probing_detector_catches_outside_the_budget() {
        // The pre-generated table is blind to combos beyond its word
        // list — the probing detector is not. This is the recall gap the
        // paper's per-record design closes.
        let (_r, pregen, probing) = setup();
        let exotic = DomainName::parse("facebook-zanzibar-prize.win").expect("valid");
        assert!(
            pregen.classify(&exotic).is_none(),
            "not in any candidate list"
        );
        assert!(probing.classify(&exotic).is_some(), "probing must catch it");
    }

    #[test]
    fn unrelated_domains_pass_both() {
        let (_r, pregen, probing) = setup();
        for host in ["winterpillow.net", "almond-harvest.org", "cobble123.de"] {
            let d = DomainName::parse(host).expect("valid");
            assert!(pregen.classify(&d).is_none());
            assert!(probing.classify(&d).is_none());
        }
    }
}
