//! Squatting-domain generation and detection (paper §3.1).
//!
//! The paper extends DNSTwist/URLCrazy with (1) a complete homograph table,
//! (2) a wrongTLD module and (3) a combo-squatting module, then classifies
//! 224M DNS records into five **orthogonal** squatting types. This crate
//! provides both directions:
//!
//! * [`gen`] — given a brand, produce candidate squatting domains of each
//!   type (the DNSTwist direction, used to plant populations into the
//!   synthetic DNS snapshot and for Table 1),
//! * [`detect`] — given an arbitrary DNS name and the brand registry,
//!   decide in ~O(len) whether it squats on some brand and which type
//!   (the scan direction, used over the full snapshot for Figure 2),
//! * [`brand`] — the 702-brand registry (Alexa categories ∪ PhishTank
//!   targets, merged by domain, per §3.1 "Brand Selection").

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod brand;
pub mod detect;
pub mod gen;
mod index;
pub mod legacy;
pub mod pregen;
pub mod words;

pub use brand::{Brand, BrandId, BrandRegistry, Category};
pub use detect::{ClassifyStats, SquatDetector, SquatMatch};
pub use gen::{generate_all, GenBudget};
pub use legacy::LegacyDetector;

/// The five orthogonal squatting techniques from §3.1.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum SquatType {
    /// Visual look-alike: confusable Unicode (IDN) or ASCII glyph tricks
    /// (`faceb00k`, `xn--fcebook-8va`).
    Homograph,
    /// Exactly one bit flipped in one ASCII byte (`facebnok`).
    Bits,
    /// Mis-typing: insertion, omission, repetition, adjacent swap
    /// (`facebo0ok` is *insertion*, `fcaebook` is a swap).
    Typo,
    /// Brand concatenated with extra words, hyphen-joined
    /// (`facebook-story`, `go-uberfreight`).
    Combo,
    /// Same label under a different TLD (`facebook.audi`).
    WrongTld,
}

impl SquatType {
    /// All five types in the paper's presentation order.
    pub const ALL: [SquatType; 5] = [
        SquatType::Homograph,
        SquatType::Bits,
        SquatType::Typo,
        SquatType::Combo,
        SquatType::WrongTld,
    ];

    /// Paper-style display name.
    pub fn name(&self) -> &'static str {
        match self {
            SquatType::Homograph => "Homograph",
            SquatType::Bits => "Bits",
            SquatType::Typo => "Typo",
            SquatType::Combo => "Combo",
            SquatType::WrongTld => "WrongTLD",
        }
    }
}

impl std::fmt::Display for SquatType {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_has_five_unique_types() {
        let mut v = SquatType::ALL.to_vec();
        v.sort();
        v.dedup();
        assert_eq!(v.len(), 5);
    }

    #[test]
    fn display_matches_paper_labels() {
        assert_eq!(SquatType::WrongTld.to_string(), "WrongTLD");
        assert_eq!(SquatType::Homograph.to_string(), "Homograph");
    }
}
