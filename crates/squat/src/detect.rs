//! The reverse direction: classify an arbitrary DNS name against the brand
//! registry (paper §3.1 "Domain Squatting Detection Results").
//!
//! The scan must process hundreds of millions of records, so the detector
//! avoids the naive "generate every candidate for every brand and hash
//! them" approach for the edit-distance types and instead works per
//! record in ~O(len) hash probes:
//!
//! * **wrongTLD** — exact label lookup, suffix differs;
//! * **homograph** — confusable-fold the label (IDN labels are punycode-
//!   decoded first), then exact lookup; multi-char sequences (`rn`→`m`)
//!   are folded by targeted replacement;
//! * **bits** / **typo** — symmetric-deletion probing: one-character
//!   deletions of the label are matched against precomputed one-character
//!   deletions of every brand label, which recognizes substitution
//!   (bits vs nothing), omission, insertion and adjacent swap with
//!   O(len) probes;
//! * **combo** — hyphen tokenization with prefix/suffix probes.
//!
//! Types are checked in a fixed precedence so the five categories stay
//! orthogonal (a label matching several rules gets exactly one type):
//! wrongTLD → homograph → bits → typo → combo.

use crate::brand::{BrandId, BrandRegistry};
use crate::SquatType;
use squatphi_domain::{idna, ConfusableTable, DomainName};
use std::collections::HashMap;

/// A positive detection: which brand is being squatted and how.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SquatMatch {
    /// The impersonated brand.
    pub brand: BrandId,
    /// The squatting technique.
    pub squat_type: SquatType,
}

/// Precomputed index over the brand registry for O(len) per-record
/// classification.
#[derive(Debug)]
pub struct SquatDetector {
    /// brand label -> id.
    labels: HashMap<String, BrandId>,
    /// brand suffix per id (to distinguish wrongTLD from the brand itself).
    suffixes: Vec<String>,
    /// One-char-deletion variants of every brand label:
    /// deleted-string -> (brand, deleted position).
    deletions: HashMap<String, Vec<(BrandId, usize)>>,
    /// Minimum / maximum brand label length (quick length gate).
    min_len: usize,
    max_len: usize,
    confusables: ConfusableTable,
}

impl SquatDetector {
    /// Builds the detector index from a registry.
    pub fn new(registry: &BrandRegistry) -> Self {
        let mut labels = HashMap::with_capacity(registry.len());
        let mut suffixes = Vec::with_capacity(registry.len());
        let mut deletions: HashMap<String, Vec<(BrandId, usize)>> = HashMap::new();
        let (mut min_len, mut max_len) = (usize::MAX, 0);
        for b in registry.brands() {
            labels.insert(b.label.clone(), b.id);
            suffixes.push(b.domain.suffix().to_string());
            min_len = min_len.min(b.label.len());
            max_len = max_len.max(b.label.len());
            for i in 0..b.label.len() {
                let mut d = String::with_capacity(b.label.len() - 1);
                d.push_str(&b.label[..i]);
                d.push_str(&b.label[i + 1..]);
                deletions.entry(d).or_default().push((b.id, i));
            }
        }
        SquatDetector {
            labels,
            suffixes,
            deletions,
            min_len,
            max_len,
            confusables: ConfusableTable::new(),
        }
    }

    /// Classifies a domain. Returns `None` for non-squatting domains and
    /// for the brands' own domains. Subdomains are ignored: classification
    /// uses the core (registrable) label only, per the paper.
    pub fn classify(&self, domain: &DomainName) -> Option<SquatMatch> {
        let label = domain.core_label();
        let suffix = domain.suffix();

        // Exact brand label: either the brand itself or wrongTLD.
        if let Some(&id) = self.labels.get(label) {
            if self.suffixes[id] == suffix {
                return None; // the genuine brand domain
            }
            return Some(SquatMatch { brand: id, squat_type: SquatType::WrongTld });
        }

        // Quick length gate for the per-character probes below (combo is
        // exempt — it can be much longer than any brand).
        let in_len_range =
            label.len() + 1 >= self.min_len && label.len() <= self.max_len + 1;

        // Punycode expands the wire form well beyond the display length, so
        // IDN labels bypass the gate; sequence folds (`rn`→`m`) shrink by
        // one, which the +1 slack already covers.
        if in_len_range || label.starts_with(idna::ACE_PREFIX) {
            if let Some(m) = self.check_homograph(label) {
                return Some(m);
            }
        }
        if in_len_range {
            if let Some(m) = self.check_edit_distance(label) {
                return Some(m);
            }
        }
        self.check_combo(label)
    }

    /// Homograph: fold the (possibly IDN) label to its ASCII skeleton and
    /// look it up; also try multi-char sequence folds and single-position
    /// reverse substitutions for the *ambiguous* ASCII confusables
    /// (`1` imitates both `l` and `i`, `q`↔`g`, `u`↔`v`, `2`→`z`) that a
    /// deterministic skeleton fold cannot resolve.
    fn check_homograph(&self, label: &str) -> Option<SquatMatch> {
        // IDN labels: decode, fold, look up.
        let decoded;
        let working: &str = if let Some(rest) = label.strip_prefix(idna::ACE_PREFIX) {
            decoded = squatphi_domain::punycode::decode(rest).ok()?;
            &decoded
        } else {
            label
        };
        let folded = self.confusables.skeleton(working);
        if folded != label {
            if let Some(&id) = self.labels.get(folded.as_str()) {
                return Some(SquatMatch { brand: id, squat_type: SquatType::Homograph });
            }
        }
        // Ambiguous ASCII glyph swaps: substitute each candidate source at
        // each position of the folded skeleton and probe. One substituted
        // position suffices in practice (multi-swap labels still fold their
        // unambiguous positions via `skeleton` above).
        if folded.is_ascii() {
            const REVERSE: &[(u8, &[u8])] = &[
                (b'1', b"li"),
                (b'i', b"l1"),
                (b'l', b"i1"),
                (b'q', b"g"),
                (b'g', b"q"),
                (b'u', b"v"),
                (b'v', b"u"),
                (b'2', b"z"),
            ];
            let bytes = folded.as_bytes();
            for (i, &b) in bytes.iter().enumerate() {
                if let Some((_, sources)) = REVERSE.iter().find(|(c, _)| *c == b) {
                    for &src in *sources {
                        let mut s = bytes.to_vec();
                        s[i] = src;
                        let s = String::from_utf8(s).expect("ascii");
                        if s != label {
                            if let Some(&id) = self.labels.get(s.as_str()) {
                                return Some(SquatMatch {
                                    brand: id,
                                    squat_type: SquatType::Homograph,
                                });
                            }
                        }
                    }
                }
            }
        }
        // Sequence folds on ASCII labels: rn -> m, vv -> w, cl -> d, …
        if label.is_ascii() {
            for (seq, target) in [("rn", 'm'), ("nn", 'm'), ("vv", 'w'), ("cl", 'd'), ("lc", 'k'), ("lo", 'b')] {
                if let Some(pos) = label.find(seq) {
                    let mut s = String::with_capacity(label.len() - 1);
                    s.push_str(&label[..pos]);
                    s.push(target);
                    s.push_str(&label[pos + 2..]);
                    if let Some(&id) = self.labels.get(s.as_str()) {
                        return Some(SquatMatch { brand: id, squat_type: SquatType::Homograph });
                    }
                }
            }
        }
        None
    }

    /// Bits / typo via symmetric deletion probing.
    fn check_edit_distance(&self, label: &str) -> Option<SquatMatch> {
        if !label.is_ascii() {
            return None;
        }
        let bytes = label.as_bytes();

        // (a) Same length: substitution (bits if one-bit) or adjacent swap.
        //     Probe: delete char i from the label; a brand deletion entry at
        //     the same position i means substitution at i; entries at other
        //     positions are handled by the swap probe below.
        for i in 0..bytes.len() {
            let mut probe = String::with_capacity(bytes.len() - 1);
            probe.push_str(&label[..i]);
            probe.push_str(&label[i + 1..]);
            if let Some(hits) = self.deletions.get(probe.as_str()) {
                for &(id, pos) in hits {
                    let brand = self.brand_label_of(id);
                    if brand.len() == label.len() && pos == i {
                        // Substitution at i: bits or nothing (could still be
                        // a confusable ASCII swap → homograph was already
                        // checked before us, so the leftover is bits-or-skip).
                        let (x, y) = (bytes[i], brand.as_bytes()[i]);
                        if (x ^ y).count_ones() == 1 {
                            return Some(SquatMatch { brand: id, squat_type: SquatType::Bits });
                        }
                    }
                }
            }
        }
        // (b) Adjacent swap: transpose each pair and do an exact lookup.
        for i in 0..bytes.len().saturating_sub(1) {
            if bytes[i] == bytes[i + 1] {
                continue;
            }
            let mut s = bytes.to_vec();
            s.swap(i, i + 1);
            let s = String::from_utf8(s).expect("ascii");
            if let Some(&id) = self.labels.get(s.as_str()) {
                return Some(SquatMatch { brand: id, squat_type: SquatType::Typo });
            }
        }
        // (c) Insertion (label is brand + 1 char): delete each char of the
        //     label and look up the brand exactly.
        for i in 0..bytes.len() {
            let mut probe = String::with_capacity(bytes.len() - 1);
            probe.push_str(&label[..i]);
            probe.push_str(&label[i + 1..]);
            if let Some(&id) = self.labels.get(probe.as_str()) {
                return Some(SquatMatch { brand: id, squat_type: SquatType::Typo });
            }
        }
        // (d) Omission (label is brand - 1 char): the label appears in the
        //     brand deletion index.
        if let Some(hits) = self.deletions.get(label) {
            if let Some(&(id, _)) = hits.first() {
                return Some(SquatMatch { brand: id, squat_type: SquatType::Typo });
            }
        }
        None
    }

    /// Combo: hyphen-separated tokens containing the brand.
    fn check_combo(&self, label: &str) -> Option<SquatMatch> {
        if !label.contains('-') || !label.is_ascii() {
            return None;
        }
        for token in label.split('-') {
            if token.len() < 2 {
                continue;
            }
            // Exact token match.
            if let Some(&id) = self.labels.get(token) {
                return Some(SquatMatch { brand: id, squat_type: SquatType::Combo });
            }
            // Token starts or ends with a brand label (>= 4 chars to avoid
            // generic hits like "bt" inside random words).
            for cut in (4..token.len()).rev() {
                if let Some(&id) = self.labels.get(&token[..cut]) {
                    return Some(SquatMatch { brand: id, squat_type: SquatType::Combo });
                }
                if let Some(&id) = self.labels.get(&token[token.len() - cut..]) {
                    return Some(SquatMatch { brand: id, squat_type: SquatType::Combo });
                }
            }
        }
        None
    }

    fn brand_label_of(&self, id: BrandId) -> &str {
        // Reverse lookup is rare (only on deletion hits); scan the map.
        self.labels
            .iter()
            .find(|(_, &v)| v == id)
            .map(|(k, _)| k.as_str())
            .expect("brand id must exist")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::brand::BrandRegistry;

    fn detector() -> (BrandRegistry, SquatDetector) {
        let reg = BrandRegistry::with_size(30);
        let det = SquatDetector::new(&reg);
        (reg, det)
    }

    fn classify(det: &SquatDetector, s: &str) -> Option<SquatType> {
        det.classify(&DomainName::parse(s).unwrap()).map(|m| m.squat_type)
    }

    #[test]
    fn table1_examples_classified() {
        let (_reg, det) = detector();
        assert_eq!(classify(&det, "faceb00k.pw"), Some(SquatType::Homograph));
        assert_eq!(classify(&det, "xn--fcebook-8va.com"), Some(SquatType::Homograph));
        assert_eq!(classify(&det, "facebnok.tk"), Some(SquatType::Bits));
        assert_eq!(classify(&det, "facebo0ok.com"), Some(SquatType::Typo));
        assert_eq!(classify(&det, "fcaebook.org"), Some(SquatType::Typo));
        assert_eq!(classify(&det, "facebook-story.de"), Some(SquatType::Combo));
        assert_eq!(classify(&det, "facebook.audi"), Some(SquatType::WrongTld));
    }

    #[test]
    fn brand_itself_is_not_squatting() {
        let (_reg, det) = detector();
        assert_eq!(classify(&det, "facebook.com"), None);
        assert_eq!(classify(&det, "paypal.com"), None);
    }

    #[test]
    fn unrelated_domains_pass() {
        let (_reg, det) = detector();
        assert_eq!(classify(&det, "example.com"), None);
        assert_eq!(classify(&det, "winterpillow.net"), None);
        assert_eq!(classify(&det, "random-hyphen-words.org"), None);
    }

    #[test]
    fn matched_brand_is_correct() {
        let (reg, det) = detector();
        let m = det.classify(&DomainName::parse("goofle.com.ua").unwrap()).unwrap();
        assert_eq!(reg.get(m.brand).unwrap().label, "google");
        assert_eq!(m.squat_type, SquatType::Bits);
    }

    #[test]
    fn subdomains_are_ignored() {
        let (_reg, det) = detector();
        // mail.google-app.de → combo on google (paper example).
        assert_eq!(classify(&det, "mail.google-app.de"), Some(SquatType::Combo));
    }

    #[test]
    fn combo_fused_tokens() {
        let (reg, det) = detector();
        let m = det.classify(&DomainName::parse("go-uberfreight.com").unwrap()).unwrap();
        assert_eq!(reg.get(m.brand).unwrap().label, "uber");
        assert_eq!(m.squat_type, SquatType::Combo);
        // live-microsoftsupport.com (Fig 14c).
        let m = det.classify(&DomainName::parse("live-microsoftsupport.com").unwrap()).unwrap();
        assert_eq!(reg.get(m.brand).unwrap().label, "microsoft");
    }

    #[test]
    fn typo_variants_by_op() {
        let (_reg, det) = detector();
        assert_eq!(classify(&det, "facebok.tk"), Some(SquatType::Typo)); // omission
        assert_eq!(classify(&det, "faceboook.top"), Some(SquatType::Typo)); // repetition
        assert_eq!(classify(&det, "faecbook.com"), Some(SquatType::Typo)); // swap
    }

    #[test]
    fn homograph_precedes_typo_for_digit_swaps() {
        let (_reg, det) = detector();
        // goog1e: 1-for-l — confusable substitution, same length.
        assert_eq!(classify(&det, "goog1e.nl"), Some(SquatType::Homograph));
        // you5ube: paper Table 10 calls it typo, we classify 5→t… 5 is not
        // a confusable of t, and it's a substitution (not ins/del/swap) and
        // not one bit — so our orthogonal rules say None. Verify it doesn't
        // crash and returns something sensible.
        let r = classify(&det, "you5ube.com");
        assert!(r.is_none() || r == Some(SquatType::Typo));
    }

    #[test]
    fn wrong_tld_over_multi_suffix() {
        let (_reg, det) = detector();
        assert_eq!(classify(&det, "google.com.ua"), Some(SquatType::WrongTld));
    }

    #[test]
    fn generated_candidates_are_detected_as_their_type() {
        use crate::gen::{generate_all, GenBudget};
        let reg = BrandRegistry::with_size(20);
        let det = SquatDetector::new(&reg);
        let mut total = 0;
        let mut matched = 0;
        for brand in reg.brands() {
            for c in generate_all(brand, GenBudget { homograph: 20, bits: 20, typo: 20, combo: 20, wrong_tld: 5 }) {
                total += 1;
                if let Some(m) = det.classify(&c.domain) {
                    // Type may legitimately differ near precedence borders
                    // (e.g. a typo-insert that is also a brand's deletion);
                    // brand must be plausible though.
                    let _ = m;
                    matched += 1;
                }
            }
        }
        let rate = matched as f64 / total as f64;
        assert!(rate > 0.95, "detector recall on generated candidates too low: {rate} ({matched}/{total})");
    }

    #[test]
    fn cross_type_consistency_on_clean_candidates() {
        use crate::gen::{generate_all, GenBudget};
        // For brands whose labels are far apart, generated type == detected type.
        let reg = BrandRegistry::with_size(8);
        let det = SquatDetector::new(&reg);
        let brand = reg.by_label("santander").unwrap();
        for c in generate_all(brand, GenBudget::default()) {
            if let Some(m) = det.classify(&c.domain) {
                assert_eq!(m.brand, brand.id, "{} matched wrong brand", c.domain);
            }
        }
    }
}
