//! The reverse direction: classify an arbitrary DNS name against the brand
//! registry (paper §3.1 "Domain Squatting Detection Results").
//!
//! The scan must process hundreds of millions of records, so the detector
//! avoids the naive "generate every candidate for every brand and hash
//! them" approach for the edit-distance types and instead works per
//! record in ~O(len) *fingerprint* probes over a unified index compiled
//! once in [`SquatDetector::new`]:
//!
//! * **wrongTLD** — exact label fingerprint lookup, suffix differs;
//! * **homograph** — confusable-fold the label (IDN labels are punycode-
//!   decoded first), then exact lookup; multi-char sequences (`rn`→`m`)
//!   are folded by targeted replacement;
//! * **bits** / **typo** — symmetric-deletion probing: one-character
//!   deletions of the label are matched against precomputed one-character
//!   deletions of every brand label, which recognizes substitution
//!   (bits vs nothing), omission, insertion and adjacent swap;
//! * **combo** — hyphen tokenization with prefix/suffix probes.
//!
//! Types are checked in a fixed precedence so the five categories stay
//! orthogonal (a label matching several rules gets exactly one type):
//! wrongTLD → homograph → bits → typo → combo.
//!
//! # The single-pass fingerprint engine
//!
//! The previous implementation (preserved verbatim as
//! [`LegacyDetector`](crate::legacy::LegacyDetector)) looked every probe
//! string up in a `HashMap<String, _>`: ~39 SipHash string hashes per
//! record, ~2 µs, which pinned the snapshot scan near 550k records/sec.
//! This detector makes one pass over the label to build its rolling
//! prefix fingerprints ([`index::LabelHashes`]); after that every probe
//! variant — each one-char deletion, each adjacent swap, each sequence
//! fold, each combo affix — is O(1) arithmetic, filtered through a bitset
//! ([`index::FpTable`]) so probes that cannot match cost a single L1
//! load. Fingerprint hits are verified against the stored key bytes, so
//! hash collisions cost a comparison but can never change an answer: the
//! output is byte-identical to the legacy detector's, pinned by the
//! `scan-diff` conformance oracle and the matcher proptests.
//!
//! # Allocation discipline
//!
//! `classify` is the scan hot path. For ASCII labels it performs **zero
//! heap allocations**: folds are built in a `[u8; 64]` stack buffer — DNS
//! labels are at most 63 octets, which [`DomainName::parse`] enforces —
//! and probe variants are never materialized at all unless a fingerprint
//! passes the filter and needs byte verification. IDN (`xn--`) labels are
//! exempt: punycode decoding inherently allocates, and those labels are a
//! vanishing fraction of a zone file. [`ClassifyStats`] counts the
//! logical probes, the probes that got past the filter (`deep_probes`)
//! and the allocations avoided relative to the original
//! `String`-per-probe implementation; the probe and allocation counters
//! are maintained at exactly the legacy counting sites, so they stay
//! byte-comparable across the rebuild.

use crate::brand::{BrandId, BrandRegistry};
use crate::index::{fp, fp_push, Filter, FpTable, LabelHashes};
use crate::SquatType;
use squatphi_domain::{idna, ConfusableTable, DomainName};

/// DNS labels are at most 63 octets ([`DomainName::parse`] rejects longer
/// ones), so every ASCII probe string fits in this stack scratch.
const MAX_LABEL: usize = 63;

/// A positive detection: which brand is being squatted and how.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SquatMatch {
    /// The impersonated brand.
    pub brand: BrandId,
    /// The squatting technique.
    pub squat_type: SquatType,
}

/// Per-call instrumentation for the classify hot path, accumulated across
/// calls by the scan workers (see `squatphi_dnsdb::scan::ScanMetrics`).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ClassifyStats {
    /// Logical probes performed (exact, deletion, swap, fold, affix
    /// lookups). Counted at the same sites as the legacy detector, so the
    /// value is identical across implementations; what changed is the
    /// cost of each probe (an O(1) fingerprint test vs an O(len) string
    /// hash).
    pub probes: u64,
    /// Probes that passed the bit filter and consulted the backing map.
    /// For the legacy detector every probe is a map probe, so there
    /// `deep_probes == probes`; for the fingerprint detector this is the
    /// (small) fraction the filter could not reject.
    pub deep_probes: u64,
    /// Probe strings built in the stack scratch — or skipped entirely by
    /// fingerprint arithmetic — that the original `String`-per-probe
    /// implementation would have heap-allocated.
    pub allocations_avoided: u64,
}

impl ClassifyStats {
    /// Folds another counter set into this one (worker aggregation).
    pub fn merge(&mut self, other: &ClassifyStats) {
        self.probes += other.probes;
        self.deep_probes += other.deep_probes;
        self.allocations_avoided += other.allocations_avoided;
    }

    /// Publishes the counters into a telemetry scope. The struct itself
    /// stays a plain stack value — the classify hot path must not touch an
    /// atomic per probe — so workers accumulate locally and export once.
    pub fn export(&self, scope: &squatphi_telemetry::Scope) {
        scope.counter("probes").add(self.probes);
        scope.counter("deep_probes").add(self.deep_probes);
        scope
            .counter("allocations_avoided")
            .add(self.allocations_avoided);
    }

    /// Reads the counters back from a snapshot scope — the inverse of
    /// [`ClassifyStats::export`].
    pub fn from_snapshot(snap: &squatphi_telemetry::Snapshot, prefix: &str) -> ClassifyStats {
        ClassifyStats {
            probes: snap.u64_or_zero(&format!("{prefix}.probes")),
            deep_probes: snap.u64_or_zero(&format!("{prefix}.deep_probes")),
            allocations_avoided: snap.u64_or_zero(&format!("{prefix}.allocations_avoided")),
        }
    }
}

/// Precomputed fingerprint index over the brand registry for O(len)
/// per-record classification (see the module docs for the engine).
#[derive(Debug)]
pub struct SquatDetector {
    /// brand label fingerprint -> id.
    labels: FpTable<BrandId>,
    /// canonical confusable fold of each brand label -> id (first brand
    /// wins fold collisions, mirroring the pregenerated table). One probe
    /// against this index resolves ambiguous ASCII glyph swaps (`1`/`i`/`l`,
    /// `g`/`q`, `u`/`v`, `2`/`z`) at *any* number of positions, including
    /// brands whose own labels contain confusable glyphs (`nets53`).
    canon: FpTable<BrandId>,
    /// brand label per id: `BrandId` is a dense index into the registry, so
    /// the reverse direction is a direct `Vec` index (the scan hot path hits
    /// this on every deletion-probe match; it must not walk the map).
    brand_labels: Vec<String>,
    /// brand suffix per id (to distinguish wrongTLD from the brand itself).
    suffixes: Vec<String>,
    /// One-char-deletion variants of every brand label:
    /// deleted-string fingerprint -> ordered (brand, deleted position)
    /// entries (registry order, then position order — the legacy map's
    /// insertion order, which the omission rule's first-entry-wins
    /// depends on).
    deletions: FpTable<Vec<(BrandId, usize)>>,
    /// Union filter over the `deletions` and `labels` key fingerprints:
    /// the edit-distance pass probes both tables with the *same* deletion
    /// fingerprint, so one load here rejects both probes at once for the
    /// overwhelmingly common miss.
    edit_filter: Filter,
    /// Minimum / maximum brand label length (quick length gate).
    min_len: usize,
    max_len: usize,
    confusables: ConfusableTable,
    /// Combo affix vocabulary: a short (< 4 char) brand affix inside a
    /// token is only accepted when the rest of the token is one of these
    /// words ("freight", "pay", …), keeping generic two-letter brands from
    /// matching random words.
    combo_words: std::collections::HashSet<&'static str>,
}

impl SquatDetector {
    /// Builds the unified fingerprint index from a registry: exact labels,
    /// canonical confusable folds and every one-char deletion of every
    /// brand label, each behind its own bit filter.
    pub fn new(registry: &BrandRegistry) -> Self {
        let mut labels = Vec::with_capacity(registry.len());
        let mut canon_first: std::collections::HashMap<String, BrandId> =
            std::collections::HashMap::with_capacity(registry.len());
        let mut canon_order: Vec<String> = Vec::with_capacity(registry.len());
        let mut brand_labels = Vec::with_capacity(registry.len());
        let mut suffixes = Vec::with_capacity(registry.len());
        let mut deletion_groups: std::collections::HashMap<String, Vec<(BrandId, usize)>> =
            std::collections::HashMap::new();
        let mut deletion_order: Vec<String> = Vec::new();
        let (mut min_len, mut max_len) = (usize::MAX, 0);
        for b in registry.brands() {
            debug_assert_eq!(b.id, brand_labels.len(), "registry ids must be dense");
            labels.push((b.label.clone(), b.id));
            let key: String = b
                .label
                .bytes()
                .map(|c| ConfusableTable::canonical_fold_byte(c) as char)
                .collect();
            if let std::collections::hash_map::Entry::Vacant(e) = canon_first.entry(key) {
                canon_order.push(e.key().clone());
                e.insert(b.id);
            }
            brand_labels.push(b.label.clone());
            suffixes.push(b.domain.suffix().to_string());
            min_len = min_len.min(b.label.len());
            max_len = max_len.max(b.label.len());
            for i in 0..b.label.len() {
                let mut d = String::with_capacity(b.label.len() - 1);
                d.push_str(&b.label[..i]);
                d.push_str(&b.label[i + 1..]);
                let group = deletion_groups.entry(d.clone()).or_default();
                if group.is_empty() {
                    deletion_order.push(d);
                }
                group.push((b.id, i));
            }
        }
        let canon = canon_order
            .into_iter()
            .map(|k| {
                let id = canon_first[&k];
                (k, id)
            })
            .collect();
        let deletions = deletion_order
            .into_iter()
            .map(|k| {
                let group = deletion_groups.remove(&k).expect("group recorded once");
                (k, group)
            })
            .collect();
        let labels = FpTable::build(labels);
        let deletions = FpTable::build(deletions);
        let edit_filter = Filter::from_fps(
            labels.fingerprints().chain(deletions.fingerprints()),
            registry.len() * (1 + max_len.max(1)),
        );
        SquatDetector {
            labels,
            canon: FpTable::build(canon),
            brand_labels,
            suffixes,
            deletions,
            edit_filter,
            min_len,
            max_len,
            confusables: ConfusableTable::new(),
            combo_words: crate::words::COMBO_WORDS.iter().copied().collect(),
        }
    }

    /// Classifies a domain. Returns `None` for non-squatting domains and
    /// for the brands' own domains. Subdomains are ignored: classification
    /// uses the core (registrable) label only, per the paper.
    pub fn classify(&self, domain: &DomainName) -> Option<SquatMatch> {
        let mut stats = ClassifyStats::default();
        self.classify_with_stats(domain, &mut stats)
    }

    /// [`classify`](Self::classify), accumulating probe / allocation
    /// counters into `stats` for the scan instrumentation layer.
    pub fn classify_with_stats(
        &self,
        domain: &DomainName,
        stats: &mut ClassifyStats,
    ) -> Option<SquatMatch> {
        let label = domain.core_label();
        let suffix = domain.suffix();

        // One pass builds the rolling prefix fingerprints; every probe
        // below is O(1) arithmetic over them. Non-ASCII display-form
        // labels take the cold path (they allocate during folding anyway).
        let hashes = if label.is_ascii() {
            debug_assert!(label.len() <= MAX_LABEL);
            Some(LabelHashes::new(label.as_bytes()))
        } else {
            None
        };

        // Exact brand label: either the brand itself or wrongTLD.
        stats.probes += 1;
        let h_exact = match &hashes {
            Some(h) => h.full(),
            None => fp(label.as_bytes()),
        };
        if self.labels.maybe(h_exact) {
            stats.deep_probes += 1;
            if let Some(&id) = self.labels.get(h_exact, |k| k == label) {
                if self.suffixes[id] == suffix {
                    return None; // the genuine brand domain
                }
                return Some(SquatMatch {
                    brand: id,
                    squat_type: SquatType::WrongTld,
                });
            }
        }

        // Quick length gate for the per-character probes below (combo is
        // exempt — it can be much longer than any brand).
        let in_len_range = label.len() + 1 >= self.min_len && label.len() <= self.max_len + 1;

        // Punycode expands the wire form well beyond the display length, so
        // IDN labels bypass the gate; sequence folds (`rn`→`m`) shrink by
        // one, which the +1 slack already covers.
        if in_len_range || label.starts_with(idna::ACE_PREFIX) {
            if let Some(m) = self.check_homograph(label, hashes.as_ref(), stats) {
                return Some(m);
            }
        }
        if in_len_range {
            if let Some(h) = &hashes {
                if let Some(m) = self.check_edit_distance(label, h, stats) {
                    return Some(m);
                }
            }
        }
        match &hashes {
            Some(h) => self.check_combo(label, h, stats),
            None => None, // combo is ASCII-only, as in the legacy detector
        }
    }

    /// Homograph: fold the (possibly IDN) label to its ASCII skeleton and
    /// look it up; then fold to the *canonical* confusable key and probe
    /// the canonically-keyed brand index, which resolves the ambiguous
    /// ASCII confusables (`1` imitates both `l` and `i`, `q`↔`g`, `u`↔`v`,
    /// `2`→`z`) at any number of positions with a single probe; also
    /// try multi-char sequence folds (`rn`→`m` …). `hashes` is `Some` for
    /// every ASCII label (including `xn--` wire forms).
    fn check_homograph(
        &self,
        label: &str,
        hashes: Option<&LabelHashes>,
        stats: &mut ClassifyStats,
    ) -> Option<SquatMatch> {
        let mut scratch = [0u8; MAX_LABEL + 1];
        if let Some(rest) = label.strip_prefix(idna::ACE_PREFIX) {
            // IDN: decode, fold, look up. Decoding allocates by nature, so
            // xn-- labels are exempt from the zero-alloc guarantee.
            let decoded = squatphi_domain::punycode::decode(rest).ok()?;
            let folded = self.confusables.skeleton(&decoded);
            if folded != label {
                stats.probes += 1;
                let h = fp(folded.as_bytes());
                if self.labels.maybe(h) {
                    stats.deep_probes += 1;
                    if let Some(&id) = self.labels.get(h, |k| k == folded) {
                        return Some(SquatMatch {
                            brand: id,
                            squat_type: SquatType::Homograph,
                        });
                    }
                }
            }
            if folded.is_ascii() {
                // Reuse the fold's own buffer for the canonical probe.
                let mut bytes = folded.into_bytes();
                if let Some(m) = self.canonical_probe(&mut bytes, stats) {
                    return Some(m);
                }
            }
        } else if label.is_ascii() {
            // Hot path: fold into the stack scratch — for ASCII the skeleton
            // is the byte-wise `ascii_fold_byte` map — computing both the
            // skeleton and the canonical-fold fingerprints in the same
            // pass. No allocation, no re-hash; the canonical bytes are
            // only materialized if their fingerprint passes the filter.
            debug_assert!(label.len() <= MAX_LABEL);
            let n = label.len();
            let mut h_skel = 0u64;
            let mut h_canon = 0u64;
            let mut changed = false;
            for (dst, &src) in scratch[..n].iter_mut().zip(label.as_bytes()) {
                let f = ConfusableTable::ascii_fold_byte(src);
                *dst = f;
                changed |= f != src;
                h_skel = fp_push(h_skel, f);
                h_canon = fp_push(h_canon, ConfusableTable::canonical_fold_byte(f));
            }
            stats.allocations_avoided += 1;
            if changed {
                stats.probes += 1;
                if self.labels.maybe(h_skel) {
                    stats.deep_probes += 1;
                    if let Some(&id) = self.labels.get(h_skel, |k| k.as_bytes() == &scratch[..n]) {
                        return Some(SquatMatch {
                            brand: id,
                            squat_type: SquatType::Homograph,
                        });
                    }
                }
            }
            // Canonical confusable probe (same counting sites as
            // `canonical_probe`, which the cold branches still use).
            stats.allocations_avoided += 1;
            stats.probes += 1;
            if self.canon.maybe(h_canon) {
                stats.deep_probes += 1;
                for b in scratch[..n].iter_mut() {
                    *b = ConfusableTable::canonical_fold_byte(*b);
                }
                if let Some(&id) = self.canon.get(h_canon, |k| k.as_bytes() == &scratch[..n]) {
                    return Some(SquatMatch {
                        brand: id,
                        squat_type: SquatType::Homograph,
                    });
                }
            }
        } else {
            // Non-ASCII Unicode label (already-decoded display form): fold
            // via the full confusable table, which allocates.
            let folded = self.confusables.skeleton(label);
            if folded != label {
                stats.probes += 1;
                let h = fp(folded.as_bytes());
                if self.labels.maybe(h) {
                    stats.deep_probes += 1;
                    if let Some(&id) = self.labels.get(h, |k| k == folded) {
                        return Some(SquatMatch {
                            brand: id,
                            squat_type: SquatType::Homograph,
                        });
                    }
                }
            }
            if folded.is_ascii() {
                let mut bytes = folded.into_bytes();
                if let Some(m) = self.canonical_probe(&mut bytes, stats) {
                    return Some(m);
                }
            }
        }
        // Sequence folds on ASCII labels: rn -> m, vv -> w, cl -> d, …
        // Each occurrence's folded fingerprint is O(1) from the prefix
        // hashes; the fold is only materialized (into the scratch) when a
        // fingerprint passes the filter and needs verification.
        if label.is_ascii() {
            let hashes = hashes.expect("ASCII labels always carry prefix hashes");
            /// `(fold index, target)` when an adjacent byte pair is a
            /// foldable sequence (`rn` → `m`, …). The fold index encodes
            /// the legacy probe order.
            #[inline]
            fn seq_fold_of(a: u8, b: u8) -> Option<(u8, u8)> {
                match (a, b) {
                    (b'r', b'n') => Some((0, b'm')),
                    (b'n', b'n') => Some((1, b'm')),
                    (b'v', b'v') => Some((2, b'w')),
                    (b'c', b'l') => Some((3, b'd')),
                    (b'l', b'c') => Some((4, b'k')),
                    (b'l', b'o') => Some((5, b'b')),
                    _ => None,
                }
            }
            // One pass over the adjacent pairs collects every occurrence
            // (the old code ran six `str::find` scans); probing still goes
            // fold-by-fold in occurrence order — the legacy probe order —
            // and every occurrence is probed, not just the first:
            // `fernrnart` (fernmart with m → rn) contains `rn` twice and
            // only folding the second one recovers the brand.
            let bytes = label.as_bytes();
            let mut occ = [(0u8, 0u8, 0u8); MAX_LABEL];
            let mut n_occ = 0usize;
            for pos in 0..bytes.len().saturating_sub(1) {
                if let Some((idx, target)) = seq_fold_of(bytes[pos], bytes[pos + 1]) {
                    occ[n_occ] = (idx, pos as u8, target);
                    n_occ += 1;
                }
            }
            for fold in 0..6u8 {
                for &(idx, pos, target) in &occ[..n_occ] {
                    if idx != fold {
                        continue;
                    }
                    let pos = pos as usize;
                    stats.allocations_avoided += 1;
                    stats.probes += 1;
                    let h = hashes.seq_fold(pos, target);
                    if self.labels.maybe(h) {
                        stats.deep_probes += 1;
                        let n = bytes.len() - 1;
                        scratch[..pos].copy_from_slice(&bytes[..pos]);
                        scratch[pos] = target;
                        scratch[pos + 1..n].copy_from_slice(&bytes[pos + 2..]);
                        if let Some(&id) = self.labels.get(h, |k| k.as_bytes() == &scratch[..n]) {
                            return Some(SquatMatch {
                                brand: id,
                                squat_type: SquatType::Homograph,
                            });
                        }
                    }
                }
            }
        }
        None
    }

    /// Canonical confusable probe: rewrite the (already skeleton-folded)
    /// ASCII bytes in place to the canonical fold — fingerprinting them in
    /// the same pass — and look the key up in the canonically-keyed brand
    /// index. Because canonical folds are equal **iff** the labels are
    /// related by single-character confusable swaps, this one probe
    /// replaces a per-position substitution loop and additionally resolves
    /// multi-position swaps (`a11iancebank`, `bloqqer`) and brands
    /// containing confusable glyphs (`nets53` vs `net553` / `netss3`).
    ///
    /// The caller guarantees the raw label failed the exact-label lookup,
    /// so any hit here is a genuine homograph, never the brand itself.
    fn canonical_probe(&self, folded: &mut [u8], stats: &mut ClassifyStats) -> Option<SquatMatch> {
        let mut h = 0u64;
        for b in folded.iter_mut() {
            *b = ConfusableTable::canonical_fold_byte(*b);
            h = fp_push(h, *b);
        }
        stats.allocations_avoided += 1;
        stats.probes += 1;
        if !self.canon.maybe(h) {
            return None;
        }
        stats.deep_probes += 1;
        let key: &[u8] = folded;
        self.canon
            .get(h, |k| k.as_bytes() == key)
            .map(|&id| SquatMatch {
                brand: id,
                squat_type: SquatType::Homograph,
            })
    }

    /// Bits / typo via symmetric deletion probing.
    ///
    /// Substitution (step a) and insertion (step c) both probe with the
    /// same one-char deletions of the label, so a single pass computes each
    /// deletion fingerprint once and serves both: substitution hits return
    /// immediately (highest precedence), the first insertion hit is
    /// remembered and only returned after the adjacent-swap probes,
    /// preserving the original bits → swap → insertion → omission order.
    fn check_edit_distance(
        &self,
        label: &str,
        hashes: &LabelHashes,
        stats: &mut ClassifyStats,
    ) -> Option<SquatMatch> {
        if !label.is_ascii() || label.is_empty() {
            return None;
        }
        debug_assert!(label.len() <= MAX_LABEL);
        let bytes = label.as_bytes();
        // One extra O(len) pass buys suffix fingerprints, making every
        // deletion / swap fingerprint below a single multiply.
        let suffixes = hashes.suffixes(bytes);
        let mut insertion_hit: Option<BrandId> = None;

        // (a) + (c): delete char i once; probe the deletion index for a
        // same-position brand deletion (substitution at i → bits if the two
        // bytes differ by one bit) and the label index for an exact brand
        // (insertion of i). Verification compares the key piecewise against
        // label[..i] ++ label[i+1..], so the deletion is never materialized.
        for i in 0..bytes.len() {
            stats.allocations_avoided += 2; // one String per step, twice
            let h = hashes.deletion(i, &suffixes);
            // Both tables are probed with the same fingerprint; one union
            // filter load rejects both at once on the common miss.
            let worth_probing = self.edit_filter.maybe(h);
            let is_deletion = |k: &str| {
                let kb = k.as_bytes();
                kb.len() + 1 == bytes.len() && kb[..i] == bytes[..i] && kb[i..] == bytes[i + 1..]
            };
            stats.probes += 1;
            if worth_probing && self.deletions.maybe(h) {
                stats.deep_probes += 1;
                if let Some(hits) = self.deletions.get(h, is_deletion) {
                    for &(id, pos) in hits {
                        // Keys of equal length imply brand.len() == label.len(),
                        // so only the deleted position needs to match.
                        if pos == i {
                            let brand = self.brand_labels[id].as_bytes();
                            debug_assert_eq!(brand.len(), label.len());
                            if (bytes[i] ^ brand[i]).count_ones() == 1 {
                                return Some(SquatMatch {
                                    brand: id,
                                    squat_type: SquatType::Bits,
                                });
                            }
                        }
                    }
                }
            }
            if insertion_hit.is_none() {
                stats.probes += 1;
                if worth_probing && self.labels.maybe(h) {
                    stats.deep_probes += 1;
                    insertion_hit = self.labels.get(h, is_deletion).copied();
                }
            }
        }
        // (b) Adjacent swap: the transposed fingerprint is O(1); the swap
        //     itself is verified piecewise on a filter pass.
        for i in 0..bytes.len().saturating_sub(1) {
            if bytes[i] == bytes[i + 1] {
                continue;
            }
            stats.allocations_avoided += 1;
            stats.probes += 1;
            let h = hashes.swap(i, bytes, &suffixes);
            if self.labels.maybe(h) {
                stats.deep_probes += 1;
                let is_swap = |k: &str| {
                    let kb = k.as_bytes();
                    kb.len() == bytes.len()
                        && kb[..i] == bytes[..i]
                        && kb[i] == bytes[i + 1]
                        && kb[i + 1] == bytes[i]
                        && kb[i + 2..] == bytes[i + 2..]
                };
                if let Some(&id) = self.labels.get(h, is_swap) {
                    return Some(SquatMatch {
                        brand: id,
                        squat_type: SquatType::Typo,
                    });
                }
            }
        }
        // (c) Insertion (label is brand + 1 char), found during the merged
        //     deletion pass above; swap outranks it, so it returns here.
        if let Some(id) = insertion_hit {
            return Some(SquatMatch {
                brand: id,
                squat_type: SquatType::Typo,
            });
        }
        // (d) Omission (label is brand - 1 char): the label appears in the
        //     brand deletion index.
        stats.probes += 1;
        let h = hashes.full();
        if self.deletions.maybe(h) {
            stats.deep_probes += 1;
            if let Some(hits) = self.deletions.get(h, |k| k == label) {
                if let Some(&(id, _)) = hits.first() {
                    return Some(SquatMatch {
                        brand: id,
                        squat_type: SquatType::Typo,
                    });
                }
            }
        }
        None
    }

    /// Combo: hyphen-separated tokens containing the brand. Probe
    /// fingerprints are O(1) ranges over the label's prefix hashes, and
    /// verification borrows subslices of the label, so this step never
    /// allocated to begin with.
    ///
    /// Two passes: exact token matches across *all* tokens run before any
    /// affix probing, so `service-paypal` attributes to `paypal` (an exact
    /// token) rather than to a brand that happens to be an affix of an
    /// earlier token (`vice` inside `service`).
    fn check_combo(
        &self,
        label: &str,
        hashes: &LabelHashes,
        stats: &mut ClassifyStats,
    ) -> Option<SquatMatch> {
        if !label.contains('-') || !label.is_ascii() {
            return None;
        }
        // Pass 1: exact token match, all tokens.
        let mut off = 0;
        for token in label.split('-') {
            let (a, b) = (off, off + token.len());
            off = b + 1;
            if token.len() < 2 {
                continue;
            }
            stats.probes += 1;
            let h = hashes.range(a, b);
            if self.labels.maybe(h) {
                stats.deep_probes += 1;
                if let Some(&id) = self.labels.get(h, |k| k == token) {
                    return Some(SquatMatch {
                        brand: id,
                        squat_type: SquatType::Combo,
                    });
                }
            }
        }
        // Pass 2: token starts or ends with a brand label. Affixes >= 4
        // chars match unconditionally; shorter brand affixes ("adp" in
        // "adpfreight", "bt" in "btpay") are accepted only when the rest of
        // the token is a known combo word, which keeps generic two-letter
        // sequences inside random words from matching.
        let mut off = 0;
        for token in label.split('-') {
            let (a, b) = (off, off + token.len());
            off = b + 1;
            if token.len() < 2 {
                continue;
            }
            for cut in (4..token.len()).rev() {
                stats.probes += 2;
                let h_pre = hashes.range(a, a + cut);
                if self.labels.maybe(h_pre) {
                    stats.deep_probes += 1;
                    if let Some(&id) = self.labels.get(h_pre, |k| k == &token[..cut]) {
                        return Some(SquatMatch {
                            brand: id,
                            squat_type: SquatType::Combo,
                        });
                    }
                }
                let h_suf = hashes.range(b - cut, b);
                if self.labels.maybe(h_suf) {
                    stats.deep_probes += 1;
                    if let Some(&id) = self.labels.get(h_suf, |k| k == &token[token.len() - cut..])
                    {
                        return Some(SquatMatch {
                            brand: id,
                            squat_type: SquatType::Combo,
                        });
                    }
                }
            }
            for cut in (2..token.len().min(4)).rev() {
                stats.probes += 2;
                let h_pre = hashes.range(a, a + cut);
                if self.labels.maybe(h_pre) {
                    stats.deep_probes += 1;
                    if let Some(&id) = self.labels.get(h_pre, |k| k == &token[..cut]) {
                        if self.combo_words.contains(&token[cut..]) {
                            return Some(SquatMatch {
                                brand: id,
                                squat_type: SquatType::Combo,
                            });
                        }
                    }
                }
                let h_suf = hashes.range(b - cut, b);
                if self.labels.maybe(h_suf) {
                    stats.deep_probes += 1;
                    if let Some(&id) = self.labels.get(h_suf, |k| k == &token[token.len() - cut..])
                    {
                        if self.combo_words.contains(&token[..token.len() - cut]) {
                            return Some(SquatMatch {
                                brand: id,
                                squat_type: SquatType::Combo,
                            });
                        }
                    }
                }
            }
        }
        None
    }

    /// The label of brand `id` (dense `Vec` index; used by reporting code).
    pub fn brand_label_of(&self, id: BrandId) -> &str {
        &self.brand_labels[id]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::brand::BrandRegistry;
    use crate::legacy::LegacyDetector;

    fn detector() -> (BrandRegistry, SquatDetector) {
        let reg = BrandRegistry::with_size(30);
        let det = SquatDetector::new(&reg);
        (reg, det)
    }

    fn classify(det: &SquatDetector, s: &str) -> Option<SquatType> {
        det.classify(&DomainName::parse(s).unwrap())
            .map(|m| m.squat_type)
    }

    #[test]
    fn table1_examples_classified() {
        let (_reg, det) = detector();
        assert_eq!(classify(&det, "faceb00k.pw"), Some(SquatType::Homograph));
        assert_eq!(
            classify(&det, "xn--fcebook-8va.com"),
            Some(SquatType::Homograph)
        );
        assert_eq!(classify(&det, "facebnok.tk"), Some(SquatType::Bits));
        assert_eq!(classify(&det, "facebo0ok.com"), Some(SquatType::Typo));
        assert_eq!(classify(&det, "fcaebook.org"), Some(SquatType::Typo));
        assert_eq!(classify(&det, "facebook-story.de"), Some(SquatType::Combo));
        assert_eq!(classify(&det, "facebook.audi"), Some(SquatType::WrongTld));
    }

    #[test]
    fn brand_itself_is_not_squatting() {
        let (_reg, det) = detector();
        assert_eq!(classify(&det, "facebook.com"), None);
        assert_eq!(classify(&det, "paypal.com"), None);
    }

    #[test]
    fn unrelated_domains_pass() {
        let (_reg, det) = detector();
        assert_eq!(classify(&det, "example.com"), None);
        assert_eq!(classify(&det, "winterpillow.net"), None);
        assert_eq!(classify(&det, "random-hyphen-words.org"), None);
    }

    #[test]
    fn matched_brand_is_correct() {
        let (reg, det) = detector();
        let m = det
            .classify(&DomainName::parse("goofle.com.ua").unwrap())
            .unwrap();
        assert_eq!(reg.get(m.brand).unwrap().label, "google");
        assert_eq!(m.squat_type, SquatType::Bits);
    }

    #[test]
    fn brand_label_of_matches_registry() {
        let (reg, det) = detector();
        for b in reg.brands() {
            assert_eq!(det.brand_label_of(b.id), b.label);
        }
    }

    #[test]
    fn subdomains_are_ignored() {
        let (_reg, det) = detector();
        // mail.google-app.de → combo on google (paper example).
        assert_eq!(classify(&det, "mail.google-app.de"), Some(SquatType::Combo));
    }

    #[test]
    fn combo_fused_tokens() {
        let (reg, det) = detector();
        let m = det
            .classify(&DomainName::parse("go-uberfreight.com").unwrap())
            .unwrap();
        assert_eq!(reg.get(m.brand).unwrap().label, "uber");
        assert_eq!(m.squat_type, SquatType::Combo);
        // live-microsoftsupport.com (Fig 14c).
        let m = det
            .classify(&DomainName::parse("live-microsoftsupport.com").unwrap())
            .unwrap();
        assert_eq!(reg.get(m.brand).unwrap().label, "microsoft");
    }

    #[test]
    fn typo_variants_by_op() {
        let (_reg, det) = detector();
        assert_eq!(classify(&det, "facebok.tk"), Some(SquatType::Typo)); // omission
        assert_eq!(classify(&det, "faceboook.top"), Some(SquatType::Typo)); // repetition
        assert_eq!(classify(&det, "faecbook.com"), Some(SquatType::Typo)); // swap
    }

    #[test]
    fn homograph_precedes_typo_for_digit_swaps() {
        let (_reg, det) = detector();
        // goog1e: 1-for-l — confusable substitution, same length.
        assert_eq!(classify(&det, "goog1e.nl"), Some(SquatType::Homograph));
        // you5ube: paper Table 10 calls it typo, we classify 5→t… 5 is not
        // a confusable of t, and it's a substitution (not ins/del/swap) and
        // not one bit — so our orthogonal rules say None. Verify it doesn't
        // crash and returns something sensible.
        let r = classify(&det, "you5ube.com");
        assert!(r.is_none() || r == Some(SquatType::Typo));
    }

    #[test]
    fn swap_precedes_insertion() {
        // A label that is simultaneously an adjacent swap of one brand form
        // and an insertion over another must resolve as the swap (step b
        // outranks step c even though insertions are now detected during
        // the merged deletion pass).
        let (_reg, det) = detector();
        assert_eq!(classify(&det, "faecbook.com"), Some(SquatType::Typo));
    }

    #[test]
    fn stats_count_probes_for_misses() {
        let (_reg, det) = detector();
        let mut stats = ClassifyStats::default();
        let d = DomainName::parse("winterpillow.net").unwrap();
        assert!(det.classify_with_stats(&d, &mut stats).is_none());
        // At minimum the exact lookup plus the per-character deletion and
        // swap probes ran.
        assert!(stats.probes as usize > "winterpillow".len());
        assert!(stats.allocations_avoided > 0);
        // The filter must reject the overwhelming majority of a benign
        // label's probes before the backing map is touched.
        assert!(stats.deep_probes < stats.probes);
    }

    #[test]
    fn stats_merge_accumulates() {
        let mut a = ClassifyStats {
            probes: 3,
            deep_probes: 1,
            allocations_avoided: 2,
        };
        let b = ClassifyStats {
            probes: 5,
            deep_probes: 2,
            allocations_avoided: 7,
        };
        a.merge(&b);
        assert_eq!(
            a,
            ClassifyStats {
                probes: 8,
                deep_probes: 3,
                allocations_avoided: 9
            }
        );
    }

    #[test]
    fn wrong_tld_over_multi_suffix() {
        let (_reg, det) = detector();
        assert_eq!(classify(&det, "google.com.ua"), Some(SquatType::WrongTld));
    }

    #[test]
    fn generated_candidates_are_detected_as_their_type() {
        use crate::gen::{generate_all, GenBudget};
        let reg = BrandRegistry::with_size(20);
        let det = SquatDetector::new(&reg);
        let mut total = 0;
        let mut matched = 0;
        for brand in reg.brands() {
            for c in generate_all(
                brand,
                GenBudget {
                    homograph: 20,
                    bits: 20,
                    typo: 20,
                    combo: 20,
                    wrong_tld: 5,
                },
            ) {
                total += 1;
                if let Some(m) = det.classify(&c.domain) {
                    // Type may legitimately differ near precedence borders
                    // (e.g. a typo-insert that is also a brand's deletion);
                    // brand must be plausible though.
                    let _ = m;
                    matched += 1;
                }
            }
        }
        let rate = matched as f64 / total as f64;
        assert!(
            rate > 0.95,
            "detector recall on generated candidates too low: {rate} ({matched}/{total})"
        );
    }

    #[test]
    fn cross_type_consistency_on_clean_candidates() {
        use crate::gen::{generate_all, GenBudget};
        // For brands whose labels are far apart, generated type == detected type.
        let reg = BrandRegistry::with_size(8);
        let det = SquatDetector::new(&reg);
        let brand = reg.by_label("santander").unwrap();
        for c in generate_all(brand, GenBudget::default()) {
            if let Some(m) = det.classify(&c.domain) {
                assert_eq!(m.brand, brand.id, "{} matched wrong brand", c.domain);
            }
        }
    }

    #[test]
    fn agrees_with_legacy_on_mixed_corpus() {
        // Quick inline differential; the exhaustive gate lives in the
        // conformance crate's scan-diff oracle and matcher proptests.
        let reg = BrandRegistry::with_size(40);
        let new = SquatDetector::new(&reg);
        let old = LegacyDetector::new(&reg);
        for s in [
            "winterpillow.net",
            "example.com",
            "random-hyphen-words.org",
            "faceb00k.pw",
            "goog1e.nl",
            "facebnok.tk",
            "facebok.tk",
            "facebo0ok.com",
            "fcaebook.org",
            "facebook-story.de",
            "facebook.audi",
            "facebook.com",
            "go-uberfreight.com",
            "live-microsoftsupport.com",
            "xn--fcebook-8va.com",
            "mail.google-app.de",
            "google.com.ua",
            "fernrnart.com",
            "a11iancebank.com",
        ] {
            let d = DomainName::parse(s).unwrap();
            let mut sn = ClassifyStats::default();
            let mut so = ClassifyStats::default();
            assert_eq!(
                new.classify_with_stats(&d, &mut sn),
                old.classify_with_stats(&d, &mut so),
                "disagreement on {s}"
            );
            assert_eq!(sn.probes, so.probes, "probe accounting diverged on {s}");
            assert_eq!(
                sn.allocations_avoided, so.allocations_avoided,
                "allocation accounting diverged on {s}"
            );
        }
    }
}
