//! The reverse direction: classify an arbitrary DNS name against the brand
//! registry (paper §3.1 "Domain Squatting Detection Results").
//!
//! The scan must process hundreds of millions of records, so the detector
//! avoids the naive "generate every candidate for every brand and hash
//! them" approach for the edit-distance types and instead works per
//! record in ~O(len) hash probes:
//!
//! * **wrongTLD** — exact label lookup, suffix differs;
//! * **homograph** — confusable-fold the label (IDN labels are punycode-
//!   decoded first), then exact lookup; multi-char sequences (`rn`→`m`)
//!   are folded by targeted replacement;
//! * **bits** / **typo** — symmetric-deletion probing: one-character
//!   deletions of the label are matched against precomputed one-character
//!   deletions of every brand label, which recognizes substitution
//!   (bits vs nothing), omission, insertion and adjacent swap with
//!   O(len) probes;
//! * **combo** — hyphen tokenization with prefix/suffix probes.
//!
//! Types are checked in a fixed precedence so the five categories stay
//! orthogonal (a label matching several rules gets exactly one type):
//! wrongTLD → homograph → bits → typo → combo.
//!
//! # Allocation discipline
//!
//! `classify` is the scan hot path. For ASCII labels it performs **zero
//! heap allocations**: every probe string (one-char deletions, adjacent
//! swaps, skeleton folds, ambiguous-glyph swaps, sequence folds) is built
//! in a `[u8; 64]` stack buffer — DNS labels are at most 63 octets, which
//! [`DomainName::parse`] enforces. IDN (`xn--`) labels are exempt from the
//! guarantee: punycode decoding inherently allocates, and those labels are
//! a vanishing fraction of a zone file. [`ClassifyStats`] counts both the
//! hash probes performed and the allocations the stack buffers avoided
//! relative to the previous `String`-per-probe implementation, so the scan
//! layer can report them per worker.

use crate::brand::{BrandId, BrandRegistry};
use crate::SquatType;
use squatphi_domain::{idna, ConfusableTable, DomainName};
use std::collections::HashMap;

/// DNS labels are at most 63 octets ([`DomainName::parse`] rejects longer
/// ones), so every ASCII probe string fits in this stack scratch.
const MAX_LABEL: usize = 63;

/// A positive detection: which brand is being squatted and how.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SquatMatch {
    /// The impersonated brand.
    pub brand: BrandId,
    /// The squatting technique.
    pub squat_type: SquatType,
}

/// Per-call instrumentation for the classify hot path, accumulated across
/// calls by the scan workers (see `squatphi_dnsdb::scan::ScanMetrics`).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ClassifyStats {
    /// Hash-table probes performed (exact, deletion, swap, fold lookups).
    pub probes: u64,
    /// Probe strings built in the stack scratch that the previous
    /// `String`-per-probe implementation would have heap-allocated.
    pub allocations_avoided: u64,
}

impl ClassifyStats {
    /// Folds another counter set into this one (worker aggregation).
    pub fn merge(&mut self, other: &ClassifyStats) {
        self.probes += other.probes;
        self.allocations_avoided += other.allocations_avoided;
    }
}

/// Precomputed index over the brand registry for O(len) per-record
/// classification.
#[derive(Debug)]
pub struct SquatDetector {
    /// brand label -> id.
    labels: HashMap<String, BrandId>,
    /// canonical confusable fold of each brand label -> id (first brand
    /// wins fold collisions, mirroring the pregenerated table). One probe
    /// against this index resolves ambiguous ASCII glyph swaps (`1`/`i`/`l`,
    /// `g`/`q`, `u`/`v`, `2`/`z`) at *any* number of positions, including
    /// brands whose own labels contain confusable glyphs (`nets53`).
    canon: HashMap<String, BrandId>,
    /// brand label per id: `BrandId` is a dense index into the registry, so
    /// the reverse direction is a direct `Vec` index (the scan hot path hits
    /// this on every deletion-probe match; it must not walk the map).
    brand_labels: Vec<String>,
    /// brand suffix per id (to distinguish wrongTLD from the brand itself).
    suffixes: Vec<String>,
    /// One-char-deletion variants of every brand label:
    /// deleted-string -> (brand, deleted position).
    deletions: HashMap<String, Vec<(BrandId, usize)>>,
    /// Minimum / maximum brand label length (quick length gate).
    min_len: usize,
    max_len: usize,
    confusables: ConfusableTable,
    /// Combo affix vocabulary: a short (< 4 char) brand affix inside a
    /// token is only accepted when the rest of the token is one of these
    /// words ("freight", "pay", …), keeping generic two-letter brands from
    /// matching random words.
    combo_words: std::collections::HashSet<&'static str>,
}

impl SquatDetector {
    /// Builds the detector index from a registry.
    pub fn new(registry: &BrandRegistry) -> Self {
        let mut labels = HashMap::with_capacity(registry.len());
        let mut canon = HashMap::with_capacity(registry.len());
        let mut brand_labels = Vec::with_capacity(registry.len());
        let mut suffixes = Vec::with_capacity(registry.len());
        let mut deletions: HashMap<String, Vec<(BrandId, usize)>> = HashMap::new();
        let (mut min_len, mut max_len) = (usize::MAX, 0);
        for b in registry.brands() {
            debug_assert_eq!(b.id, brand_labels.len(), "registry ids must be dense");
            labels.insert(b.label.clone(), b.id);
            let key: String = b
                .label
                .bytes()
                .map(|c| ConfusableTable::canonical_fold_byte(c) as char)
                .collect();
            canon.entry(key).or_insert(b.id);
            brand_labels.push(b.label.clone());
            suffixes.push(b.domain.suffix().to_string());
            min_len = min_len.min(b.label.len());
            max_len = max_len.max(b.label.len());
            for i in 0..b.label.len() {
                let mut d = String::with_capacity(b.label.len() - 1);
                d.push_str(&b.label[..i]);
                d.push_str(&b.label[i + 1..]);
                deletions.entry(d).or_default().push((b.id, i));
            }
        }
        SquatDetector {
            labels,
            canon,
            brand_labels,
            suffixes,
            deletions,
            min_len,
            max_len,
            confusables: ConfusableTable::new(),
            combo_words: crate::words::COMBO_WORDS.iter().copied().collect(),
        }
    }

    /// Classifies a domain. Returns `None` for non-squatting domains and
    /// for the brands' own domains. Subdomains are ignored: classification
    /// uses the core (registrable) label only, per the paper.
    pub fn classify(&self, domain: &DomainName) -> Option<SquatMatch> {
        let mut stats = ClassifyStats::default();
        self.classify_with_stats(domain, &mut stats)
    }

    /// [`classify`](Self::classify), accumulating probe / allocation
    /// counters into `stats` for the scan instrumentation layer.
    pub fn classify_with_stats(
        &self,
        domain: &DomainName,
        stats: &mut ClassifyStats,
    ) -> Option<SquatMatch> {
        let label = domain.core_label();
        let suffix = domain.suffix();

        // Exact brand label: either the brand itself or wrongTLD.
        stats.probes += 1;
        if let Some(&id) = self.labels.get(label) {
            if self.suffixes[id] == suffix {
                return None; // the genuine brand domain
            }
            return Some(SquatMatch {
                brand: id,
                squat_type: SquatType::WrongTld,
            });
        }

        // Quick length gate for the per-character probes below (combo is
        // exempt — it can be much longer than any brand).
        let in_len_range = label.len() + 1 >= self.min_len && label.len() <= self.max_len + 1;

        // Punycode expands the wire form well beyond the display length, so
        // IDN labels bypass the gate; sequence folds (`rn`→`m`) shrink by
        // one, which the +1 slack already covers.
        if in_len_range || label.starts_with(idna::ACE_PREFIX) {
            if let Some(m) = self.check_homograph(label, stats) {
                return Some(m);
            }
        }
        if in_len_range {
            if let Some(m) = self.check_edit_distance(label, stats) {
                return Some(m);
            }
        }
        self.check_combo(label, stats)
    }

    /// Homograph: fold the (possibly IDN) label to its ASCII skeleton and
    /// look it up; then fold to the *canonical* confusable key and probe
    /// the canonically-keyed brand index, which resolves the ambiguous
    /// ASCII confusables (`1` imitates both `l` and `i`, `q`↔`g`, `u`↔`v`,
    /// `2`→`z`) at any number of positions with a single hash probe; also
    /// try multi-char sequence folds (`rn`→`m` …).
    fn check_homograph(&self, label: &str, stats: &mut ClassifyStats) -> Option<SquatMatch> {
        let mut scratch = [0u8; MAX_LABEL + 1];
        if let Some(rest) = label.strip_prefix(idna::ACE_PREFIX) {
            // IDN: decode, fold, look up. Decoding allocates by nature, so
            // xn-- labels are exempt from the zero-alloc guarantee.
            let decoded = squatphi_domain::punycode::decode(rest).ok()?;
            let folded = self.confusables.skeleton(&decoded);
            if folded != label {
                stats.probes += 1;
                if let Some(&id) = self.labels.get(folded.as_str()) {
                    return Some(SquatMatch {
                        brand: id,
                        squat_type: SquatType::Homograph,
                    });
                }
            }
            if folded.is_ascii() {
                // Reuse the fold's own buffer for the canonical probe.
                let mut bytes = folded.into_bytes();
                if let Some(m) = self.canonical_probe(&mut bytes, stats) {
                    return Some(m);
                }
            }
        } else if label.is_ascii() {
            // Hot path: fold into the stack scratch — for ASCII the skeleton
            // is the byte-wise `ascii_fold_byte` map, no allocation needed.
            debug_assert!(label.len() <= MAX_LABEL);
            let n = label.len();
            for (dst, &src) in scratch[..n].iter_mut().zip(label.as_bytes()) {
                *dst = ConfusableTable::ascii_fold_byte(src);
            }
            stats.allocations_avoided += 1;
            if &scratch[..n] != label.as_bytes() {
                stats.probes += 1;
                let folded = std::str::from_utf8(&scratch[..n]).expect("ascii");
                if let Some(&id) = self.labels.get(folded) {
                    return Some(SquatMatch {
                        brand: id,
                        squat_type: SquatType::Homograph,
                    });
                }
            }
            let (canon_buf, _) = scratch.split_at_mut(n);
            if let Some(m) = self.canonical_probe(canon_buf, stats) {
                return Some(m);
            }
        } else {
            // Non-ASCII Unicode label (already-decoded display form): fold
            // via the full confusable table, which allocates.
            let folded = self.confusables.skeleton(label);
            if folded != label {
                stats.probes += 1;
                if let Some(&id) = self.labels.get(folded.as_str()) {
                    return Some(SquatMatch {
                        brand: id,
                        squat_type: SquatType::Homograph,
                    });
                }
            }
            if folded.is_ascii() {
                let mut bytes = folded.into_bytes();
                if let Some(m) = self.canonical_probe(&mut bytes, stats) {
                    return Some(m);
                }
            }
        }
        // Sequence folds on ASCII labels: rn -> m, vv -> w, cl -> d, …
        // built in the scratch (the label fits by the DNS length limit).
        if label.is_ascii() {
            const SEQ_FOLDS: &[(&str, u8)] = &[
                ("rn", b'm'),
                ("nn", b'm'),
                ("vv", b'w'),
                ("cl", b'd'),
                ("lc", b'k'),
                ("lo", b'b'),
            ];
            let bytes = label.as_bytes();
            for &(seq, target) in SEQ_FOLDS {
                // Every occurrence must be probed, not just the first:
                // `fernrnart` (fernmart with m → rn) contains `rn` twice and
                // only folding the second one recovers the brand.
                let mut start = 0;
                while let Some(off) = label[start..].find(seq) {
                    let pos = start + off;
                    let n = bytes.len() - 1;
                    scratch[..pos].copy_from_slice(&bytes[..pos]);
                    scratch[pos] = target;
                    scratch[pos + 1..n].copy_from_slice(&bytes[pos + 2..]);
                    stats.allocations_avoided += 1;
                    stats.probes += 1;
                    let s = std::str::from_utf8(&scratch[..n]).expect("ascii");
                    if let Some(&id) = self.labels.get(s) {
                        return Some(SquatMatch {
                            brand: id,
                            squat_type: SquatType::Homograph,
                        });
                    }
                    start = pos + 1;
                }
            }
        }
        None
    }

    /// Canonical confusable probe: rewrite the (already skeleton-folded)
    /// ASCII bytes in place to the canonical fold and look the key up in
    /// the canonically-keyed brand index. Because canonical folds are equal
    /// **iff** the labels are related by single-character confusable swaps,
    /// this one probe replaces the old per-position substitution loop and
    /// additionally resolves multi-position swaps (`a11iancebank`,
    /// `bloqqer`) and brands containing confusable glyphs (`nets53` vs
    /// `net553` / `netss3`), which single-position probing missed.
    ///
    /// The caller guarantees the raw label failed the exact-label lookup,
    /// so any hit here is a genuine homograph, never the brand itself.
    fn canonical_probe(&self, folded: &mut [u8], stats: &mut ClassifyStats) -> Option<SquatMatch> {
        for b in folded.iter_mut() {
            *b = ConfusableTable::canonical_fold_byte(*b);
        }
        stats.allocations_avoided += 1;
        stats.probes += 1;
        let key = std::str::from_utf8(folded).expect("ascii");
        self.canon.get(key).map(|&id| SquatMatch {
            brand: id,
            squat_type: SquatType::Homograph,
        })
    }

    /// Bits / typo via symmetric deletion probing.
    ///
    /// Substitution (step a) and insertion (step c) both probe with the
    /// same one-char deletions of the label, so a single pass builds each
    /// deletion once in the stack scratch and serves both: substitution
    /// hits return immediately (highest precedence), the first insertion
    /// hit is remembered and only returned after the adjacent-swap probes,
    /// preserving the original bits → swap → insertion → omission order.
    fn check_edit_distance(&self, label: &str, stats: &mut ClassifyStats) -> Option<SquatMatch> {
        if !label.is_ascii() || label.is_empty() {
            return None;
        }
        debug_assert!(label.len() <= MAX_LABEL);
        let bytes = label.as_bytes();
        let mut scratch = [0u8; MAX_LABEL + 1];
        let mut insertion_hit: Option<BrandId> = None;

        // (a) + (c): delete char i once; probe the deletion index for a
        // same-position brand deletion (substitution at i → bits if the two
        // bytes differ by one bit) and the label index for an exact brand
        // (insertion of i).
        for i in 0..bytes.len() {
            let n = bytes.len() - 1;
            scratch[..i].copy_from_slice(&bytes[..i]);
            scratch[i..n].copy_from_slice(&bytes[i + 1..]);
            stats.allocations_avoided += 2; // one String per step, twice
            let probe = std::str::from_utf8(&scratch[..n]).expect("ascii");
            stats.probes += 1;
            if let Some(hits) = self.deletions.get(probe) {
                for &(id, pos) in hits {
                    // Keys of equal length imply brand.len() == label.len(),
                    // so only the deleted position needs to match.
                    if pos == i {
                        let brand = self.brand_labels[id].as_bytes();
                        debug_assert_eq!(brand.len(), label.len());
                        if (bytes[i] ^ brand[i]).count_ones() == 1 {
                            return Some(SquatMatch {
                                brand: id,
                                squat_type: SquatType::Bits,
                            });
                        }
                    }
                }
            }
            if insertion_hit.is_none() {
                stats.probes += 1;
                insertion_hit = self.labels.get(probe).copied();
            }
        }
        // (b) Adjacent swap: transpose each pair in place and look up.
        scratch[..bytes.len()].copy_from_slice(bytes);
        for i in 0..bytes.len().saturating_sub(1) {
            if bytes[i] == bytes[i + 1] {
                continue;
            }
            scratch.swap(i, i + 1);
            stats.allocations_avoided += 1;
            stats.probes += 1;
            let s = std::str::from_utf8(&scratch[..bytes.len()]).expect("ascii");
            if let Some(&id) = self.labels.get(s) {
                return Some(SquatMatch {
                    brand: id,
                    squat_type: SquatType::Typo,
                });
            }
            scratch.swap(i, i + 1);
        }
        // (c) Insertion (label is brand + 1 char), found during the merged
        //     deletion pass above; swap outranks it, so it returns here.
        if let Some(id) = insertion_hit {
            return Some(SquatMatch {
                brand: id,
                squat_type: SquatType::Typo,
            });
        }
        // (d) Omission (label is brand - 1 char): the label appears in the
        //     brand deletion index.
        stats.probes += 1;
        if let Some(hits) = self.deletions.get(label) {
            if let Some(&(id, _)) = hits.first() {
                return Some(SquatMatch {
                    brand: id,
                    squat_type: SquatType::Typo,
                });
            }
        }
        None
    }

    /// Combo: hyphen-separated tokens containing the brand. Probes reuse
    /// subslices of the label, so this step never allocated to begin with.
    ///
    /// Two passes: exact token matches across *all* tokens run before any
    /// affix probing, so `service-paypal` attributes to `paypal` (an exact
    /// token) rather than to a brand that happens to be an affix of an
    /// earlier token (`vice` inside `service`).
    fn check_combo(&self, label: &str, stats: &mut ClassifyStats) -> Option<SquatMatch> {
        if !label.contains('-') || !label.is_ascii() {
            return None;
        }
        // Pass 1: exact token match, all tokens.
        for token in label.split('-') {
            if token.len() < 2 {
                continue;
            }
            stats.probes += 1;
            if let Some(&id) = self.labels.get(token) {
                return Some(SquatMatch {
                    brand: id,
                    squat_type: SquatType::Combo,
                });
            }
        }
        // Pass 2: token starts or ends with a brand label. Affixes >= 4
        // chars match unconditionally; shorter brand affixes ("adp" in
        // "adpfreight", "bt" in "btpay") are accepted only when the rest of
        // the token is a known combo word, which keeps generic two-letter
        // sequences inside random words from matching.
        for token in label.split('-') {
            if token.len() < 2 {
                continue;
            }
            for cut in (4..token.len()).rev() {
                stats.probes += 2;
                if let Some(&id) = self.labels.get(&token[..cut]) {
                    return Some(SquatMatch {
                        brand: id,
                        squat_type: SquatType::Combo,
                    });
                }
                if let Some(&id) = self.labels.get(&token[token.len() - cut..]) {
                    return Some(SquatMatch {
                        brand: id,
                        squat_type: SquatType::Combo,
                    });
                }
            }
            for cut in (2..token.len().min(4)).rev() {
                stats.probes += 2;
                if let Some(&id) = self.labels.get(&token[..cut]) {
                    if self.combo_words.contains(&token[cut..]) {
                        return Some(SquatMatch {
                            brand: id,
                            squat_type: SquatType::Combo,
                        });
                    }
                }
                if let Some(&id) = self.labels.get(&token[token.len() - cut..]) {
                    if self.combo_words.contains(&token[..token.len() - cut]) {
                        return Some(SquatMatch {
                            brand: id,
                            squat_type: SquatType::Combo,
                        });
                    }
                }
            }
        }
        None
    }

    /// The label of brand `id` (dense `Vec` index; used by reporting code).
    pub fn brand_label_of(&self, id: BrandId) -> &str {
        &self.brand_labels[id]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::brand::BrandRegistry;

    fn detector() -> (BrandRegistry, SquatDetector) {
        let reg = BrandRegistry::with_size(30);
        let det = SquatDetector::new(&reg);
        (reg, det)
    }

    fn classify(det: &SquatDetector, s: &str) -> Option<SquatType> {
        det.classify(&DomainName::parse(s).unwrap())
            .map(|m| m.squat_type)
    }

    #[test]
    fn table1_examples_classified() {
        let (_reg, det) = detector();
        assert_eq!(classify(&det, "faceb00k.pw"), Some(SquatType::Homograph));
        assert_eq!(
            classify(&det, "xn--fcebook-8va.com"),
            Some(SquatType::Homograph)
        );
        assert_eq!(classify(&det, "facebnok.tk"), Some(SquatType::Bits));
        assert_eq!(classify(&det, "facebo0ok.com"), Some(SquatType::Typo));
        assert_eq!(classify(&det, "fcaebook.org"), Some(SquatType::Typo));
        assert_eq!(classify(&det, "facebook-story.de"), Some(SquatType::Combo));
        assert_eq!(classify(&det, "facebook.audi"), Some(SquatType::WrongTld));
    }

    #[test]
    fn brand_itself_is_not_squatting() {
        let (_reg, det) = detector();
        assert_eq!(classify(&det, "facebook.com"), None);
        assert_eq!(classify(&det, "paypal.com"), None);
    }

    #[test]
    fn unrelated_domains_pass() {
        let (_reg, det) = detector();
        assert_eq!(classify(&det, "example.com"), None);
        assert_eq!(classify(&det, "winterpillow.net"), None);
        assert_eq!(classify(&det, "random-hyphen-words.org"), None);
    }

    #[test]
    fn matched_brand_is_correct() {
        let (reg, det) = detector();
        let m = det
            .classify(&DomainName::parse("goofle.com.ua").unwrap())
            .unwrap();
        assert_eq!(reg.get(m.brand).unwrap().label, "google");
        assert_eq!(m.squat_type, SquatType::Bits);
    }

    #[test]
    fn brand_label_of_matches_registry() {
        let (reg, det) = detector();
        for b in reg.brands() {
            assert_eq!(det.brand_label_of(b.id), b.label);
        }
    }

    #[test]
    fn subdomains_are_ignored() {
        let (_reg, det) = detector();
        // mail.google-app.de → combo on google (paper example).
        assert_eq!(classify(&det, "mail.google-app.de"), Some(SquatType::Combo));
    }

    #[test]
    fn combo_fused_tokens() {
        let (reg, det) = detector();
        let m = det
            .classify(&DomainName::parse("go-uberfreight.com").unwrap())
            .unwrap();
        assert_eq!(reg.get(m.brand).unwrap().label, "uber");
        assert_eq!(m.squat_type, SquatType::Combo);
        // live-microsoftsupport.com (Fig 14c).
        let m = det
            .classify(&DomainName::parse("live-microsoftsupport.com").unwrap())
            .unwrap();
        assert_eq!(reg.get(m.brand).unwrap().label, "microsoft");
    }

    #[test]
    fn typo_variants_by_op() {
        let (_reg, det) = detector();
        assert_eq!(classify(&det, "facebok.tk"), Some(SquatType::Typo)); // omission
        assert_eq!(classify(&det, "faceboook.top"), Some(SquatType::Typo)); // repetition
        assert_eq!(classify(&det, "faecbook.com"), Some(SquatType::Typo)); // swap
    }

    #[test]
    fn homograph_precedes_typo_for_digit_swaps() {
        let (_reg, det) = detector();
        // goog1e: 1-for-l — confusable substitution, same length.
        assert_eq!(classify(&det, "goog1e.nl"), Some(SquatType::Homograph));
        // you5ube: paper Table 10 calls it typo, we classify 5→t… 5 is not
        // a confusable of t, and it's a substitution (not ins/del/swap) and
        // not one bit — so our orthogonal rules say None. Verify it doesn't
        // crash and returns something sensible.
        let r = classify(&det, "you5ube.com");
        assert!(r.is_none() || r == Some(SquatType::Typo));
    }

    #[test]
    fn swap_precedes_insertion() {
        // A label that is simultaneously an adjacent swap of one brand form
        // and an insertion over another must resolve as the swap (step b
        // outranks step c even though insertions are now detected during
        // the merged deletion pass).
        let (_reg, det) = detector();
        assert_eq!(classify(&det, "faecbook.com"), Some(SquatType::Typo));
    }

    #[test]
    fn stats_count_probes_for_misses() {
        let (_reg, det) = detector();
        let mut stats = ClassifyStats::default();
        let d = DomainName::parse("winterpillow.net").unwrap();
        assert!(det.classify_with_stats(&d, &mut stats).is_none());
        // At minimum the exact lookup plus the per-character deletion and
        // swap probes ran.
        assert!(stats.probes as usize > "winterpillow".len());
        assert!(stats.allocations_avoided > 0);
    }

    #[test]
    fn stats_merge_accumulates() {
        let mut a = ClassifyStats {
            probes: 3,
            allocations_avoided: 2,
        };
        let b = ClassifyStats {
            probes: 5,
            allocations_avoided: 7,
        };
        a.merge(&b);
        assert_eq!(
            a,
            ClassifyStats {
                probes: 8,
                allocations_avoided: 9
            }
        );
    }

    #[test]
    fn wrong_tld_over_multi_suffix() {
        let (_reg, det) = detector();
        assert_eq!(classify(&det, "google.com.ua"), Some(SquatType::WrongTld));
    }

    #[test]
    fn generated_candidates_are_detected_as_their_type() {
        use crate::gen::{generate_all, GenBudget};
        let reg = BrandRegistry::with_size(20);
        let det = SquatDetector::new(&reg);
        let mut total = 0;
        let mut matched = 0;
        for brand in reg.brands() {
            for c in generate_all(
                brand,
                GenBudget {
                    homograph: 20,
                    bits: 20,
                    typo: 20,
                    combo: 20,
                    wrong_tld: 5,
                },
            ) {
                total += 1;
                if let Some(m) = det.classify(&c.domain) {
                    // Type may legitimately differ near precedence borders
                    // (e.g. a typo-insert that is also a brand's deletion);
                    // brand must be plausible though.
                    let _ = m;
                    matched += 1;
                }
            }
        }
        let rate = matched as f64 / total as f64;
        assert!(
            rate > 0.95,
            "detector recall on generated candidates too low: {rate} ({matched}/{total})"
        );
    }

    #[test]
    fn cross_type_consistency_on_clean_candidates() {
        use crate::gen::{generate_all, GenBudget};
        // For brands whose labels are far apart, generated type == detected type.
        let reg = BrandRegistry::with_size(8);
        let det = SquatDetector::new(&reg);
        let brand = reg.by_label("santander").unwrap();
        for c in generate_all(brand, GenBudget::default()) {
            if let Some(m) = det.classify(&c.domain) {
                assert_eq!(m.brand, brand.id, "{} matched wrong brand", c.domain);
            }
        }
    }
}
