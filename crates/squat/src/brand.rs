//! The 702-brand registry (paper §3.1 "Brand Selection").
//!
//! The paper selects the Alexa top-50 of 17 categories (850 domains), adds
//! the 204 PhishTank target brands, and merges duplicates to 702 unique
//! brand domains. We embed the brands the paper names explicitly (targets
//! of its tables and case studies) and synthesize the remainder
//! deterministically from syllable lists so the registry always has exactly
//! 702 entries with the paper's category structure.

use crate::words::{BRAND_PREFIX, BRAND_SUFFIX};
use squatphi_domain::DomainName;

/// Index of a brand inside a [`BrandRegistry`].
pub type BrandId = usize;

/// The 17 Alexa categories the paper samples from, plus a pseudo-category
/// for brands that came only from PhishTank's target list.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Category {
    /// Alexa "Business".
    Business,
    /// Alexa "Computers".
    Computers,
    /// Alexa "Finance" (banks, payments).
    Finance,
    /// Alexa "Games".
    Games,
    /// Alexa "Health".
    Health,
    /// Alexa "Home".
    Home,
    /// Alexa "Kids and Teens".
    Kids,
    /// Alexa "News".
    News,
    /// Alexa "Recreation".
    Recreation,
    /// Alexa "Reference".
    Reference,
    /// Alexa "Regional".
    Regional,
    /// Alexa "Science".
    Science,
    /// Alexa "Shopping".
    Shopping,
    /// Alexa "Society".
    Society,
    /// Alexa "Sports".
    Sports,
    /// Alexa "Adult".
    Adult,
    /// Alexa "Arts".
    Arts,
    /// Brand only present on PhishTank's target list.
    PhishTankOnly,
}

impl Category {
    /// All 17 Alexa categories (excludes [`Category::PhishTankOnly`]).
    pub const ALEXA: [Category; 17] = [
        Category::Business,
        Category::Computers,
        Category::Finance,
        Category::Games,
        Category::Health,
        Category::Home,
        Category::Kids,
        Category::News,
        Category::Recreation,
        Category::Reference,
        Category::Regional,
        Category::Science,
        Category::Shopping,
        Category::Society,
        Category::Sports,
        Category::Adult,
        Category::Arts,
    ];
}

/// A monitored brand: a registrable domain plus metadata.
#[derive(Debug, Clone)]
pub struct Brand {
    /// Stable id (index into the registry).
    pub id: BrandId,
    /// The brand's core label, e.g. `facebook`.
    pub label: String,
    /// The canonical domain, e.g. `facebook.com`.
    pub domain: DomainName,
    /// Alexa category (or PhishTank-only).
    pub category: Category,
    /// Synthetic Alexa global rank (1 = most popular). Determines phishing
    /// attractiveness in the simulation.
    pub alexa_rank: u32,
    /// Whether the brand is on PhishTank's target-brand list (204 brands).
    pub phishtank_target: bool,
}

/// Brands the paper names explicitly, with their paper roles.
///
/// `(label, tld, category, phishtank_target)` — ordering matters: it fixes
/// `BrandId`s and therefore every downstream deterministic draw.
const NAMED_BRANDS: &[(&str, &str, Category, bool)] = &[
    // Top-8 PhishTank brands (Table 5).
    ("paypal", "com", Category::Finance, true),
    ("facebook", "com", Category::Society, true),
    ("microsoft", "com", Category::Computers, true),
    ("santander", "com", Category::Finance, true),
    ("google", "com", Category::Computers, true),
    ("ebay", "com", Category::Shopping, true),
    ("adobe", "com", Category::Computers, true),
    ("dropbox", "com", Category::Computers, true),
    // Table 9 / Figure 13 / case-study brands.
    ("apple", "com", Category::Computers, true),
    ("bitcoin", "org", Category::Finance, true),
    ("uber", "com", Category::Business, true),
    ("youtube", "com", Category::Arts, true),
    ("citi", "com", Category::Finance, true),
    ("twitter", "com", Category::Society, true),
    ("github", "com", Category::Computers, false),
    ("adp", "com", Category::Business, true),
    ("amazon", "com", Category::Shopping, true),
    ("ford", "com", Category::Home, false),
    ("vice", "com", Category::News, false),
    ("porn", "com", Category::Adult, false),
    ("bt", "com", Category::Computers, false),
    // Redirect-analysis brands (Tables 3 and 4).
    ("shutterfly", "com", Category::Shopping, false),
    ("alliancebank", "com", Category::Finance, false),
    ("rabobank", "com", Category::Finance, true),
    ("priceline", "com", Category::Recreation, false),
    ("carfax", "com", Category::Shopping, false),
    ("zocdoc", "com", Category::Health, false),
    ("comerica", "com", Category::Finance, true),
    ("verizon", "com", Category::Computers, true),
    // Figure 13 long-tail brands.
    ("archive", "org", Category::Reference, false),
    ("europa", "eu", Category::Regional, false),
    ("cisco", "com", Category::Computers, false),
    ("discover", "com", Category::Finance, true),
    ("healthcare", "gov", Category::Health, false),
    ("samsung", "com", Category::Computers, false),
    ("intel", "com", Category::Computers, false),
    ("people", "com", Category::News, false),
    ("smile", "com", Category::Business, false),
    ("history", "com", Category::Reference, false),
    ("target", "com", Category::Shopping, false),
    ("android", "com", Category::Computers, false),
    ("compass", "com", Category::Business, false),
    ("poste", "it", Category::Finance, true),
    ("realtor", "com", Category::Home, false),
    ("usda", "gov", Category::Science, false),
    ("visa", "com", Category::Finance, true),
    ("patient", "info", Category::Health, false),
    ("arena", "com", Category::Games, false),
    ("mint", "com", Category::Finance, false),
    ("xbox", "com", Category::Games, false),
    ("discovery", "com", Category::Science, false),
    ("cams", "com", Category::Adult, false),
    ("slate", "com", Category::News, false),
    ("weather", "com", Category::News, false),
    ("delta", "com", Category::Recreation, false),
    ("blogger", "com", Category::Arts, false),
    ("chase", "com", Category::Finance, true),
    ("battle", "net", Category::Games, false),
    ("pandora", "com", Category::Arts, false),
    ("nets53", "com", Category::Finance, false),
    ("cnet", "com", Category::Computers, false),
    ("skyscanner", "com", Category::Recreation, false),
    ("motorsport", "com", Category::Sports, false),
    ("bing", "com", Category::Computers, false),
    ("sina", "com", Category::News, false),
    ("dict", "cc", Category::Reference, false),
    ("bbb", "org", Category::Business, false),
    ("tsb", "co.uk", Category::Finance, true),
    ("cnn", "com", Category::News, false),
    ("nike", "com", Category::Shopping, false),
    ("gq", "com", Category::Arts, false),
    ("pinterest", "com", Category::Society, false),
    ("msn", "com", Category::News, false),
    ("chess", "com", Category::Games, false),
    ("nyu", "edu_placeholder", Category::Reference, false),
    ("nationwide", "com", Category::Finance, true),
    ("creditagricole", "fr", Category::Finance, true),
    ("cua", "com", Category::Finance, false),
    ("fifa", "com", Category::Sports, false),
    ("columbia", "com", Category::Shopping, false),
    ("tsn", "ca", Category::Sports, false),
    ("bodybuilding", "com", Category::Sports, false),
    // More PhishTank-style targets to thicken the finance/payments mix.
    ("wellsfargo", "com", Category::Finance, true),
    ("bankofamerica", "com", Category::Finance, true),
    ("hsbc", "com", Category::Finance, true),
    ("barclays", "co.uk", Category::Finance, true),
    ("netflix", "com", Category::Arts, true),
    ("instagram", "com", Category::Society, true),
    ("linkedin", "com", Category::Business, true),
    ("whatsapp", "com", Category::Society, true),
    ("yahoo", "com", Category::Computers, true),
    ("alibaba", "com", Category::Shopping, true),
    ("steam", "com", Category::Games, true),
    ("spotify", "com", Category::Arts, false),
    ("airbnb", "com", Category::Recreation, true),
    ("booking", "com", Category::Recreation, true),
    ("walmart", "com", Category::Shopping, true),
    ("costco", "com", Category::Shopping, false),
    ("fedex", "com", Category::Business, true),
    ("usps", "com", Category::Business, true),
    ("dhl", "com", Category::Business, true),
    ("americanexpress", "com", Category::Finance, true),
    ("mastercard", "com", Category::Finance, false),
    ("coinbase", "com", Category::Finance, true),
    ("blockchain", "com", Category::Finance, true),
    ("kraken", "com", Category::Finance, false),
    ("etrade", "com", Category::Finance, false),
    ("fidelity", "com", Category::Finance, false),
    ("vanguard", "com", Category::Finance, false),
    ("zocalo", "com", Category::Regional, false),
    ("telegram", "org", Category::Society, false),
    ("slack", "com", Category::Business, false),
    ("zoom", "us", Category::Business, false),
    ("salesforce", "com", Category::Business, false),
    ("oracle", "com", Category::Computers, false),
    ("ibm", "com", Category::Computers, false),
    ("nvidia", "com", Category::Computers, false),
    ("tesla", "com", Category::Home, false),
    ("toyota", "com", Category::Home, false),
    ("honda", "com", Category::Home, false),
    ("espn", "com", Category::Sports, false),
    ("nba", "com", Category::Sports, false),
    ("nfl", "com", Category::Sports, false),
    ("wikipedia", "org", Category::Reference, false),
    ("reddit", "com", Category::Society, false),
    ("twitch", "tv", Category::Games, false),
    ("roblox", "com", Category::Kids, false),
    ("minecraft", "net", Category::Kids, false),
    ("disney", "com", Category::Kids, false),
    ("nasa", "gov", Category::Science, false),
    ("nih", "gov", Category::Health, false),
    ("webmd", "com", Category::Health, false),
    ("mayoclinic", "org", Category::Health, false),
];

/// The number of brands after the paper's merge step.
pub const BRAND_COUNT: usize = 702;

/// Number of PhishTank target brands (the paper's 204).
pub const PHISHTANK_TARGETS: usize = 204;

/// The registry of the 702 monitored brands.
#[derive(Debug, Clone)]
pub struct BrandRegistry {
    brands: Vec<Brand>,
}

impl Default for BrandRegistry {
    fn default() -> Self {
        Self::paper()
    }
}

impl BrandRegistry {
    /// Builds the paper's 702-brand registry: every named brand first
    /// (fixed ids), then deterministic synthetic fillers round-robining
    /// the 17 Alexa categories. Exactly [`PHISHTANK_TARGETS`] brands carry
    /// the `phishtank_target` flag.
    pub fn paper() -> Self {
        Self::with_size(BRAND_COUNT)
    }

    /// Builds a reduced registry (first `n` brands) for tests.
    pub fn with_size(n: usize) -> Self {
        let mut brands = Vec::with_capacity(n);
        for (label, tld, category, pt) in NAMED_BRANDS.iter().take(n) {
            // `nyu.edu` — our TLD registry has no edu; keep the brand under
            // a suffix we model instead (the label is what matters).
            let tld = if *tld == "edu_placeholder" {
                "org"
            } else {
                tld
            };
            let id = brands.len();
            brands.push(Brand {
                id,
                label: (*label).to_string(),
                domain: DomainName::from_parts(label, tld)
                    .expect("named brand must be a valid domain"),
                category: *category,
                alexa_rank: (id as u32 + 1) * 7 % 997 + 1,
                phishtank_target: *pt,
            });
        }
        // Synthesize the remainder: prefix+suffix pairs, skipping collisions
        // with named labels.
        let named: std::collections::HashSet<&str> =
            NAMED_BRANDS.iter().map(|(l, ..)| *l).collect();
        let tld_cycle = ["com", "com", "com", "net", "org", "io", "co", "com"];
        let mut k = 0usize;
        let mut seen: std::collections::HashSet<String> = std::collections::HashSet::new();
        while brands.len() < n {
            // Enumerate the full prefix×suffix grid in a shuffled-looking
            // but exhaustive order (row stride 7 is co-prime with the grid
            // walk because we advance the row every full column pass).
            let pi = (k * 7 + k / BRAND_SUFFIX.len()) % BRAND_PREFIX.len();
            let si = k % BRAND_SUFFIX.len();
            k += 1;
            assert!(
                k <= BRAND_PREFIX.len() * BRAND_SUFFIX.len() * 8,
                "brand synthesis space exhausted"
            );
            let label = format!("{}{}", BRAND_PREFIX[pi], BRAND_SUFFIX[si]);
            if named.contains(label.as_str()) || !seen.insert(label.clone()) {
                continue;
            }
            let id = brands.len();
            let category = Category::ALEXA[id % Category::ALEXA.len()];
            let pt_named = NAMED_BRANDS.iter().filter(|(_, _, _, p)| *p).count();
            let phishtank_target = id < NAMED_BRANDS.len().max(1)
                || (pt_named + (id - NAMED_BRANDS.len())) < PHISHTANK_TARGETS;
            brands.push(Brand {
                id,
                label: label.clone(),
                domain: DomainName::from_parts(&label, tld_cycle[id % tld_cycle.len()])
                    .expect("synthesized brand must be valid"),
                category,
                alexa_rank: (id as u32 * 37) % 4999 + 50,
                phishtank_target: phishtank_target && id >= NAMED_BRANDS.len(),
            });
        }
        // Restore the named brands' own flags (the loop above only handles
        // synthetic ids).
        for (i, (_, _, _, pt)) in NAMED_BRANDS.iter().take(n).enumerate() {
            brands[i].phishtank_target = *pt;
        }
        BrandRegistry { brands }
    }

    /// All brands, id-ordered.
    pub fn brands(&self) -> &[Brand] {
        &self.brands
    }

    /// Number of brands.
    pub fn len(&self) -> usize {
        self.brands.len()
    }

    /// Whether the registry is empty.
    pub fn is_empty(&self) -> bool {
        self.brands.is_empty()
    }

    /// Brand by id.
    pub fn get(&self, id: BrandId) -> Option<&Brand> {
        self.brands.get(id)
    }

    /// Brand by label (linear scan — use [`crate::SquatDetector`] for bulk
    /// lookups).
    pub fn by_label(&self, label: &str) -> Option<&Brand> {
        self.brands.iter().find(|b| b.label == label)
    }

    /// The PhishTank target subset.
    pub fn phishtank_targets(&self) -> impl Iterator<Item = &Brand> {
        self.brands.iter().filter(|b| b.phishtank_target)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_registry_has_702_brands() {
        let r = BrandRegistry::paper();
        assert_eq!(r.len(), 702);
    }

    #[test]
    fn labels_are_unique() {
        let r = BrandRegistry::paper();
        let mut labels: Vec<&str> = r.brands().iter().map(|b| b.label.as_str()).collect();
        labels.sort_unstable();
        let before = labels.len();
        labels.dedup();
        assert_eq!(labels.len(), before, "duplicate brand labels");
    }

    #[test]
    fn phishtank_target_count_matches_paper() {
        let r = BrandRegistry::paper();
        assert_eq!(r.phishtank_targets().count(), PHISHTANK_TARGETS);
    }

    #[test]
    fn named_brands_present_with_fixed_ids() {
        let r = BrandRegistry::paper();
        assert_eq!(r.get(0).unwrap().label, "paypal");
        assert_eq!(r.get(1).unwrap().label, "facebook");
        assert_eq!(r.by_label("google").unwrap().domain.as_str(), "google.com");
        assert_eq!(
            r.by_label("facebook").unwrap().domain.as_str(),
            "facebook.com"
        );
        assert_eq!(r.by_label("tsb").unwrap().domain.suffix(), "co.uk");
    }

    #[test]
    fn deterministic_construction() {
        let a = BrandRegistry::paper();
        let b = BrandRegistry::paper();
        for (x, y) in a.brands().iter().zip(b.brands()) {
            assert_eq!(x.label, y.label);
            assert_eq!(x.alexa_rank, y.alexa_rank);
        }
    }

    #[test]
    fn reduced_registry_for_tests() {
        let r = BrandRegistry::with_size(10);
        assert_eq!(r.len(), 10);
        assert_eq!(r.get(0).unwrap().label, "paypal");
    }

    #[test]
    fn all_domains_valid_and_match_labels() {
        let r = BrandRegistry::paper();
        for b in r.brands() {
            assert_eq!(
                b.domain.core_label(),
                b.label,
                "label/domain mismatch for {}",
                b.label
            );
        }
    }
}
