//! The unified compact fingerprint index behind [`SquatDetector`].
//!
//! The legacy detector probed `HashMap<String, _>` tables: every probe
//! (one-char deletion, adjacent swap, skeleton fold, affix) re-hashed an
//! O(len) string with SipHash, so one record cost ~39 string hashes —
//! ~2 µs per record, which capped the scan near 550k records/sec no
//! matter how many threads ran. This module replaces the string keys with
//! 64-bit **rolling polynomial fingerprints**:
//!
//! * [`LabelHashes`] computes the prefix hashes of a label once (one pass,
//!   O(len)), after which the fingerprint of *any* probe variant — a
//!   deletion at position `i`, an adjacent transposition, a two-byte
//!   sequence fold, an affix `label[a..b]` — is O(1) arithmetic over the
//!   prefix array. No probe string is ever materialized on the hot path.
//! * [`FpTable`] stores the precompiled brand variants keyed by their
//!   fingerprint behind a **bit filter** (a power-of-two bitset sized at
//!   16 bits per entry). Benign labels — the overwhelming majority of a
//!   DNS snapshot — fail the filter on a single L1 load and never touch
//!   the backing map.
//! * Fingerprints can collide (they are mod-2⁶⁴ polynomial hashes, not
//!   cryptographic), so every filter-and-map hit is **verified against
//!   the stored key bytes** before it is believed. Collisions therefore
//!   cost one extra comparison; they can never change an answer. This is
//!   what keeps the new matcher byte-identical to the legacy detector
//!   (pinned by the `scan-diff` conformance oracle).
//!
//! [`SquatDetector`]: crate::SquatDetector

use std::collections::HashMap;
use std::hash::{BuildHasherDefault, Hasher};

/// Polynomial base. Odd so multiplication by it is a bijection mod 2⁶⁴;
/// the high bits come from the golden ratio to spread consecutive bytes.
const BASE: u64 = 0x9E37_79B9_7F4A_7C15 | 1;

/// `BASE^k` for `k ≤ 64` (a DNS label is at most 63 octets, and probe
/// variants never grow a label by more than one byte).
const POW: [u64; 65] = {
    let mut p = [1u64; 65];
    let mut i = 1;
    while i < 65 {
        p[i] = p[i - 1].wrapping_mul(BASE);
        i += 1;
    }
    p
};

/// Fingerprint of an arbitrary byte string (cold paths: IDN decodes,
/// Unicode skeleton folds — anything already materialized).
#[inline]
pub(crate) fn fp(bytes: &[u8]) -> u64 {
    let mut h = 0u64;
    for &b in bytes {
        h = h.wrapping_mul(BASE).wrapping_add(b as u64);
    }
    h
}

/// Extends a fingerprint by one byte (incremental hashing while a fold is
/// being written into a stack scratch — one pass builds both).
#[inline]
pub(crate) fn fp_push(h: u64, b: u8) -> u64 {
    h.wrapping_mul(BASE).wrapping_add(b as u64)
}

/// Finalizer decoupling the polynomial structure from table/filter
/// indices (the low bits of a raw polynomial hash are biased).
#[inline]
fn mix(h: u64) -> u64 {
    let h = (h ^ (h >> 33)).wrapping_mul(0xFF51_AFD7_ED55_8CCD);
    h ^ (h >> 33)
}

/// Prefix fingerprints of one ASCII label: one O(len) pass, then every
/// probe variant's fingerprint in O(1).
pub(crate) struct LabelHashes {
    /// `prefix[i]` = fingerprint of `bytes[..i]`; `prefix[n]` is the whole
    /// label. A label is ≤ 63 octets so 64 slots always suffice.
    prefix: [u64; 64],
    n: usize,
}

impl LabelHashes {
    /// Builds the prefix array. `bytes.len()` must be ≤ 63 (enforced by
    /// `DomainName::parse` for every label that reaches the detector).
    #[inline]
    pub fn new(bytes: &[u8]) -> Self {
        debug_assert!(bytes.len() <= 63);
        let mut prefix = [0u64; 64];
        let mut h = 0u64;
        for (i, &b) in bytes.iter().enumerate() {
            h = h.wrapping_mul(BASE).wrapping_add(b as u64);
            prefix[i + 1] = h;
        }
        LabelHashes {
            prefix,
            n: bytes.len(),
        }
    }

    /// Fingerprint of the whole label.
    #[inline]
    pub fn full(&self) -> u64 {
        self.prefix[self.n & 63]
    }

    /// Fingerprint of `bytes[a..b]`. (Indices are masked to 63 — always a
    /// no-op under the length invariant — so the compiler can drop the
    /// bounds checks on this hot path.)
    #[inline]
    pub fn range(&self, a: usize, b: usize) -> u64 {
        debug_assert!(a <= b && b <= self.n);
        self.prefix[b & 63].wrapping_sub(self.prefix[a & 63].wrapping_mul(POW[(b - a) & 63]))
    }

    /// Suffix fingerprints (`fp(bytes[i..])` for every `i`), built in one
    /// O(len) pass when a caller is about to issue many deletion/swap
    /// probes: with them each such probe is a single multiply.
    pub fn suffixes(&self, bytes: &[u8]) -> SuffixHashes {
        debug_assert_eq!(bytes.len(), self.n);
        let mut suffix = [0u64; 64];
        let mut h = 0u64;
        for i in (0..bytes.len()).rev() {
            h = (bytes[i] as u64)
                .wrapping_mul(POW[(self.n - 1 - i) & 63])
                .wrapping_add(h);
            suffix[i & 63] = h;
        }
        SuffixHashes { suffix }
    }

    /// Fingerprint of the label with the byte at `i` deleted.
    #[inline]
    pub fn deletion(&self, i: usize, s: &SuffixHashes) -> u64 {
        debug_assert!(i < self.n);
        self.prefix[i & 63]
            .wrapping_mul(POW[(self.n - 1 - i) & 63])
            .wrapping_add(s.suffix[(i + 1) & 63])
    }

    /// Fingerprint of the label with bytes `i` and `i + 1` transposed.
    #[inline]
    pub fn swap(&self, i: usize, bytes: &[u8], s: &SuffixHashes) -> u64 {
        debug_assert!(i + 1 < self.n);
        let head = self.prefix[i & 63]
            .wrapping_mul(BASE)
            .wrapping_add(bytes[i + 1] as u64)
            .wrapping_mul(BASE)
            .wrapping_add(bytes[i] as u64);
        head.wrapping_mul(POW[(self.n - i - 2) & 63])
            .wrapping_add(s.suffix[(i + 2) & 63])
    }

    /// Fingerprint of the label with the two bytes at `pos` replaced by
    /// the single byte `target` (sequence folds: `rn` → `m`, …).
    #[inline]
    pub fn seq_fold(&self, pos: usize, target: u8) -> u64 {
        debug_assert!(pos + 2 <= self.n);
        self.range(0, pos)
            .wrapping_mul(BASE)
            .wrapping_add(target as u64)
            .wrapping_mul(POW[(self.n - pos - 2) & 63])
            .wrapping_add(self.range(pos + 2, self.n))
    }
}

/// Suffix fingerprints of a label (`suffix[i]` = `fp(bytes[i..])`;
/// `suffix[n]` stays 0, the fingerprint of the empty string). See
/// [`LabelHashes::suffixes`].
pub(crate) struct SuffixHashes {
    suffix: [u64; 64],
}

/// Pass-through hasher for `u64` fingerprint keys: the fingerprint *is*
/// the hash (finalized by [`mix`] so bucket indices are unbiased).
#[derive(Default)]
pub(crate) struct FpHasher(u64);

impl Hasher for FpHasher {
    #[inline]
    fn finish(&self) -> u64 {
        mix(self.0)
    }

    fn write(&mut self, bytes: &[u8]) {
        // Only u64 keys are ever hashed; fold defensively anyway.
        for &b in bytes {
            self.0 = self.0.rotate_left(8) ^ b as u64;
        }
    }

    #[inline]
    fn write_u64(&mut self, v: u64) {
        self.0 = v;
    }
}

/// A blocked Bloom filter over key fingerprints: each key sets two bits
/// inside a single 64-bit word, so a membership test is one cache-line
/// load regardless of table size, with a false-positive rate around
/// `(bits-per-word / 64)²` (~1.5% at the 16-bits-per-entry sizing) —
/// 4× sharper than the one-bit-per-key bitset it replaced for the same
/// memory and fewer loads.
#[derive(Debug)]
pub(crate) struct Filter {
    words: Box<[u64]>,
    /// `words.len() - 1`; the word count is a power of two.
    word_mask: u64,
}

impl Filter {
    /// Builds the filter from raw (un-mixed) key fingerprints, sized at
    /// ~16 filter bits per key.
    pub fn from_fps(fps: impl Iterator<Item = u64>, count: usize) -> Self {
        let words = (count.max(4) * 16 / 64).next_power_of_two();
        let mut f = Filter {
            words: vec![0u64; words].into_boxed_slice(),
            word_mask: words as u64 - 1,
        };
        for h in fps {
            let (w, bits) = f.slot(h);
            f.words[w] |= bits;
        }
        f
    }

    /// `(word index, two-bit mask)` for a fingerprint. One multiply
    /// (multiply-shift hashing: the *high* product bits are well mixed);
    /// word selection and both bit selections use disjoint high fields.
    /// This runs for every logical probe, so it is deliberately cheaper
    /// than the full [`mix`] finalizer the (rarely consulted) map uses.
    #[inline]
    fn slot(&self, h: u64) -> (usize, u64) {
        let m = h.wrapping_mul(0xFF51_AFD7_ED55_8CCD);
        let w = ((m >> 32) & self.word_mask) as usize;
        let bits = (1u64 << (m >> 58)) | (1u64 << ((m >> 52) & 63));
        (w, bits)
    }

    /// False means no key with this fingerprint was inserted.
    #[inline]
    pub fn maybe(&self, h: u64) -> bool {
        let (w, bits) = self.slot(h);
        self.words[w] & bits == bits
    }
}

/// Fingerprint → entries whose keys share it (collisions are kept,
/// verified at probe time; insertion order is preserved per bucket).
type Buckets<V> = HashMap<u64, Vec<(Box<str>, V)>, BuildHasherDefault<FpHasher>>;

/// A fingerprint-keyed variant table: bit filter in front, exact-key
/// verification behind. `V` is the payload (a brand id, or the ordered
/// `(brand, position)` entries of a shared deletion string).
pub(crate) struct FpTable<V> {
    /// Blocked Bloom filter over the key fingerprints.
    filter: Filter,
    map: Buckets<V>,
}

impl<V> std::fmt::Debug for FpTable<V> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FpTable")
            .field("keys", &self.map.values().map(Vec::len).sum::<usize>())
            .field("filter_bits", &(self.filter.words.len() * 64))
            .finish()
    }
}

impl<V> FpTable<V> {
    /// Builds the table from `(key, payload)` pairs. Keys must be unique
    /// (group multi-valued payloads before building); pair order is
    /// preserved within a colliding fingerprint bucket.
    pub fn build(items: Vec<(String, V)>) -> Self {
        let mut map: Buckets<V> =
            HashMap::with_capacity_and_hasher(items.len(), BuildHasherDefault::default());
        let count = items.len();
        for (key, v) in items {
            let h = fp(key.as_bytes());
            map.entry(h).or_default().push((key.into_boxed_str(), v));
        }
        let filter = Filter::from_fps(map.keys().copied(), count);
        FpTable { filter, map }
    }

    /// The distinct key fingerprints in the table (for building union
    /// filters across several tables).
    pub fn fingerprints(&self) -> impl Iterator<Item = u64> + '_ {
        self.map.keys().copied()
    }

    /// The filter probe: false means no key in the table can have this
    /// fingerprint (one L1 load; this is what most benign probes cost).
    #[inline]
    pub fn maybe(&self, h: u64) -> bool {
        self.filter.maybe(h)
    }

    /// Looks the fingerprint up and verifies candidate keys with
    /// `verify` (exact byte comparison against the probe variant the
    /// caller is testing). Returns the first verified payload.
    #[inline]
    pub fn get(&self, h: u64, verify: impl Fn(&str) -> bool) -> Option<&V> {
        self.map
            .get(&h)?
            .iter()
            .find(|(k, _)| verify(k))
            .map(|(_, v)| v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fp_matches_label_hashes_full() {
        for s in ["", "a", "facebook", "go-uberfreight"] {
            assert_eq!(fp(s.as_bytes()), LabelHashes::new(s.as_bytes()).full());
        }
    }

    #[test]
    fn deletion_fingerprints_match_materialized() {
        let s = b"facebook";
        let h = LabelHashes::new(s);
        let suf = h.suffixes(s);
        for i in 0..s.len() {
            let mut d = s.to_vec();
            d.remove(i);
            assert_eq!(h.deletion(i, &suf), fp(&d), "deletion at {i}");
        }
    }

    #[test]
    fn swap_fingerprints_match_materialized() {
        let s = b"paypal";
        let h = LabelHashes::new(s);
        let suf = h.suffixes(s);
        for i in 0..s.len() - 1 {
            let mut d = s.to_vec();
            d.swap(i, i + 1);
            assert_eq!(h.swap(i, s, &suf), fp(&d), "swap at {i}");
        }
    }

    #[test]
    fn seq_fold_fingerprints_match_materialized() {
        let s = b"fernrnart";
        let h = LabelHashes::new(s);
        for pos in [3, 5] {
            let mut d = s.to_vec();
            d[pos] = b'm';
            d.remove(pos + 1);
            assert_eq!(h.seq_fold(pos, b'm'), fp(&d), "fold at {pos}");
        }
    }

    #[test]
    fn range_fingerprints_match_materialized() {
        let s = b"go-uberfreight";
        let h = LabelHashes::new(s);
        for a in 0..s.len() {
            for b in a..=s.len() {
                assert_eq!(h.range(a, b), fp(&s[a..b]), "range {a}..{b}");
            }
        }
    }

    #[test]
    fn table_probes_verify_keys() {
        let table = FpTable::build(vec![
            ("facebook".to_string(), 1usize),
            ("paypal".to_string(), 2),
        ]);
        let h = fp(b"facebook");
        assert!(table.maybe(h));
        assert_eq!(table.get(h, |k| k == "facebook"), Some(&1));
        // Same fingerprint, failing verification: no answer.
        assert_eq!(table.get(h, |k| k == "faceb00k"), None);
        // A fingerprint that is not in the table misses the filter (with
        // overwhelming probability for a 64-entry filter and two keys).
        assert!(
            !table.maybe(fp(b"winterpillow")) || table.get(fp(b"winterpillow"), |_| true).is_none()
        );
    }

    #[test]
    fn table_preserves_bucket_order() {
        // Two payloads under one key are grouped by the caller; per-key
        // entries keep their insertion order even through collisions.
        let table = FpTable::build(vec![("abc".to_string(), vec![(1usize, 0usize), (2, 1)])]);
        let h = fp(b"abc");
        assert_eq!(
            table.get(h, |k| k == "abc"),
            Some(&vec![(1usize, 0usize), (2, 1)])
        );
    }
}
