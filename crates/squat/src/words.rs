//! Word lists shared by the brand registry and the combo generator.

/// Affix words observed in real combo-squatting (paper Table 10 uses
/// `-story`, `go-`, `get-`, `-prizeuk`, `-cash`, `-learning`, `-selling`,
/// `-auction`, `live-`, `-gostore`, `mobile-`, `-grants`, `-sigin`,
/// `securemail-`, `formateurs-`, `-freight`, `drive…`). Combo squatting
/// is the cheapest type to register, which is why it dominates (56%).
pub const COMBO_WORDS: &[&str] = &[
    "account",
    "alert",
    "app",
    "auction",
    "billing",
    "cash",
    "center",
    "check",
    "cloud",
    "customer",
    "deals",
    "drive",
    "extra",
    "freight",
    "get",
    "go",
    "gostore",
    "grants",
    "help",
    "hub",
    "info",
    "learning",
    "live",
    "login",
    "mail",
    "mobile",
    "my",
    "new",
    "now",
    "official",
    "online",
    "pay",
    "portal",
    "prize",
    "prizeuk",
    "pro",
    "promo",
    "safe",
    "secure",
    "securemail",
    "security",
    "selling",
    "service",
    "shop",
    "sigin",
    "signin",
    "site",
    "store",
    "story",
    "support",
    "team",
    "update",
    "verify",
    "vip",
    "web",
    "world",
];

/// Generic English-ish syllables used to synthesize the long tail of the
/// 702-brand registry deterministically (the paper merges Alexa top-50 per
/// category with PhishTank target brands; we embed the brands the paper
/// names and synthesize plausible fillers for the rest).
pub const BRAND_PREFIX: &[&str] = &[
    "acme", "aero", "alpha", "apex", "aqua", "astro", "atlas", "aura", "auto", "avid", "axis",
    "beam", "blue", "bolt", "bright", "byte", "cape", "cedar", "chart", "citrus", "cobalt",
    "coral", "craft", "crest", "dash", "data", "delta", "dyna", "echo", "ember", "epic", "ever",
    "fable", "fern", "flux", "forge", "fox", "gale", "gem", "glen", "grand", "grove", "halo",
    "harbor", "haven", "helio", "hyper", "iron", "ivy", "jade", "jet", "juno", "keen", "kite",
    "lark", "ledge", "lime", "luna", "lyric", "maple", "merit", "mesa", "mint", "moss", "nimbus",
    "noble", "north", "nova", "oak", "ocean", "omni", "onyx", "opal", "orbit", "pearl", "pine",
    "pixel", "plume", "polar", "prime", "quartz", "quest", "rapid", "raven", "reef", "ridge",
    "river", "rocket", "sable", "sage", "scout", "shore", "sierra", "silver", "sky", "solar",
    "sonic", "spark", "sprout", "star", "stone", "storm", "summit", "swift", "terra", "tide",
    "topaz", "trail", "true", "ultra", "umber", "union", "urban", "vale", "vast", "vega", "velvet",
    "vertex", "vivid", "wave", "west", "willow", "wind", "wren", "zen", "zephyr", "zinc",
];

/// Suffix syllables for synthesized brands.
pub const BRAND_SUFFIX: &[&str] = &[
    "bank", "base", "bay", "board", "books", "box", "cart", "cast", "chat", "check", "circle",
    "city", "club", "coin", "corp", "dash", "deck", "desk", "dock", "drop", "feed", "field",
    "flow", "forge", "front", "fund", "gate", "grid", "group", "health", "house", "hub", "kit",
    "lab", "lane", "layer", "line", "link", "list", "loop", "mark", "mart", "media", "mesh",
    "mint", "nest", "net", "node", "pad", "page", "path", "pay", "peak", "play", "point", "port",
    "post", "press", "pulse", "rank", "reach", "ring", "road", "scan", "set", "share", "shelf",
    "shift", "shop", "side", "sign", "space", "spark", "sphere", "spot", "stack", "stage", "stash",
    "station", "stream", "studio", "sync", "tab", "table", "tag", "task", "team", "tech", "trade",
    "track", "vault", "verse", "view", "ware", "watch", "wire", "works", "yard", "zone",
];

/// Tokens used when synthesizing benign haystack domains in the DNS
/// snapshot (see `squatphi-dnsdb`): mundane dictionary material that should
/// *not* trigger the squat detector.
pub const BENIGN_WORDS: &[&str] = &[
    "almond",
    "anchor",
    "antique",
    "arcade",
    "autumn",
    "bakery",
    "balloon",
    "bamboo",
    "basket",
    "bicycle",
    "biscuit",
    "blanket",
    "blossom",
    "breeze",
    "bronze",
    "bubble",
    "butter",
    "cabin",
    "cactus",
    "camera",
    "candle",
    "canvas",
    "carpet",
    "castle",
    "cereal",
    "cherry",
    "chimney",
    "cinnamon",
    "clover",
    "cobble",
    "coffee",
    "cascade",
    "copper",
    "cotton",
    "cradle",
    "cricket",
    "crystal",
    "curtain",
    "daisy",
    "dolphin",
    "donut",
    "dragon",
    "drizzle",
    "eagle",
    "engine",
    "falcon",
    "feather",
    "fiddle",
    "flannel",
    "forest",
    "fossil",
    "fountain",
    "garden",
    "garlic",
    "ginger",
    "glacier",
    "goblet",
    "granite",
    "guitar",
    "hammock",
    "harvest",
    "hazel",
    "helmet",
    "hickory",
    "honey",
    "icicle",
    "jasmine",
    "jigsaw",
    "jungle",
    "kettle",
    "lantern",
    "lavender",
    "lemon",
    "lighthouse",
    "lobster",
    "marble",
    "meadow",
    "melon",
    "mirror",
    "mountain",
    "mustard",
    "nectar",
    "noodle",
    "nutmeg",
    "orchard",
    "otter",
    "paddle",
    "pancake",
    "panther",
    "parrot",
    "pebble",
    "penguin",
    "pepper",
    "pickle",
    "pigeon",
    "pillow",
    "pumpkin",
    "puzzle",
    "rabbit",
    "raccoon",
    "rainbow",
    "raisin",
    "saddle",
    "saffron",
    "salmon",
    "sandal",
    "sapphire",
    "scarlet",
    "shadow",
    "shovel",
    "spruce",
    "squirrel",
    "sunset",
    "thimble",
    "thunder",
    "timber",
    "toffee",
    "trellis",
    "trumpet",
    "tulip",
    "turtle",
    "velour",
    "violet",
    "walnut",
    "whistle",
    "wicker",
    "winter",
    "zebra",
];

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn lists_are_nonempty_and_unique() {
        for (name, list) in [
            ("COMBO_WORDS", COMBO_WORDS),
            ("BRAND_PREFIX", BRAND_PREFIX),
            ("BRAND_SUFFIX", BRAND_SUFFIX),
            ("BENIGN_WORDS", BENIGN_WORDS),
        ] {
            let set: HashSet<_> = list.iter().collect();
            assert_eq!(set.len(), list.len(), "{name} has duplicates");
            assert!(!list.is_empty(), "{name} is empty");
        }
    }

    #[test]
    fn words_are_valid_label_material() {
        for w in COMBO_WORDS
            .iter()
            .chain(BRAND_PREFIX)
            .chain(BRAND_SUFFIX)
            .chain(BENIGN_WORDS)
        {
            assert!(
                w.chars().all(|c| c.is_ascii_lowercase()),
                "{w} must be a-z only"
            );
            assert!(w.len() >= 2);
        }
    }

    #[test]
    fn synthesis_space_is_large_enough_for_702_brands() {
        assert!(BRAND_PREFIX.len() * BRAND_SUFFIX.len() > 702 * 4);
    }
}
