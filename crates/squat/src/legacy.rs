//! The legacy string-probing detector, preserved verbatim as the
//! **reference oracle** for the fingerprint-indexed [`SquatDetector`].
//!
//! This is the exact pre-rebuild implementation: every probe builds (or
//! borrows) a string and looks it up in a `HashMap<String, _>` — ~39
//! SipHash string hashes per record, the cost the fingerprint index was
//! built to remove. It is **not** used on any hot path; it exists so the
//! `scan-diff` conformance oracle, the matcher proptests and the bench
//! suite can pin the new matcher's answers (and its `probes` /
//! `allocations_avoided` accounting) byte-identical to the old ones.
//!
//! Behavioral contract: for every parseable domain,
//! `LegacyDetector::classify == SquatDetector::classify`, including the
//! brand id and squat type, and both detectors report identical `probes`
//! and `allocations_avoided` counters. `deep_probes` differs by design:
//! every legacy probe hits a real hash map, so here it always equals
//! `probes`, while the fingerprint detector only counts probes that get
//! past its bit filter.

use crate::brand::{BrandId, BrandRegistry};
use crate::detect::{ClassifyStats, SquatMatch};
use crate::SquatType;
use squatphi_domain::{idna, ConfusableTable, DomainName};
use std::collections::HashMap;

/// DNS labels are at most 63 octets ([`DomainName::parse`] rejects longer
/// ones), so every ASCII probe string fits in this stack scratch.
const MAX_LABEL: usize = 63;

/// The pre-fingerprint-index detector: string-keyed hash probing.
#[derive(Debug)]
pub struct LegacyDetector {
    /// brand label -> id.
    labels: HashMap<String, BrandId>,
    /// canonical confusable fold of each brand label -> id (first brand
    /// wins fold collisions, mirroring the pregenerated table).
    canon: HashMap<String, BrandId>,
    /// brand label per id (dense index).
    brand_labels: Vec<String>,
    /// brand suffix per id (to distinguish wrongTLD from the brand itself).
    suffixes: Vec<String>,
    /// One-char-deletion variants of every brand label:
    /// deleted-string -> (brand, deleted position).
    deletions: HashMap<String, Vec<(BrandId, usize)>>,
    /// Minimum / maximum brand label length (quick length gate).
    min_len: usize,
    max_len: usize,
    confusables: ConfusableTable,
    /// Combo affix vocabulary for short (< 4 char) brand affixes.
    combo_words: std::collections::HashSet<&'static str>,
}

impl LegacyDetector {
    /// Builds the detector index from a registry.
    pub fn new(registry: &BrandRegistry) -> Self {
        let mut labels = HashMap::with_capacity(registry.len());
        let mut canon = HashMap::with_capacity(registry.len());
        let mut brand_labels = Vec::with_capacity(registry.len());
        let mut suffixes = Vec::with_capacity(registry.len());
        let mut deletions: HashMap<String, Vec<(BrandId, usize)>> = HashMap::new();
        let (mut min_len, mut max_len) = (usize::MAX, 0);
        for b in registry.brands() {
            debug_assert_eq!(b.id, brand_labels.len(), "registry ids must be dense");
            labels.insert(b.label.clone(), b.id);
            let key: String = b
                .label
                .bytes()
                .map(|c| ConfusableTable::canonical_fold_byte(c) as char)
                .collect();
            canon.entry(key).or_insert(b.id);
            brand_labels.push(b.label.clone());
            suffixes.push(b.domain.suffix().to_string());
            min_len = min_len.min(b.label.len());
            max_len = max_len.max(b.label.len());
            for i in 0..b.label.len() {
                let mut d = String::with_capacity(b.label.len() - 1);
                d.push_str(&b.label[..i]);
                d.push_str(&b.label[i + 1..]);
                deletions.entry(d).or_default().push((b.id, i));
            }
        }
        LegacyDetector {
            labels,
            canon,
            brand_labels,
            suffixes,
            deletions,
            min_len,
            max_len,
            confusables: ConfusableTable::new(),
            combo_words: crate::words::COMBO_WORDS.iter().copied().collect(),
        }
    }

    /// Classifies a domain (see [`SquatDetector::classify`]).
    ///
    /// [`SquatDetector::classify`]: crate::SquatDetector::classify
    pub fn classify(&self, domain: &DomainName) -> Option<SquatMatch> {
        let mut stats = ClassifyStats::default();
        self.classify_with_stats(domain, &mut stats)
    }

    /// [`classify`](Self::classify) with probe/allocation accounting.
    pub fn classify_with_stats(
        &self,
        domain: &DomainName,
        stats: &mut ClassifyStats,
    ) -> Option<SquatMatch> {
        let label = domain.core_label();
        let suffix = domain.suffix();

        // Exact brand label: either the brand itself or wrongTLD.
        stats.probes += 1;
        stats.deep_probes += 1;
        if let Some(&id) = self.labels.get(label) {
            if self.suffixes[id] == suffix {
                return None; // the genuine brand domain
            }
            return Some(SquatMatch {
                brand: id,
                squat_type: SquatType::WrongTld,
            });
        }

        // Quick length gate for the per-character probes below (combo is
        // exempt — it can be much longer than any brand).
        let in_len_range = label.len() + 1 >= self.min_len && label.len() <= self.max_len + 1;

        // Punycode expands the wire form well beyond the display length, so
        // IDN labels bypass the gate; sequence folds (`rn`→`m`) shrink by
        // one, which the +1 slack already covers.
        if in_len_range || label.starts_with(idna::ACE_PREFIX) {
            if let Some(m) = self.check_homograph(label, stats) {
                return Some(m);
            }
        }
        if in_len_range {
            if let Some(m) = self.check_edit_distance(label, stats) {
                return Some(m);
            }
        }
        self.check_combo(label, stats)
    }

    /// Homograph: skeleton fold, canonical fold, sequence folds.
    fn check_homograph(&self, label: &str, stats: &mut ClassifyStats) -> Option<SquatMatch> {
        let mut scratch = [0u8; MAX_LABEL + 1];
        if let Some(rest) = label.strip_prefix(idna::ACE_PREFIX) {
            // IDN: decode, fold, look up. Decoding allocates by nature, so
            // xn-- labels are exempt from the zero-alloc guarantee.
            let decoded = squatphi_domain::punycode::decode(rest).ok()?;
            let folded = self.confusables.skeleton(&decoded);
            if folded != label {
                stats.probes += 1;
                stats.deep_probes += 1;
                if let Some(&id) = self.labels.get(folded.as_str()) {
                    return Some(SquatMatch {
                        brand: id,
                        squat_type: SquatType::Homograph,
                    });
                }
            }
            if folded.is_ascii() {
                // Reuse the fold's own buffer for the canonical probe.
                let mut bytes = folded.into_bytes();
                if let Some(m) = self.canonical_probe(&mut bytes, stats) {
                    return Some(m);
                }
            }
        } else if label.is_ascii() {
            // Hot path: fold into the stack scratch — for ASCII the skeleton
            // is the byte-wise `ascii_fold_byte` map, no allocation needed.
            debug_assert!(label.len() <= MAX_LABEL);
            let n = label.len();
            for (dst, &src) in scratch[..n].iter_mut().zip(label.as_bytes()) {
                *dst = ConfusableTable::ascii_fold_byte(src);
            }
            stats.allocations_avoided += 1;
            if &scratch[..n] != label.as_bytes() {
                stats.probes += 1;
                stats.deep_probes += 1;
                let folded = std::str::from_utf8(&scratch[..n]).expect("ascii");
                if let Some(&id) = self.labels.get(folded) {
                    return Some(SquatMatch {
                        brand: id,
                        squat_type: SquatType::Homograph,
                    });
                }
            }
            let (canon_buf, _) = scratch.split_at_mut(n);
            if let Some(m) = self.canonical_probe(canon_buf, stats) {
                return Some(m);
            }
        } else {
            // Non-ASCII Unicode label (already-decoded display form): fold
            // via the full confusable table, which allocates.
            let folded = self.confusables.skeleton(label);
            if folded != label {
                stats.probes += 1;
                stats.deep_probes += 1;
                if let Some(&id) = self.labels.get(folded.as_str()) {
                    return Some(SquatMatch {
                        brand: id,
                        squat_type: SquatType::Homograph,
                    });
                }
            }
            if folded.is_ascii() {
                let mut bytes = folded.into_bytes();
                if let Some(m) = self.canonical_probe(&mut bytes, stats) {
                    return Some(m);
                }
            }
        }
        // Sequence folds on ASCII labels: rn -> m, vv -> w, cl -> d, …
        // built in the scratch (the label fits by the DNS length limit).
        if label.is_ascii() {
            const SEQ_FOLDS: &[(&str, u8)] = &[
                ("rn", b'm'),
                ("nn", b'm'),
                ("vv", b'w'),
                ("cl", b'd'),
                ("lc", b'k'),
                ("lo", b'b'),
            ];
            let bytes = label.as_bytes();
            for &(seq, target) in SEQ_FOLDS {
                // Every occurrence must be probed, not just the first.
                let mut start = 0;
                while let Some(off) = label[start..].find(seq) {
                    let pos = start + off;
                    let n = bytes.len() - 1;
                    scratch[..pos].copy_from_slice(&bytes[..pos]);
                    scratch[pos] = target;
                    scratch[pos + 1..n].copy_from_slice(&bytes[pos + 2..]);
                    stats.allocations_avoided += 1;
                    stats.probes += 1;
                    stats.deep_probes += 1;
                    let s = std::str::from_utf8(&scratch[..n]).expect("ascii");
                    if let Some(&id) = self.labels.get(s) {
                        return Some(SquatMatch {
                            brand: id,
                            squat_type: SquatType::Homograph,
                        });
                    }
                    start = pos + 1;
                }
            }
        }
        None
    }

    /// Canonical confusable probe over already skeleton-folded bytes.
    fn canonical_probe(&self, folded: &mut [u8], stats: &mut ClassifyStats) -> Option<SquatMatch> {
        for b in folded.iter_mut() {
            *b = ConfusableTable::canonical_fold_byte(*b);
        }
        stats.allocations_avoided += 1;
        stats.probes += 1;
        stats.deep_probes += 1;
        let key = std::str::from_utf8(folded).expect("ascii");
        self.canon.get(key).map(|&id| SquatMatch {
            brand: id,
            squat_type: SquatType::Homograph,
        })
    }

    /// Bits / typo via symmetric deletion probing.
    fn check_edit_distance(&self, label: &str, stats: &mut ClassifyStats) -> Option<SquatMatch> {
        if !label.is_ascii() || label.is_empty() {
            return None;
        }
        debug_assert!(label.len() <= MAX_LABEL);
        let bytes = label.as_bytes();
        let mut scratch = [0u8; MAX_LABEL + 1];
        let mut insertion_hit: Option<BrandId> = None;

        // (a) + (c): delete char i once; probe the deletion index for a
        // same-position brand deletion (substitution at i → bits if the two
        // bytes differ by one bit) and the label index for an exact brand
        // (insertion of i).
        for i in 0..bytes.len() {
            let n = bytes.len() - 1;
            scratch[..i].copy_from_slice(&bytes[..i]);
            scratch[i..n].copy_from_slice(&bytes[i + 1..]);
            stats.allocations_avoided += 2; // one String per step, twice
            let probe = std::str::from_utf8(&scratch[..n]).expect("ascii");
            stats.probes += 1;
            stats.deep_probes += 1;
            if let Some(hits) = self.deletions.get(probe) {
                for &(id, pos) in hits {
                    // Keys of equal length imply brand.len() == label.len(),
                    // so only the deleted position needs to match.
                    if pos == i {
                        let brand = self.brand_labels[id].as_bytes();
                        debug_assert_eq!(brand.len(), label.len());
                        if (bytes[i] ^ brand[i]).count_ones() == 1 {
                            return Some(SquatMatch {
                                brand: id,
                                squat_type: SquatType::Bits,
                            });
                        }
                    }
                }
            }
            if insertion_hit.is_none() {
                stats.probes += 1;
                stats.deep_probes += 1;
                insertion_hit = self.labels.get(probe).copied();
            }
        }
        // (b) Adjacent swap: transpose each pair in place and look up.
        scratch[..bytes.len()].copy_from_slice(bytes);
        for i in 0..bytes.len().saturating_sub(1) {
            if bytes[i] == bytes[i + 1] {
                continue;
            }
            scratch.swap(i, i + 1);
            stats.allocations_avoided += 1;
            stats.probes += 1;
            stats.deep_probes += 1;
            let s = std::str::from_utf8(&scratch[..bytes.len()]).expect("ascii");
            if let Some(&id) = self.labels.get(s) {
                return Some(SquatMatch {
                    brand: id,
                    squat_type: SquatType::Typo,
                });
            }
            scratch.swap(i, i + 1);
        }
        // (c) Insertion (label is brand + 1 char), found during the merged
        //     deletion pass above; swap outranks it, so it returns here.
        if let Some(id) = insertion_hit {
            return Some(SquatMatch {
                brand: id,
                squat_type: SquatType::Typo,
            });
        }
        // (d) Omission (label is brand - 1 char): the label appears in the
        //     brand deletion index.
        stats.probes += 1;
        stats.deep_probes += 1;
        if let Some(hits) = self.deletions.get(label) {
            if let Some(&(id, _)) = hits.first() {
                return Some(SquatMatch {
                    brand: id,
                    squat_type: SquatType::Typo,
                });
            }
        }
        None
    }

    /// Combo: hyphen-separated tokens containing the brand.
    fn check_combo(&self, label: &str, stats: &mut ClassifyStats) -> Option<SquatMatch> {
        if !label.contains('-') || !label.is_ascii() {
            return None;
        }
        // Pass 1: exact token match, all tokens.
        for token in label.split('-') {
            if token.len() < 2 {
                continue;
            }
            stats.probes += 1;
            stats.deep_probes += 1;
            if let Some(&id) = self.labels.get(token) {
                return Some(SquatMatch {
                    brand: id,
                    squat_type: SquatType::Combo,
                });
            }
        }
        // Pass 2: token starts or ends with a brand label. Affixes >= 4
        // chars match unconditionally; shorter brand affixes are accepted
        // only when the rest of the token is a known combo word.
        for token in label.split('-') {
            if token.len() < 2 {
                continue;
            }
            for cut in (4..token.len()).rev() {
                stats.probes += 2;
                stats.deep_probes += 2;
                if let Some(&id) = self.labels.get(&token[..cut]) {
                    return Some(SquatMatch {
                        brand: id,
                        squat_type: SquatType::Combo,
                    });
                }
                if let Some(&id) = self.labels.get(&token[token.len() - cut..]) {
                    return Some(SquatMatch {
                        brand: id,
                        squat_type: SquatType::Combo,
                    });
                }
            }
            for cut in (2..token.len().min(4)).rev() {
                stats.probes += 2;
                stats.deep_probes += 2;
                if let Some(&id) = self.labels.get(&token[..cut]) {
                    if self.combo_words.contains(&token[cut..]) {
                        return Some(SquatMatch {
                            brand: id,
                            squat_type: SquatType::Combo,
                        });
                    }
                }
                if let Some(&id) = self.labels.get(&token[token.len() - cut..]) {
                    if self.combo_words.contains(&token[..token.len() - cut]) {
                        return Some(SquatMatch {
                            brand: id,
                            squat_type: SquatType::Combo,
                        });
                    }
                }
            }
        }
        None
    }

    /// The label of brand `id` (dense `Vec` index).
    pub fn brand_label_of(&self, id: BrandId) -> &str {
        &self.brand_labels[id]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn classify(det: &LegacyDetector, s: &str) -> Option<SquatType> {
        det.classify(&DomainName::parse(s).unwrap())
            .map(|m| m.squat_type)
    }

    #[test]
    fn table1_examples_classified() {
        let reg = BrandRegistry::with_size(30);
        let det = LegacyDetector::new(&reg);
        assert_eq!(classify(&det, "faceb00k.pw"), Some(SquatType::Homograph));
        assert_eq!(classify(&det, "facebnok.tk"), Some(SquatType::Bits));
        assert_eq!(classify(&det, "fcaebook.org"), Some(SquatType::Typo));
        assert_eq!(classify(&det, "facebook-story.de"), Some(SquatType::Combo));
        assert_eq!(classify(&det, "facebook.audi"), Some(SquatType::WrongTld));
        assert_eq!(classify(&det, "facebook.com"), None);
        assert_eq!(classify(&det, "winterpillow.net"), None);
    }

    #[test]
    fn legacy_deep_probes_equal_probes() {
        let reg = BrandRegistry::with_size(30);
        let det = LegacyDetector::new(&reg);
        let mut stats = ClassifyStats::default();
        let d = DomainName::parse("winterpillow.net").unwrap();
        let _ = det.classify_with_stats(&d, &mut stats);
        assert_eq!(stats.probes, stats.deep_probes);
    }
}
