//! Evaluation metrics: confusion matrices, rates, ROC and AUC.

/// Counts of a binary confusion matrix.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ConfusionMatrix {
    /// True positives.
    pub tp: usize,
    /// False positives.
    pub fp: usize,
    /// True negatives.
    pub tn: usize,
    /// False negatives.
    pub fn_: usize,
}

impl ConfusionMatrix {
    /// Builds the matrix from (score, label) pairs at `threshold`.
    pub fn at_threshold(scored: &[(f64, bool)], threshold: f64) -> Self {
        let mut m = ConfusionMatrix::default();
        for &(score, label) in scored {
            let predicted = score >= threshold;
            match (predicted, label) {
                (true, true) => m.tp += 1,
                (true, false) => m.fp += 1,
                (false, false) => m.tn += 1,
                (false, true) => m.fn_ += 1,
            }
        }
        m
    }

    /// False-positive rate: FP / (FP + TN).
    pub fn fpr(&self) -> f64 {
        let denom = self.fp + self.tn;
        if denom == 0 {
            0.0
        } else {
            self.fp as f64 / denom as f64
        }
    }

    /// False-negative rate: FN / (FN + TP).
    pub fn fnr(&self) -> f64 {
        let denom = self.fn_ + self.tp;
        if denom == 0 {
            0.0
        } else {
            self.fn_ as f64 / denom as f64
        }
    }

    /// True-positive rate (recall).
    pub fn tpr(&self) -> f64 {
        1.0 - self.fnr()
    }

    /// Accuracy.
    pub fn accuracy(&self) -> f64 {
        let total = self.tp + self.fp + self.tn + self.fn_;
        if total == 0 {
            0.0
        } else {
            (self.tp + self.tn) as f64 / total as f64
        }
    }

    /// Precision: TP / (TP + FP).
    pub fn precision(&self) -> f64 {
        let denom = self.tp + self.fp;
        if denom == 0 {
            0.0
        } else {
            self.tp as f64 / denom as f64
        }
    }
}

/// A full ROC curve: (FPR, TPR) points sorted by FPR.
#[derive(Debug, Clone, Default)]
pub struct RocCurve {
    /// Curve points from (0,0) to (1,1).
    pub points: Vec<(f64, f64)>,
}

impl RocCurve {
    /// Computes the curve by sweeping the threshold over every distinct
    /// score.
    pub fn from_scores(scored: &[(f64, bool)]) -> Self {
        let pos = scored.iter().filter(|(_, y)| *y).count();
        let neg = scored.len() - pos;
        if pos == 0 || neg == 0 {
            return RocCurve {
                points: vec![(0.0, 0.0), (1.0, 1.0)],
            };
        }
        let mut sorted: Vec<(f64, bool)> = scored.to_vec();
        sorted.sort_by(|a, b| b.0.total_cmp(&a.0));
        let mut points = vec![(0.0, 0.0)];
        let (mut tp, mut fp) = (0usize, 0usize);
        let mut i = 0;
        while i < sorted.len() {
            // Process ties together so the curve is threshold-faithful.
            let s = sorted[i].0;
            while i < sorted.len() && sorted[i].0 == s {
                if sorted[i].1 {
                    tp += 1;
                } else {
                    fp += 1;
                }
                i += 1;
            }
            points.push((fp as f64 / neg as f64, tp as f64 / pos as f64));
        }
        if points.last() != Some(&(1.0, 1.0)) {
            points.push((1.0, 1.0));
        }
        RocCurve { points }
    }

    /// Area under the curve (trapezoidal).
    pub fn auc(&self) -> f64 {
        self.points
            .windows(2)
            .map(|w| {
                let (x0, y0) = w[0];
                let (x1, y1) = w[1];
                (x1 - x0) * (y0 + y1) / 2.0
            })
            .sum()
    }

    /// The TPR at the largest FPR ≤ `fpr` (for "TPR at 1% FPR" summaries).
    pub fn tpr_at_fpr(&self, fpr: f64) -> f64 {
        self.points
            .iter()
            .filter(|(x, _)| *x <= fpr)
            .map(|(_, y)| *y)
            .fold(0.0, f64::max)
    }
}

/// The Table 7 row: FP rate, FN rate, AUC, accuracy.
#[derive(Debug, Clone, Copy, Default)]
pub struct Metrics {
    /// False-positive rate at the chosen threshold.
    pub fpr: f64,
    /// False-negative rate at the chosen threshold.
    pub fnr: f64,
    /// Area under the ROC curve.
    pub auc: f64,
    /// Accuracy at the chosen threshold.
    pub accuracy: f64,
}

impl Metrics {
    /// Computes all four from pooled (score, label) pairs.
    pub fn from_scores(scored: &[(f64, bool)], threshold: f64) -> Self {
        let cm = ConfusionMatrix::at_threshold(scored, threshold);
        let roc = RocCurve::from_scores(scored);
        Metrics {
            fpr: cm.fpr(),
            fnr: cm.fnr(),
            auc: roc.auc(),
            accuracy: cm.accuracy(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn perfect() -> Vec<(f64, bool)> {
        (0..50)
            .map(|i| {
                if i % 2 == 0 {
                    (0.9, true)
                } else {
                    (0.1, false)
                }
            })
            .collect()
    }

    fn random_like() -> Vec<(f64, bool)> {
        (0..100)
            .map(|i| (((i * 37) % 100) as f64 / 100.0, i % 2 == 0))
            .collect()
    }

    #[test]
    fn perfect_classifier_metrics() {
        let m = Metrics::from_scores(&perfect(), 0.5);
        assert_eq!(m.fpr, 0.0);
        assert_eq!(m.fnr, 0.0);
        assert_eq!(m.accuracy, 1.0);
        assert!((m.auc - 1.0).abs() < 1e-12);
    }

    #[test]
    fn random_classifier_auc_near_half() {
        let roc = RocCurve::from_scores(&random_like());
        let auc = roc.auc();
        assert!((auc - 0.5).abs() < 0.15, "auc {auc}");
    }

    #[test]
    fn inverted_classifier_auc_below_half() {
        let scored: Vec<(f64, bool)> = perfect().into_iter().map(|(s, y)| (1.0 - s, y)).collect();
        assert!(RocCurve::from_scores(&scored).auc() < 0.1);
    }

    #[test]
    fn confusion_matrix_counts() {
        let scored = vec![(0.9, true), (0.8, false), (0.2, true), (0.1, false)];
        let cm = ConfusionMatrix::at_threshold(&scored, 0.5);
        assert_eq!(
            cm,
            ConfusionMatrix {
                tp: 1,
                fp: 1,
                tn: 1,
                fn_: 1
            }
        );
        assert_eq!(cm.fpr(), 0.5);
        assert_eq!(cm.fnr(), 0.5);
        assert_eq!(cm.accuracy(), 0.5);
        assert_eq!(cm.precision(), 0.5);
    }

    #[test]
    fn degenerate_all_one_class() {
        let all_pos: Vec<(f64, bool)> = (0..10).map(|i| (i as f64 / 10.0, true)).collect();
        let roc = RocCurve::from_scores(&all_pos);
        assert_eq!(roc.points, vec![(0.0, 0.0), (1.0, 1.0)]);
        let cm = ConfusionMatrix::at_threshold(&all_pos, 0.5);
        assert_eq!(cm.fpr(), 0.0); // no negatives
    }

    #[test]
    fn roc_monotonic() {
        let roc = RocCurve::from_scores(&random_like());
        for w in roc.points.windows(2) {
            assert!(w[1].0 >= w[0].0);
            assert!(w[1].1 >= w[0].1);
        }
    }

    #[test]
    fn tpr_at_fpr_bounds() {
        let roc = RocCurve::from_scores(&perfect());
        assert!((roc.tpr_at_fpr(0.0) - 1.0).abs() < 1e-12);
        let roc2 = RocCurve::from_scores(&random_like());
        assert!(roc2.tpr_at_fpr(0.1) <= roc2.tpr_at_fpr(0.5));
    }

    #[test]
    fn tied_scores_handled() {
        let scored = vec![(0.5, true), (0.5, false), (0.5, true), (0.5, false)];
        let roc = RocCurve::from_scores(&scored);
        assert!((roc.auc() - 0.5).abs() < 1e-12);
    }
}
