//! K-nearest-neighbors with distance-weighted voting.

use crate::{Classifier, Dataset};
use squatphi_nlp::SparseVec;

/// KNN classifier: memorizes the training set and scores by the
/// inverse-distance-weighted vote of the k nearest samples.
#[derive(Debug, Clone)]
pub struct Knn {
    k: usize,
    train: Vec<(SparseVec, bool)>,
}

impl Knn {
    /// New classifier with neighborhood size `k`.
    pub fn new(k: usize) -> Self {
        Knn {
            k: k.max(1),
            train: Vec::new(),
        }
    }
}

impl Classifier for Knn {
    fn fit(&mut self, data: &Dataset) {
        self.train = data.iter().map(|(x, y)| (x.clone(), y)).collect();
    }

    fn score(&self, x: &SparseVec) -> f64 {
        if self.train.is_empty() {
            return 0.5;
        }
        // Partial selection of the k smallest distances.
        let mut dists: Vec<(f64, bool)> = self
            .train
            .iter()
            .map(|(t, y)| (t.sq_distance(x), *y))
            .collect();
        let k = self.k.min(dists.len());
        dists.select_nth_unstable_by(k - 1, |a, b| a.0.total_cmp(&b.0));
        let mut pos = 0.0f64;
        let mut total = 0.0f64;
        for &(d, y) in &dists[..k] {
            let w = 1.0 / (d.sqrt() + 1e-9);
            total += w;
            if y {
                pos += w;
            }
        }
        pos / total
    }

    fn name(&self) -> &'static str {
        "KNN"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn clustered() -> Dataset {
        let mut d = Dataset::new(2);
        for i in 0..10 {
            let mut p = SparseVec::new();
            p.add(0, 10.0 + i as f64 * 0.1);
            d.push(p, true);
            let mut n = SparseVec::new();
            n.add(1, 10.0 + i as f64 * 0.1);
            d.push(n, false);
        }
        d
    }

    #[test]
    fn votes_with_nearest_cluster() {
        let mut m = Knn::new(3);
        m.fit(&clustered());
        let mut q = SparseVec::new();
        q.add(0, 10.5);
        assert!(m.predict(&q));
        let mut q2 = SparseVec::new();
        q2.add(1, 10.5);
        assert!(!m.predict(&q2));
    }

    #[test]
    fn exact_match_dominates() {
        let mut m = Knn::new(5);
        m.fit(&clustered());
        let mut q = SparseVec::new();
        q.add(0, 10.0); // exactly a positive sample
        assert!(m.score(&q) > 0.9);
    }

    #[test]
    fn k_larger_than_train_is_safe() {
        let mut d = Dataset::new(1);
        let mut v = SparseVec::new();
        v.add(0, 1.0);
        d.push(v, true);
        let mut m = Knn::new(50);
        m.fit(&d);
        let mut q = SparseVec::new();
        q.add(0, 1.1);
        assert!(m.predict(&q));
    }

    #[test]
    fn unfitted_scores_half() {
        let m = Knn::new(3);
        assert_eq!(m.score(&SparseVec::new()), 0.5);
    }
}
