//! From-scratch machine learning for the phishing classifier (paper §5).
//!
//! The paper trains three models — Naive Bayes, KNN, and Random Forest —
//! on sparse keyword-frequency vectors and evaluates them with 10-fold
//! cross-validation, reporting FP rate, FN rate, AUC and accuracy
//! (Table 7, Figure 10). This crate implements that whole stack:
//!
//! * [`dataset`] — labeled sparse datasets with stratified k-fold splits,
//! * [`nb`] — Gaussian and Multinomial Naive Bayes,
//! * [`knn`] — k-nearest-neighbors with distance-weighted voting,
//! * [`forest`] — CART decision trees with gini impurity, bagging and
//!   feature subsampling (a seeded random forest),
//! * [`metrics`] — confusion matrices, FPR/FNR/accuracy, ROC curves, AUC.
//!
//! Every model implements [`Classifier`]: fit on a dataset, then `score`
//! unseen vectors with a probability-like value in [0, 1] (threshold at
//! 0.5 for the hard label).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod dataset;
pub mod forest;
pub mod knn;
pub mod metrics;
pub mod nb;

pub use dataset::Dataset;
pub use forest::{RandomForest, RandomForestConfig};
pub use knn::Knn;
pub use metrics::{ConfusionMatrix, Metrics, RocCurve};
pub use nb::{GaussianNb, MultinomialNb};

use squatphi_nlp::SparseVec;

/// A binary classifier over sparse vectors. Labels: `true` = positive
/// (phishing), `false` = negative (benign).
pub trait Classifier {
    /// Fits the model to a dataset.
    fn fit(&mut self, data: &Dataset);

    /// Scores one sample: higher = more likely positive, in [0, 1].
    fn score(&self, x: &SparseVec) -> f64;

    /// Hard prediction at the 0.5 threshold.
    fn predict(&self, x: &SparseVec) -> bool {
        self.score(x) >= 0.5
    }

    /// Human-readable model name (for result tables).
    fn name(&self) -> &'static str;
}

/// Runs stratified k-fold cross-validation, returning the pooled scores
/// and labels (for ROC) of every held-out sample.
pub fn cross_validate<C: Classifier>(
    model_factory: impl Fn() -> C,
    data: &Dataset,
    k: usize,
    seed: u64,
) -> Vec<(f64, bool)> {
    let folds = data.stratified_folds(k, seed);
    let mut pooled = Vec::with_capacity(data.len());
    for fold in 0..k {
        let (train, test) = data.split_fold(&folds, fold);
        let mut model = model_factory();
        model.fit(&train);
        for i in 0..test.len() {
            pooled.push((model.score(test.x(i)), test.y(i)));
        }
    }
    pooled
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toy_dataset() -> Dataset {
        // Positives heavy on dim 0, negatives on dim 1, 40 samples.
        let mut d = Dataset::new(4);
        for i in 0..20 {
            let mut v = SparseVec::new();
            v.add(0, 2.0 + (i % 3) as f64);
            v.add(2, 1.0);
            d.push(v, true);
            let mut w = SparseVec::new();
            w.add(1, 2.0 + (i % 4) as f64);
            d.push(w, false);
        }
        d
    }

    #[test]
    fn all_models_learn_the_toy_problem() {
        let data = toy_dataset();
        let mut models: Vec<Box<dyn Classifier>> = vec![
            Box::new(GaussianNb::new()),
            Box::new(MultinomialNb::new(1.0)),
            Box::new(Knn::new(3)),
            Box::new(RandomForest::new(RandomForestConfig {
                trees: 10,
                ..Default::default()
            })),
        ];
        for m in &mut models {
            m.fit(&data);
            let mut pos = SparseVec::new();
            pos.add(0, 3.0);
            let mut neg = SparseVec::new();
            neg.add(1, 3.0);
            assert!(m.predict(&pos), "{} failed on positive", m.name());
            assert!(!m.predict(&neg), "{} failed on negative", m.name());
        }
    }

    #[test]
    fn cross_validation_pools_every_sample() {
        let data = toy_dataset();
        let pooled = cross_validate(|| Knn::new(3), &data, 5, 1);
        assert_eq!(pooled.len(), data.len());
        let m = Metrics::from_scores(&pooled, 0.5);
        assert!(m.accuracy > 0.9, "cv accuracy {}", m.accuracy);
    }
}
