//! Naive Bayes classifiers.

use crate::{Classifier, Dataset};
use squatphi_nlp::SparseVec;

/// Gaussian Naive Bayes on densified features.
///
/// This is the variant that struggles on sparse count data (the paper's
/// NB row in Table 7 shows a 0.50 false-positive rate) — kept faithful to
/// how NB is typically run on such features out of the box.
#[derive(Debug, Clone, Default)]
pub struct GaussianNb {
    dim: usize,
    prior_pos: f64,
    mean: [Vec<f64>; 2],
    var: [Vec<f64>; 2],
    fitted: bool,
}

impl GaussianNb {
    /// New, unfitted model.
    pub fn new() -> Self {
        Self::default()
    }
}

impl Classifier for GaussianNb {
    fn fit(&mut self, data: &Dataset) {
        self.dim = data.dim();
        let mut count = [0usize; 2];
        let mut sum = [vec![0.0; self.dim], vec![0.0; self.dim]];
        for (x, y) in data.iter() {
            let c = usize::from(y);
            count[c] += 1;
            for &(i, v) in x.entries() {
                if i < self.dim {
                    sum[c][i] += v;
                }
            }
        }
        self.prior_pos = count[1] as f64 / data.len().max(1) as f64;
        self.mean = [
            sum[0].iter().map(|s| s / count[0].max(1) as f64).collect(),
            sum[1].iter().map(|s| s / count[1].max(1) as f64).collect(),
        ];
        let mut sq = [vec![0.0; self.dim], vec![0.0; self.dim]];
        for (x, y) in data.iter() {
            let c = usize::from(y);
            let dense = x.to_dense(self.dim);
            for i in 0..self.dim {
                let d = dense[i] - self.mean[c][i];
                sq[c][i] += d * d;
            }
        }
        // Variance smoothing keeps zero-variance dims finite.
        const EPS: f64 = 1e-3;
        self.var = [
            sq[0]
                .iter()
                .map(|s| s / count[0].max(1) as f64 + EPS)
                .collect(),
            sq[1]
                .iter()
                .map(|s| s / count[1].max(1) as f64 + EPS)
                .collect(),
        ];
        self.fitted = true;
    }

    fn score(&self, x: &SparseVec) -> f64 {
        if !self.fitted {
            return 0.5;
        }
        let dense = x.to_dense(self.dim);
        let mut log = [
            ((1.0 - self.prior_pos).max(1e-12)).ln(),
            (self.prior_pos.max(1e-12)).ln(),
        ];
        for (c, lc) in log.iter_mut().enumerate() {
            for (i, &x) in dense.iter().enumerate().take(self.dim) {
                let var = self.var[c][i];
                let d = x - self.mean[c][i];
                *lc += -0.5 * ((2.0 * std::f64::consts::PI * var).ln() + d * d / var);
            }
        }
        // Softmax over the two log-likelihoods.
        let m = log[0].max(log[1]);
        let e0 = (log[0] - m).exp();
        let e1 = (log[1] - m).exp();
        e1 / (e0 + e1)
    }

    fn name(&self) -> &'static str {
        "NaiveBayes"
    }
}

/// Multinomial Naive Bayes with Laplace smoothing — the text-classifier
/// variant that actually suits keyword counts.
#[derive(Debug, Clone)]
pub struct MultinomialNb {
    alpha: f64,
    dim: usize,
    prior_pos: f64,
    log_prob: [Vec<f64>; 2],
    fitted: bool,
}

impl MultinomialNb {
    /// New model with Laplace smoothing `alpha`.
    pub fn new(alpha: f64) -> Self {
        MultinomialNb {
            alpha: alpha.max(1e-9),
            dim: 0,
            prior_pos: 0.5,
            log_prob: [Vec::new(), Vec::new()],
            fitted: false,
        }
    }
}

impl Classifier for MultinomialNb {
    fn fit(&mut self, data: &Dataset) {
        self.dim = data.dim();
        let mut count = [0usize; 2];
        let mut feature_sum = [vec![0.0; self.dim], vec![0.0; self.dim]];
        let mut total = [0.0f64; 2];
        for (x, y) in data.iter() {
            let c = usize::from(y);
            count[c] += 1;
            for &(i, v) in x.entries() {
                if i < self.dim {
                    feature_sum[c][i] += v.max(0.0);
                    total[c] += v.max(0.0);
                }
            }
        }
        self.prior_pos = count[1] as f64 / data.len().max(1) as f64;
        for c in 0..2 {
            let denom = total[c] + self.alpha * self.dim as f64;
            self.log_prob[c] = feature_sum[c]
                .iter()
                .map(|&s| ((s + self.alpha) / denom).ln())
                .collect();
        }
        self.fitted = true;
    }

    fn score(&self, x: &SparseVec) -> f64 {
        if !self.fitted {
            return 0.5;
        }
        let mut log = [
            ((1.0 - self.prior_pos).max(1e-12)).ln(),
            (self.prior_pos.max(1e-12)).ln(),
        ];
        for &(i, v) in x.entries() {
            if i < self.dim {
                for (c, lc) in log.iter_mut().enumerate() {
                    *lc += v.max(0.0) * self.log_prob[c][i];
                }
            }
        }
        let m = log[0].max(log[1]);
        let e0 = (log[0] - m).exp();
        let e1 = (log[1] - m).exp();
        e1 / (e0 + e1)
    }

    fn name(&self) -> &'static str {
        "MultinomialNB"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn separable() -> Dataset {
        let mut d = Dataset::new(3);
        for i in 0..30 {
            let mut p = SparseVec::new();
            p.add(0, 1.0 + (i % 2) as f64);
            d.push(p, true);
            let mut n = SparseVec::new();
            n.add(1, 1.0 + (i % 3) as f64);
            d.push(n, false);
        }
        d
    }

    #[test]
    fn gaussian_learns_separable() {
        let mut m = GaussianNb::new();
        m.fit(&separable());
        let mut p = SparseVec::new();
        p.add(0, 1.5);
        assert!(m.score(&p) > 0.9);
        let mut n = SparseVec::new();
        n.add(1, 1.5);
        assert!(m.score(&n) < 0.1);
    }

    #[test]
    fn multinomial_learns_separable() {
        let mut m = MultinomialNb::new(1.0);
        m.fit(&separable());
        let mut p = SparseVec::new();
        p.add(0, 2.0);
        assert!(m.predict(&p));
        let mut n = SparseVec::new();
        n.add(1, 2.0);
        assert!(!m.predict(&n));
    }

    #[test]
    fn unfitted_scores_half() {
        let m = GaussianNb::new();
        assert_eq!(m.score(&SparseVec::new()), 0.5);
        let m2 = MultinomialNb::new(1.0);
        assert_eq!(m2.score(&SparseVec::new()), 0.5);
    }

    #[test]
    fn scores_are_probabilities() {
        let mut m = MultinomialNb::new(1.0);
        m.fit(&separable());
        for i in 0..3 {
            let mut v = SparseVec::new();
            v.add(i, 5.0);
            let s = m.score(&v);
            assert!((0.0..=1.0).contains(&s));
        }
    }

    #[test]
    fn prior_respected_on_imbalanced_data() {
        // 90% negatives: an empty vector should lean negative.
        let mut d = Dataset::new(2);
        for i in 0..90 {
            let mut v = SparseVec::new();
            v.add(0, (i % 3) as f64);
            d.push(v, false);
        }
        for _ in 0..10 {
            let mut v = SparseVec::new();
            v.add(1, 1.0);
            d.push(v, true);
        }
        let mut m = MultinomialNb::new(1.0);
        m.fit(&d);
        assert!(m.score(&SparseVec::new()) < 0.5);
    }
}
