//! Labeled sparse datasets and stratified fold splitting.

use rand::prelude::*;
use rand::rngs::StdRng;
use squatphi_nlp::SparseVec;

/// A labeled binary-classification dataset over sparse vectors.
#[derive(Debug, Clone, Default)]
pub struct Dataset {
    dim: usize,
    xs: Vec<SparseVec>,
    ys: Vec<bool>,
}

impl Dataset {
    /// Empty dataset with a fixed feature dimension.
    pub fn new(dim: usize) -> Self {
        Dataset {
            dim,
            xs: Vec::new(),
            ys: Vec::new(),
        }
    }

    /// Feature dimension.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Appends a labeled sample.
    pub fn push(&mut self, x: SparseVec, y: bool) {
        self.xs.push(x);
        self.ys.push(y);
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.xs.len()
    }

    /// Whether the dataset is empty.
    pub fn is_empty(&self) -> bool {
        self.xs.is_empty()
    }

    /// Feature vector of sample `i`.
    pub fn x(&self, i: usize) -> &SparseVec {
        &self.xs[i]
    }

    /// Label of sample `i`.
    pub fn y(&self, i: usize) -> bool {
        self.ys[i]
    }

    /// Count of positive samples.
    pub fn positives(&self) -> usize {
        self.ys.iter().filter(|&&y| y).count()
    }

    /// Iterator over (x, y) pairs.
    pub fn iter(&self) -> impl Iterator<Item = (&SparseVec, bool)> {
        self.xs.iter().zip(self.ys.iter().copied())
    }

    /// Assigns every sample to one of `k` folds, stratified by class so
    /// each fold keeps the global positive rate. Returns fold ids.
    pub fn stratified_folds(&self, k: usize, seed: u64) -> Vec<usize> {
        let k = k.max(2);
        let mut rng = StdRng::seed_from_u64(seed);
        let mut pos: Vec<usize> = (0..self.len()).filter(|&i| self.ys[i]).collect();
        let mut neg: Vec<usize> = (0..self.len()).filter(|&i| !self.ys[i]).collect();
        pos.shuffle(&mut rng);
        neg.shuffle(&mut rng);
        let mut folds = vec![0usize; self.len()];
        for (j, &i) in pos.iter().enumerate() {
            folds[i] = j % k;
        }
        for (j, &i) in neg.iter().enumerate() {
            folds[i] = j % k;
        }
        folds
    }

    /// Splits into (train, test) where `test` is the samples whose fold id
    /// equals `fold`.
    pub fn split_fold(&self, folds: &[usize], fold: usize) -> (Dataset, Dataset) {
        let mut train = Dataset::new(self.dim);
        let mut test = Dataset::new(self.dim);
        for (i, &f) in folds.iter().enumerate().take(self.len()) {
            let target = if f == fold { &mut test } else { &mut train };
            target.push(self.xs[i].clone(), self.ys[i]);
        }
        (train, test)
    }

    /// Bootstrap sample (with replacement) of the same size; returns the
    /// sampled dataset.
    pub fn bootstrap(&self, rng: &mut StdRng) -> Dataset {
        let mut out = Dataset::new(self.dim);
        for _ in 0..self.len() {
            let i = rng.gen_range(0..self.len());
            out.push(self.xs[i].clone(), self.ys[i]);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn data(n_pos: usize, n_neg: usize) -> Dataset {
        let mut d = Dataset::new(2);
        for i in 0..n_pos {
            let mut v = SparseVec::new();
            v.add(0, i as f64);
            d.push(v, true);
        }
        for i in 0..n_neg {
            let mut v = SparseVec::new();
            v.add(1, i as f64);
            d.push(v, false);
        }
        d
    }

    #[test]
    fn folds_are_stratified() {
        let d = data(50, 100);
        let folds = d.stratified_folds(5, 42);
        for f in 0..5 {
            let pos = (0..d.len()).filter(|&i| folds[i] == f && d.y(i)).count();
            let neg = (0..d.len()).filter(|&i| folds[i] == f && !d.y(i)).count();
            assert_eq!(pos, 10, "fold {f} positives");
            assert_eq!(neg, 20, "fold {f} negatives");
        }
    }

    #[test]
    fn split_partitions_cleanly() {
        let d = data(10, 10);
        let folds = d.stratified_folds(4, 1);
        let (train, test) = d.split_fold(&folds, 0);
        assert_eq!(train.len() + test.len(), d.len());
        assert!(test.len() >= 4);
    }

    #[test]
    fn folds_deterministic_per_seed() {
        let d = data(30, 30);
        assert_eq!(d.stratified_folds(10, 7), d.stratified_folds(10, 7));
        assert_ne!(d.stratified_folds(10, 7), d.stratified_folds(10, 8));
    }

    #[test]
    fn bootstrap_same_size() {
        let d = data(20, 20);
        let mut rng = StdRng::seed_from_u64(3);
        let b = d.bootstrap(&mut rng);
        assert_eq!(b.len(), d.len());
    }

    #[test]
    fn positives_counted() {
        assert_eq!(data(7, 3).positives(), 7);
    }
}
