//! CART decision trees and a seeded random forest.
//!
//! Gini-impurity splits on densified features, bagging over bootstrap
//! samples, and sqrt-feature subsampling per split — the standard Breiman
//! recipe, which is what Table 7's winning model runs.

use crate::{Classifier, Dataset};
use rand::prelude::*;
use rand::rngs::StdRng;
use squatphi_nlp::SparseVec;

/// Random forest hyperparameters.
#[derive(Debug, Clone)]
pub struct RandomForestConfig {
    /// Number of trees.
    pub trees: usize,
    /// Maximum tree depth.
    pub max_depth: usize,
    /// Minimum samples required to split a node.
    pub min_split: usize,
    /// Features tried per split; 0 = sqrt(dim).
    pub features_per_split: usize,
    /// Seed for bagging and feature subsampling.
    pub seed: u64,
}

impl Default for RandomForestConfig {
    fn default() -> Self {
        RandomForestConfig {
            trees: 50,
            max_depth: 12,
            min_split: 4,
            features_per_split: 0,
            seed: 97,
        }
    }
}

/// One node of a CART tree, stored in an arena.
#[derive(Debug, Clone)]
enum TreeNode {
    Leaf {
        /// Positive-class probability at this leaf.
        p_pos: f64,
    },
    Split {
        feature: usize,
        threshold: f64,
        left: usize,
        right: usize,
    },
}

/// A single fitted CART tree.
#[derive(Debug, Clone, Default)]
struct Tree {
    nodes: Vec<TreeNode>,
}

impl Tree {
    fn score(&self, x: &SparseVec) -> f64 {
        if self.nodes.is_empty() {
            return 0.5;
        }
        let mut at = 0usize;
        loop {
            match &self.nodes[at] {
                TreeNode::Leaf { p_pos } => return *p_pos,
                TreeNode::Split {
                    feature,
                    threshold,
                    left,
                    right,
                } => {
                    at = if x.get(*feature) <= *threshold {
                        *left
                    } else {
                        *right
                    };
                }
            }
        }
    }
}

/// Index-based view of the training data used during tree construction.
struct Builder<'a> {
    data: &'a Dataset,
    cfg: &'a RandomForestConfig,
    features: usize,
}

impl Builder<'_> {
    fn gini(pos: usize, total: usize) -> f64 {
        if total == 0 {
            return 0.0;
        }
        let p = pos as f64 / total as f64;
        2.0 * p * (1.0 - p)
    }

    fn build(
        &self,
        idx: &mut [usize],
        depth: usize,
        rng: &mut StdRng,
        nodes: &mut Vec<TreeNode>,
    ) -> usize {
        let pos = idx.iter().filter(|&&i| self.data.y(i)).count();
        let total = idx.len();
        let make_leaf = |nodes: &mut Vec<TreeNode>| {
            nodes.push(TreeNode::Leaf {
                p_pos: if total == 0 {
                    0.5
                } else {
                    pos as f64 / total as f64
                },
            });
            nodes.len() - 1
        };
        if depth >= self.cfg.max_depth || total < self.cfg.min_split || pos == 0 || pos == total {
            return make_leaf(nodes);
        }
        // Feature subsample.
        let m = if self.cfg.features_per_split == 0 {
            (self.features as f64).sqrt().ceil() as usize
        } else {
            self.cfg.features_per_split
        }
        .clamp(1, self.features);
        let mut best: Option<(usize, f64, f64)> = None; // (feature, threshold, impurity)
        let parent_gini = Self::gini(pos, total);
        for _ in 0..m {
            let f = rng.gen_range(0..self.features);
            // Candidate thresholds: a few sample values of this feature.
            let mut values: Vec<f64> = idx
                .iter()
                .take(32)
                .map(|&i| self.data.x(i).get(f))
                .collect();
            values.sort_by(f64::total_cmp);
            values.dedup();
            if values.len() < 2 {
                continue;
            }
            for w in values.windows(2) {
                let threshold = (w[0] + w[1]) / 2.0;
                let (mut lp, mut lt) = (0usize, 0usize);
                for &i in idx.iter() {
                    if self.data.x(i).get(f) <= threshold {
                        lt += 1;
                        if self.data.y(i) {
                            lp += 1;
                        }
                    }
                }
                let (rt, rp) = (total - lt, pos - lp);
                if lt == 0 || rt == 0 {
                    continue;
                }
                let impurity = (lt as f64 * Self::gini(lp, lt) + rt as f64 * Self::gini(rp, rt))
                    / total as f64;
                if impurity + 1e-12 < best.map(|b| b.2).unwrap_or(parent_gini) {
                    best = Some((f, threshold, impurity));
                }
            }
        }
        let Some((feature, threshold, _)) = best else {
            return make_leaf(nodes);
        };
        let (mut left_idx, mut right_idx): (Vec<usize>, Vec<usize>) = idx
            .iter()
            .partition(|&&i| self.data.x(i).get(feature) <= threshold);
        let at = nodes.len();
        nodes.push(TreeNode::Leaf { p_pos: 0.5 }); // placeholder
        let left = self.build(&mut left_idx, depth + 1, rng, nodes);
        let right = self.build(&mut right_idx, depth + 1, rng, nodes);
        nodes[at] = TreeNode::Split {
            feature,
            threshold,
            left,
            right,
        };
        at
    }
}

/// The random forest.
#[derive(Debug, Clone)]
pub struct RandomForest {
    cfg: RandomForestConfig,
    trees: Vec<Tree>,
}

impl RandomForest {
    /// New, unfitted forest.
    pub fn new(cfg: RandomForestConfig) -> Self {
        RandomForest {
            cfg,
            trees: Vec::new(),
        }
    }

    /// Number of fitted trees.
    pub fn tree_count(&self) -> usize {
        self.trees.len()
    }

    /// Serializes the fitted forest to a compact line-oriented text form
    /// (the train-stage checkpoint payload). Thresholds and leaf
    /// probabilities are written as `f64::to_bits` integers so
    /// [`decode`](RandomForest::decode) reproduces scores bit-for-bit.
    pub fn encode(&self) -> String {
        let mut out = format!(
            "rf1 {} {} {} {} {}\n",
            self.cfg.trees,
            self.cfg.max_depth,
            self.cfg.min_split,
            self.cfg.features_per_split,
            self.cfg.seed
        );
        for tree in &self.trees {
            out.push_str(&format!("T {}\n", tree.nodes.len()));
            for node in &tree.nodes {
                match node {
                    TreeNode::Leaf { p_pos } => {
                        out.push_str(&format!("L {}\n", p_pos.to_bits()));
                    }
                    TreeNode::Split {
                        feature,
                        threshold,
                        left,
                        right,
                    } => {
                        out.push_str(&format!(
                            "S {feature} {} {left} {right}\n",
                            threshold.to_bits()
                        ));
                    }
                }
            }
        }
        out
    }

    /// Inverse of [`encode`](RandomForest::encode).
    pub fn decode(text: &str) -> Result<RandomForest, String> {
        let mut lines = text.lines();
        let header = lines.next().ok_or("empty forest encoding")?;
        let mut parts = header.split_whitespace();
        if parts.next() != Some("rf1") {
            return Err("bad forest magic (expected rf1)".into());
        }
        let mut field = |name: &str| -> Result<u64, String> {
            parts
                .next()
                .and_then(|s| s.parse().ok())
                .ok_or_else(|| format!("bad forest header field {name}"))
        };
        let cfg = RandomForestConfig {
            trees: field("trees")? as usize,
            max_depth: field("max_depth")? as usize,
            min_split: field("min_split")? as usize,
            features_per_split: field("features_per_split")? as usize,
            seed: field("seed")?,
        };
        let mut trees = Vec::new();
        while let Some(line) = lines.next() {
            let count: usize = line
                .strip_prefix("T ")
                .and_then(|s| s.parse().ok())
                .ok_or_else(|| format!("expected tree header, got {line:?}"))?;
            let mut nodes = Vec::with_capacity(count);
            for _ in 0..count {
                let line = lines.next().ok_or("truncated tree")?;
                let mut parts = line.split_whitespace();
                match parts.next() {
                    Some("L") => {
                        let bits: u64 = parts
                            .next()
                            .and_then(|s| s.parse().ok())
                            .ok_or_else(|| format!("bad leaf line {line:?}"))?;
                        nodes.push(TreeNode::Leaf {
                            p_pos: f64::from_bits(bits),
                        });
                    }
                    Some("S") => {
                        let mut num = |what: &str| -> Result<u64, String> {
                            parts
                                .next()
                                .and_then(|s| s.parse().ok())
                                .ok_or_else(|| format!("bad split {what} in {line:?}"))
                        };
                        let feature = num("feature")? as usize;
                        let threshold = f64::from_bits(num("threshold")?);
                        let left = num("left")? as usize;
                        let right = num("right")? as usize;
                        if left >= count || right >= count {
                            return Err(format!("split child out of bounds in {line:?}"));
                        }
                        nodes.push(TreeNode::Split {
                            feature,
                            threshold,
                            left,
                            right,
                        });
                    }
                    _ => return Err(format!("bad node line {line:?}")),
                }
            }
            trees.push(Tree { nodes });
        }
        Ok(RandomForest { cfg, trees })
    }
}

impl Classifier for RandomForest {
    fn fit(&mut self, data: &Dataset) {
        self.trees.clear();
        if data.is_empty() {
            return;
        }
        let mut rng = StdRng::seed_from_u64(self.cfg.seed);
        for _ in 0..self.cfg.trees {
            let bag = data.bootstrap(&mut rng);
            let builder = Builder {
                data: &bag,
                cfg: &self.cfg,
                features: data.dim(),
            };
            let mut idx: Vec<usize> = (0..bag.len()).collect();
            let mut nodes = Vec::new();
            // The root lands at index 0 because build pushes it first (the
            // placeholder trick keeps child order stable for splits).
            builder.build(&mut idx, 0, &mut rng, &mut nodes);
            self.trees.push(Tree { nodes });
        }
    }

    fn score(&self, x: &SparseVec) -> f64 {
        if self.trees.is_empty() {
            return 0.5;
        }
        self.trees.iter().map(|t| t.score(x)).sum::<f64>() / self.trees.len() as f64
    }

    fn name(&self) -> &'static str {
        "RandomForest"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn xor_ish() -> Dataset {
        // Positive iff dim0 high XOR dim1 high — needs depth > 1.
        let mut d = Dataset::new(2);
        for i in 0..25 {
            let jitter = (i % 5) as f64 * 0.01;
            let mut a = SparseVec::new();
            a.add(0, 1.0 + jitter);
            d.push(a, true);
            let mut b = SparseVec::new();
            b.add(1, 1.0 + jitter);
            d.push(b, true);
            let mut c = SparseVec::new();
            c.add(0, 1.0 + jitter);
            c.add(1, 1.0 + jitter);
            d.push(c, false);
            d.push(SparseVec::new(), false);
        }
        d
    }

    #[test]
    fn forest_learns_xor() {
        let mut m = RandomForest::new(RandomForestConfig {
            trees: 30,
            ..Default::default()
        });
        m.fit(&xor_ish());
        let mut a = SparseVec::new();
        a.add(0, 1.0);
        assert!(m.predict(&a), "dim0-only should be positive");
        let mut both = SparseVec::new();
        both.add(0, 1.0);
        both.add(1, 1.0);
        assert!(!m.predict(&both), "both-high should be negative");
        assert!(!m.predict(&SparseVec::new()), "empty should be negative");
    }

    #[test]
    fn deterministic_per_seed() {
        let data = xor_ish();
        let mut a = RandomForest::new(RandomForestConfig {
            trees: 10,
            seed: 5,
            ..Default::default()
        });
        let mut b = RandomForest::new(RandomForestConfig {
            trees: 10,
            seed: 5,
            ..Default::default()
        });
        a.fit(&data);
        b.fit(&data);
        let mut q = SparseVec::new();
        q.add(0, 0.7);
        assert_eq!(a.score(&q), b.score(&q));
    }

    #[test]
    fn empty_data_scores_half() {
        let mut m = RandomForest::new(RandomForestConfig::default());
        m.fit(&Dataset::new(3));
        assert_eq!(m.score(&SparseVec::new()), 0.5);
    }

    #[test]
    fn pure_class_data_yields_constant() {
        let mut d = Dataset::new(2);
        for _ in 0..10 {
            let mut v = SparseVec::new();
            v.add(0, 1.0);
            d.push(v, true);
        }
        let mut m = RandomForest::new(RandomForestConfig {
            trees: 5,
            ..Default::default()
        });
        m.fit(&d);
        assert!(m.score(&SparseVec::new()) > 0.9);
    }

    #[test]
    fn encode_decode_round_trips_scores_exactly() {
        let mut m = RandomForest::new(RandomForestConfig {
            trees: 12,
            seed: 3,
            ..Default::default()
        });
        m.fit(&xor_ish());
        let decoded = RandomForest::decode(&m.encode()).unwrap();
        assert_eq!(decoded.tree_count(), m.tree_count());
        for i in 0..20 {
            let mut q = SparseVec::new();
            q.add(i % 2, 0.1 * i as f64);
            assert_eq!(m.score(&q).to_bits(), decoded.score(&q).to_bits());
        }
        // Malformed encodings are rejected, never panic.
        assert!(RandomForest::decode("").is_err());
        assert!(RandomForest::decode("rf2 1 1 1 0 0").is_err());
        assert!(RandomForest::decode("rf1 1 1 1 0 0\nT 2\nL 0").is_err());
        assert!(RandomForest::decode("rf1 1 1 1 0 0\nT 1\nS 0 0 5 6").is_err());
    }

    #[test]
    fn tree_count_matches_config() {
        let mut m = RandomForest::new(RandomForestConfig {
            trees: 7,
            ..Default::default()
        });
        m.fit(&xor_ish());
        assert_eq!(m.tree_count(), 7);
    }
}
