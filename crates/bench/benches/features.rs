//! Feature-extraction benchmarks over the page-analysis layer: cold
//! (cache disabled — every page runs parse/render/OCR) vs warm (the
//! content-addressed cache pre-populated, so extraction is hash probe +
//! embed). The workload is template-heavy like a real squatting
//! population: many captures, few distinct page bodies. The committed
//! `BENCH_features.json` (written by
//! `cargo run --release --bin features_baseline`) records the same
//! workload so regressions show up as a diff.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use squatphi::FeatureExtractor;
use squatphi_squat::BrandRegistry;
use squatphi_web::behavior::{Cloaking, LifetimePattern, PhishingProfile, ScamKind};
use squatphi_web::pages;

/// Sixteen distinct page bodies: phishing variants, brand pages, benign
/// and parked templates.
fn corpus(registry: &BrandRegistry) -> Vec<String> {
    let mut out = Vec::new();
    for (i, brand) in registry.brands().iter().take(4).enumerate() {
        out.push(pages::brand_login_page(brand));
        let profile = PhishingProfile {
            brand: brand.id,
            scam: ScamKind::FakeLogin,
            layout_obfuscation: (i % 4) as u8,
            string_obfuscation: i % 2 == 0,
            code_obfuscation: i % 3 == 0,
            cloaking: Cloaking::None,
            lifetime: LifetimePattern::Stable,
        };
        out.push(pages::phishing_page(
            brand,
            &profile,
            &format!("{}-pay.com", brand.label),
            i as u64,
        ));
        out.push(pages::benign_page(
            &format!("shop{i}.example.com"),
            i as u64,
        ));
        out.push(pages::parked_page(&format!("parked{i}.example.com")));
    }
    out
}

/// A batch of `n` captures cycled over the distinct corpus.
fn batch(corpus: &[String], n: usize) -> Vec<&str> {
    (0..n).map(|i| corpus[i % corpus.len()].as_str()).collect()
}

fn bench_features(c: &mut Criterion) {
    let registry = BrandRegistry::with_size(16);
    let corpus = corpus(&registry);

    let mut group = c.benchmark_group("features/extract_batch");
    group.sample_size(10);

    for &size in &[1usize, 64, 512] {
        let htmls = batch(&corpus, size);
        let threads = if size == 1 { 1 } else { 4 };
        group.throughput(Throughput::Elements(size as u64));

        group.bench_with_input(BenchmarkId::new("cold", size), &htmls, |b, htmls| {
            let fx = FeatureExtractor::uncached(&registry);
            b.iter(|| black_box(fx.extract_batch(htmls, threads).len()))
        });

        group.bench_with_input(BenchmarkId::new("warm", size), &htmls, |b, htmls| {
            let fx = FeatureExtractor::new(&registry);
            fx.extract_batch(htmls, threads); // pre-populate the cache
            b.iter(|| black_box(fx.extract_batch(htmls, threads).len()))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_features);
criterion_main!(benches);
