//! DNS wire codec and snapshot-scan throughput.

use criterion::{black_box, criterion_group, criterion_main, Criterion, Throughput};
use squatphi_dnsdb::{scan, synth, SnapshotConfig};
use squatphi_dnswire::{Message, RData, Rcode, RecordType, ResourceRecord};
use squatphi_squat::{BrandRegistry, SquatDetector};
use std::net::Ipv4Addr;

fn bench_wire_codec(c: &mut Criterion) {
    let query = Message::query(0x4242, "mail.google-app.de", RecordType::A);
    let mut response = Message::response_to(&query, Rcode::NoError);
    for i in 0..4 {
        response.answers.push(ResourceRecord {
            name: "mail.google-app.de".to_string(),
            ttl: 300,
            rdata: RData::A(Ipv4Addr::new(198, 51, 100, i)),
        });
    }
    let wire = response.encode().expect("encode");

    c.bench_function("dnswire/encode_response", |b| {
        b.iter(|| black_box(&response).encode().expect("encode"))
    });
    c.bench_function("dnswire/decode_response", |b| {
        b.iter(|| Message::decode(black_box(&wire)).expect("decode"))
    });
}

fn bench_scan(c: &mut Criterion) {
    let registry = BrandRegistry::paper();
    let detector = SquatDetector::new(&registry);
    let cfg = SnapshotConfig {
        benign_records: 50_000,
        squatting_records: 200,
        subdomain_fraction: 0.25,
        seed: 1,
    };
    let (store, _) = synth::generate(&cfg, &registry);

    let mut group = c.benchmark_group("scan");
    group.sample_size(10);
    group.throughput(Throughput::Elements(store.len() as u64));
    group.bench_function("50k_records_1_thread", |b| {
        b.iter(|| black_box(scan(&store, &registry, &detector, 1)).total_matches())
    });
    group.bench_function("50k_records_8_threads", |b| {
        b.iter(|| black_box(scan(&store, &registry, &detector, 8)).total_matches())
    });
    group.finish();
}

fn bench_snapshot_generation(c: &mut Criterion) {
    let registry = BrandRegistry::with_size(100);
    let cfg = SnapshotConfig {
        benign_records: 20_000,
        squatting_records: 500,
        subdomain_fraction: 0.25,
        seed: 2,
    };
    let mut group = c.benchmark_group("synth");
    group.sample_size(10);
    group.throughput(Throughput::Elements(20_500));
    group.bench_function("generate_20k_records", |b| {
        b.iter(|| black_box(synth::generate(&cfg, &registry)).0.len())
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_wire_codec,
    bench_scan,
    bench_snapshot_generation
);
criterion_main!(benches);
