//! End-to-end pipeline cost at test scale, plus the crawl-transport
//! ablation (in-process vs the threaded worker pool at different widths).

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use squatphi::{RunOptions, SimConfig, SquatPhi};
use squatphi_crawler::{crawl_all, CrawlConfig, InProcessTransport};
use squatphi_squat::{BrandRegistry, SquatType};
use squatphi_web::{WebWorld, WorldConfig};
use std::net::Ipv4Addr;
use std::sync::Arc;

fn bench_pipeline(c: &mut Criterion) {
    let mut group = c.benchmark_group("pipeline");
    group.sample_size(10);
    group.bench_function("tiny_full_run", |b| {
        b.iter(|| {
            let result = SquatPhi::try_run(&SimConfig::tiny(), &RunOptions::default())
                .expect("tiny pipeline runs clean");
            black_box(result.confirmed_domains().len())
        })
    });
    group.finish();
}

fn bench_crawl_width(c: &mut Criterion) {
    let registry = BrandRegistry::with_size(20);
    let mut squats = Vec::new();
    for (i, brand) in registry.brands().iter().enumerate() {
        for j in 0..30 {
            squats.push((
                format!("{}-w{j}.com", brand.label),
                i,
                SquatType::Combo,
                Ipv4Addr::new(198, 51, i as u8, j as u8),
            ));
        }
    }
    let world = Arc::new(WebWorld::build(
        &squats,
        &registry,
        &WorldConfig {
            phishing_domains: 60,
            seed: 5,
            ..WorldConfig::default()
        },
    ));
    let transport = InProcessTransport::new(world);
    let jobs: Vec<_> = squats
        .iter()
        .map(|(d, b, t, _)| (d.clone(), *b, *t))
        .collect();

    let mut group = c.benchmark_group("ablation/crawl_workers");
    group.sample_size(10);
    for workers in [1usize, 4, 16] {
        group.bench_with_input(
            BenchmarkId::from_parameter(workers),
            &workers,
            |b, &workers| {
                b.iter(|| {
                    let cfg = CrawlConfig::builder()
                        .workers(workers)
                        .build()
                        .expect("bench worker counts are nonzero");
                    let (records, _) = crawl_all(&jobs, &registry, &transport, &cfg);
                    black_box(records.len())
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_pipeline, bench_crawl_width);
criterion_main!(benches);
