//! pHash NN-index benchmarks (the visual-similarity lookup hot path).
//!
//! `cargo bench --bench phash` compares radius and k-NN lookups through
//! [`HashIndex`] (multi-index hashing + BK fallback) against the preserved
//! [`linear`] oracle on a 65k-hash seeded corpus, plus the one-off build
//! cost. The committed `BENCH_phash.json` (written by `cargo run --release
//! --bin phash_baseline`) records the same comparison on a 1M-hash corpus.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use rand::prelude::*;
use squatphi_imghash::index::{linear, HashIndex};
use squatphi_imghash::ImageHash;

const CORPUS: usize = 65_536;
const QUERIES: usize = 64;

/// Seeded corpus: 80% uniform hashes, 20% clustered within a few flips of
/// a small center set (the realistic screenshot-hash shape: most pages
/// unrelated, phishing variants clustered near their brand).
fn corpus() -> Vec<ImageHash> {
    let mut rng = StdRng::seed_from_u64(0xbe7c);
    let centers: Vec<u64> = (0..64).map(|_| rng.gen()).collect();
    (0..CORPUS)
        .map(|i| {
            if i % 5 == 0 {
                let mut h = centers[rng.gen_range(0..centers.len())];
                for _ in 0..rng.gen_range(0..=8usize) {
                    h ^= 1u64 << rng.gen_range(0..64u32);
                }
                ImageHash(h)
            } else {
                ImageHash(rng.gen())
            }
        })
        .collect()
}

/// Half corpus members perturbed by a few flips, half random misses.
fn queries(corpus: &[ImageHash]) -> Vec<ImageHash> {
    let mut rng = StdRng::seed_from_u64(0x9e7);
    (0..QUERIES)
        .map(|i| {
            if i % 2 == 0 {
                let mut h = corpus[rng.gen_range(0..corpus.len())].0;
                for _ in 0..rng.gen_range(0..=6usize) {
                    h ^= 1u64 << rng.gen_range(0..64u32);
                }
                ImageHash(h)
            } else {
                ImageHash(rng.gen())
            }
        })
        .collect()
}

fn bench_within(c: &mut Criterion) {
    let corpus = corpus();
    let queries = queries(&corpus);
    let index = HashIndex::from_hashes(corpus.iter().copied());

    for radius in [2u32, 8] {
        let mut group = c.benchmark_group(format!("phash/within_r{radius}_65536"));
        group.throughput(Throughput::Elements(queries.len() as u64));
        group.bench_with_input(BenchmarkId::new("index", radius), &radius, |b, &r| {
            b.iter(|| {
                let mut found = 0usize;
                for q in &queries {
                    found += index.within(black_box(q), r).len();
                }
                found
            })
        });
        group.bench_with_input(BenchmarkId::new("linear", radius), &radius, |b, &r| {
            b.iter(|| {
                let mut found = 0usize;
                for q in &queries {
                    found += linear::within(&corpus, black_box(q), r).len();
                }
                found
            })
        });
        group.finish();
    }
}

fn bench_nearest(c: &mut Criterion) {
    let corpus = corpus();
    let queries = queries(&corpus);
    let index = HashIndex::from_hashes(corpus.iter().copied());

    let mut group = c.benchmark_group("phash/nearest_k5_65536");
    group.throughput(Throughput::Elements(queries.len() as u64));
    group.bench_function("index", |b| {
        b.iter(|| {
            let mut found = 0usize;
            for q in &queries {
                found += index.nearest(black_box(q), 5).len();
            }
            found
        })
    });
    group.bench_function("linear", |b| {
        b.iter(|| {
            let mut found = 0usize;
            for q in &queries {
                found += linear::nearest(&corpus, black_box(q), 5).len();
            }
            found
        })
    });
    group.finish();
}

fn bench_build(c: &mut Criterion) {
    let corpus = corpus();
    let mut group = c.benchmark_group("phash/build_65536");
    group.sample_size(10);
    group.throughput(Throughput::Elements(corpus.len() as u64));
    group.bench_function("from_hashes", |b| {
        b.iter(|| black_box(HashIndex::from_hashes(corpus.iter().copied())).len())
    });
    group.finish();
}

criterion_group!(benches, bench_within, bench_nearest, bench_build);
criterion_main!(benches);
