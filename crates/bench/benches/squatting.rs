//! Squatting generation and detection throughput, plus the ablation the
//! DESIGN.md calls out: per-record normalization lookups (our detector)
//! vs pre-generating every candidate per brand (the DNSTwist approach).

use criterion::{black_box, criterion_group, criterion_main, Criterion, Throughput};
use squatphi_domain::DomainName;
use squatphi_squat::gen::{generate_all, GenBudget};
use squatphi_squat::{BrandRegistry, SquatDetector};

fn bench_generation(c: &mut Criterion) {
    let registry = BrandRegistry::with_size(50);
    let brand = registry.by_label("facebook").expect("facebook");
    let budget = GenBudget::default();
    c.bench_function("gen/candidates_per_brand", |b| {
        b.iter(|| black_box(generate_all(black_box(brand), budget)).len())
    });
}

fn bench_detection(c: &mut Criterion) {
    let registry = BrandRegistry::paper();
    let detector = SquatDetector::new(&registry);

    // A realistic record mix: mostly misses, some hits of each type.
    let domains: Vec<DomainName> = [
        "winterpillow.net",
        "almond-harvest.com",
        "cobble123.de",
        "faceb00k.pw",
        "goofle.com.ua",
        "paypal-cash.com",
        "facebook.audi",
        "fcaebook.org",
        "bakerydonut.ru",
        "squirrelgarden.org",
    ]
    .iter()
    .map(|s| DomainName::parse(s).expect("valid"))
    .collect();

    let mut group = c.benchmark_group("detect");
    group.throughput(Throughput::Elements(domains.len() as u64));
    group.bench_function("classify_mixed_batch", |b| {
        b.iter(|| {
            let mut hits = 0usize;
            for d in &domains {
                if detector.classify(black_box(d)).is_some() {
                    hits += 1;
                }
            }
            black_box(hits)
        })
    });
    group.finish();

    c.bench_function("detect/build_index_702_brands", |b| {
        b.iter(|| black_box(SquatDetector::new(black_box(&registry))))
    });
}

fn bench_dnstwist_style_ablation(c: &mut Criterion) {
    // The pre-generate-everything strategy (DNSTwist's): build the full
    // candidate table for every brand and hash-join records against it.
    // The build cost dwarfs the probing detector's index build; per-record
    // classification is then a single hash lookup for both.
    use squatphi_squat::pregen::PregeneratedDetector;
    let registry = BrandRegistry::with_size(50);
    let mut group = c.benchmark_group("ablation/strategy");
    group.sample_size(10);
    group.bench_function("pregenerate_build_50_brands", |b| {
        b.iter(|| {
            black_box(PregeneratedDetector::build(&registry, GenBudget::default()))
                .candidate_count()
        })
    });
    group.bench_function("probing_build_50_brands", |b| {
        b.iter(|| black_box(SquatDetector::new(black_box(&registry))))
    });

    let pregen = PregeneratedDetector::build(&registry, GenBudget::default());
    let probing = SquatDetector::new(&registry);
    let hit = DomainName::parse("facebook-account.com").expect("valid");
    let miss = DomainName::parse("winterpillow.net").expect("valid");
    group.bench_function("pregenerate_classify", |b| {
        b.iter(|| {
            black_box(pregen.classify(black_box(&hit)));
            black_box(pregen.classify(black_box(&miss)))
        })
    });
    group.bench_function("probing_classify", |b| {
        b.iter(|| {
            black_box(probing.classify(black_box(&hit)));
            black_box(probing.classify(black_box(&miss)))
        })
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_generation,
    bench_detection,
    bench_dnstwist_style_ablation
);
criterion_main!(benches);
