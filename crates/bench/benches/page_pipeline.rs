//! Per-page pipeline costs: HTML parsing, rendering, OCR, image hashing.

use criterion::{black_box, criterion_group, criterion_main, Criterion, Throughput};
use squatphi_bench::sample_phishing_page;
use squatphi_html::parse;
use squatphi_imghash::{average_hash, difference_hash, perceptual_hash};
use squatphi_ocr::{recognize, OcrConfig};
use squatphi_render::{render_page, RenderOptions};

fn bench_html(c: &mut Criterion) {
    let html = sample_phishing_page();
    let mut group = c.benchmark_group("html");
    group.throughput(Throughput::Bytes(html.len() as u64));
    group.bench_function("parse_phishing_page", |b| {
        b.iter(|| black_box(parse(black_box(&html))).len())
    });
    group.finish();

    let doc = parse(&html);
    c.bench_function("html/extract_text_and_forms", |b| {
        b.iter(|| {
            let t = squatphi_html::extract::extract_text(black_box(&doc));
            let f = squatphi_html::extract::extract_forms(black_box(&doc));
            black_box((t.headers.len(), f.len()))
        })
    });
    c.bench_function("html/js_indicator_scan", |b| {
        b.iter(|| black_box(squatphi_html::js::scan_document(black_box(&doc))).eval_calls)
    });
}

fn bench_render_and_ocr(c: &mut Criterion) {
    let doc = parse(&sample_phishing_page());
    let opts = RenderOptions::default();
    c.bench_function("render/phishing_page_360x520", |b| {
        b.iter(|| black_box(render_page(black_box(&doc), &opts)).mean())
    });

    let bmp = render_page(&doc, &opts);
    let ocr_cfg = OcrConfig::default();
    c.bench_function("ocr/recognize_phishing_page", |b| {
        b.iter(|| black_box(recognize(black_box(&bmp), &ocr_cfg)).lines.len())
    });
}

fn bench_hashing(c: &mut Criterion) {
    let bmp = render_page(&parse(&sample_phishing_page()), &RenderOptions::default());
    c.bench_function("imghash/average", |b| {
        b.iter(|| black_box(average_hash(black_box(&bmp))))
    });
    c.bench_function("imghash/difference", |b| {
        b.iter(|| black_box(difference_hash(black_box(&bmp))))
    });
    c.bench_function("imghash/perceptual_dct", |b| {
        b.iter(|| black_box(perceptual_hash(black_box(&bmp))))
    });
}

criterion_group!(benches, bench_html, bench_render_and_ocr, bench_hashing);
criterion_main!(benches);
