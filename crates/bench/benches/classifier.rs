//! Feature extraction and classifier train/predict costs, including the
//! random-forest size sweep from the DESIGN.md ablation list.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use squatphi::train::build_ground_truth;
use squatphi::FeatureExtractor;
use squatphi_bench::sample_phishing_page;
use squatphi_ml::{Classifier, Dataset, GaussianNb, Knn, RandomForest, RandomForestConfig};
use squatphi_squat::BrandRegistry;
use squatphi_web::pages;

fn fixture() -> (FeatureExtractor, Dataset) {
    let registry = BrandRegistry::with_size(40);
    let fx = FeatureExtractor::new(&registry);
    let mut phishing = Vec::new();
    let mut benign = Vec::new();
    for (i, brand) in registry.brands().iter().enumerate() {
        phishing.push(pages::non_squatting_phishing_page(
            brand,
            i % 2 == 0,
            &format!("{}-x.com", brand.label),
            i as u64,
        ));
        benign.push(pages::benign_page(&format!("b{i}.com"), i as u64));
        benign.push(pages::confusing_benign_page(
            &format!("c{i}.com"),
            Some(&brand.label),
            i as u64,
        ));
    }
    let p: Vec<&str> = phishing.iter().map(String::as_str).collect();
    let n: Vec<&str> = benign.iter().map(String::as_str).collect();
    let data = build_ground_truth(&fx, &p, &n, 8);
    (fx, data)
}

fn bench_feature_extraction(c: &mut Criterion) {
    let registry = BrandRegistry::paper();
    let fx = FeatureExtractor::new(&registry);
    let html = sample_phishing_page();
    c.bench_function("features/extract_one_page", |b| {
        b.iter(|| black_box(fx.extract(black_box(&html))).nnz())
    });
}

fn bench_training(c: &mut Criterion) {
    let (_fx, data) = fixture();
    let mut group = c.benchmark_group("train");
    group.sample_size(10);
    group.bench_function("gaussian_nb", |b| {
        b.iter(|| {
            let mut m = GaussianNb::new();
            m.fit(black_box(&data));
            black_box(m.score(data.x(0)))
        })
    });
    group.bench_function("random_forest_60_trees", |b| {
        b.iter(|| {
            let mut m = RandomForest::new(RandomForestConfig {
                trees: 60,
                ..Default::default()
            });
            m.fit(black_box(&data));
            black_box(m.score(data.x(0)))
        })
    });
    group.finish();
}

fn bench_prediction(c: &mut Criterion) {
    let (_fx, data) = fixture();
    let mut rf = RandomForest::new(RandomForestConfig::default());
    rf.fit(&data);
    let mut knn = Knn::new(5);
    knn.fit(&data);
    let x = data.x(0);
    c.bench_function("predict/random_forest", |b| {
        b.iter(|| black_box(rf.score(black_box(x))))
    });
    c.bench_function("predict/knn", |b| {
        b.iter(|| black_box(knn.score(black_box(x))))
    });
}

fn bench_forest_size_ablation(c: &mut Criterion) {
    let (_fx, data) = fixture();
    let mut group = c.benchmark_group("ablation/forest_size");
    group.sample_size(10);
    for trees in [10usize, 30, 60, 120] {
        group.bench_with_input(BenchmarkId::from_parameter(trees), &trees, |b, &trees| {
            b.iter(|| {
                let mut m = RandomForest::new(RandomForestConfig {
                    trees,
                    ..Default::default()
                });
                m.fit(black_box(&data));
                black_box(m.tree_count())
            })
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_feature_extraction,
    bench_training,
    bench_prediction,
    bench_forest_size_ablation
);
criterion_main!(benches);
