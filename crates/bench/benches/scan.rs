//! Scan hot-path benchmarks (the ISSUE's throughput trajectory).
//!
//! `cargo bench --bench scan` exercises the two layers the baseline file
//! tracks: the per-record `classify` fast path (zero-alloc for ASCII
//! labels) and the full multi-threaded `scan`. The committed
//! `BENCH_scan.json` (written by `cargo run --release --bin scan_baseline`)
//! records the same workload so regressions show up as a diff.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use squatphi_dnsdb::{scan, synth, SnapshotConfig};
use squatphi_domain::DomainName;
use squatphi_squat::legacy::LegacyDetector;
use squatphi_squat::{BrandRegistry, ClassifyStats, SquatDetector};

/// A mixed classify workload: misses, near-misses and every squat type.
fn classify_workload() -> Vec<DomainName> {
    [
        "winterpillow.net",
        "pepper-garden.org",
        "example.com",
        "random-hyphen-words.org",
        "faceb00k.pw",
        "facebnok.tk",
        "facebo0ok.com",
        "fcaebook.org",
        "facebook-story.de",
        "facebook.audi",
        "goog1e.nl",
        "go-uberfreight.com",
        "live-microsoftsupport.com",
        "xn--fcebook-8va.com",
    ]
    .iter()
    .map(|s| DomainName::parse(s).expect("valid bench domain"))
    .collect()
}

fn bench_classify(c: &mut Criterion) {
    let registry = BrandRegistry::paper();
    let detector = SquatDetector::new(&registry);
    let domains = classify_workload();

    let mut group = c.benchmark_group("scan/classify");
    group.throughput(Throughput::Elements(domains.len() as u64));
    group.bench_function("mixed_workload", |b| {
        b.iter(|| {
            let mut hits = 0usize;
            for d in &domains {
                if detector.classify(black_box(d)).is_some() {
                    hits += 1;
                }
            }
            hits
        })
    });
    group.bench_function("mixed_workload_with_stats", |b| {
        b.iter(|| {
            let mut stats = ClassifyStats::default();
            for d in &domains {
                black_box(detector.classify_with_stats(black_box(d), &mut stats));
            }
            stats.probes
        })
    });
    group.finish();
}

/// Same mixed workload through the legacy string-probing detector and the
/// fingerprint-indexed one — the single-pass speedup the PR 6 scan rebuild
/// banks on, kept side by side so the gap stays visible.
fn bench_classify_legacy_vs_fingerprint(c: &mut Criterion) {
    let registry = BrandRegistry::paper();
    let fingerprint = SquatDetector::new(&registry);
    let legacy = LegacyDetector::new(&registry);
    let domains = classify_workload();

    let mut group = c.benchmark_group("scan/legacy_vs_fingerprint");
    group.throughput(Throughput::Elements(domains.len() as u64));
    group.bench_function("legacy", |b| {
        b.iter(|| {
            let mut hits = 0usize;
            for d in &domains {
                if legacy.classify(black_box(d)).is_some() {
                    hits += 1;
                }
            }
            hits
        })
    });
    group.bench_function("fingerprint", |b| {
        b.iter(|| {
            let mut hits = 0usize;
            for d in &domains {
                if fingerprint.classify(black_box(d)).is_some() {
                    hits += 1;
                }
            }
            hits
        })
    });
    group.finish();
}

fn bench_scan_threads(c: &mut Criterion) {
    let registry = BrandRegistry::paper();
    let detector = SquatDetector::new(&registry);
    let cfg = SnapshotConfig {
        benign_records: 50_000,
        squatting_records: 200,
        subdomain_fraction: 0.25,
        seed: 1,
    };
    let (store, _) = synth::generate(&cfg, &registry);

    let mut group = c.benchmark_group("scan/50k_records");
    group.sample_size(10);
    group.throughput(Throughput::Elements(store.len() as u64));
    for threads in [1usize, 2, 4, 8] {
        group.bench_with_input(BenchmarkId::from_parameter(threads), &threads, |b, &t| {
            b.iter(|| black_box(scan(&store, &registry, &detector, t)).total_matches())
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_classify,
    bench_classify_legacy_vs_fingerprint,
    bench_scan_threads
);
criterion_main!(benches);
