//! Crawl-engine benchmarks: the worker-pool engine over the plain
//! in-process transport, the zero-fault middleware stack (what the
//! robustness layers cost), and a chaos plan (what fault handling
//! costs). The committed `BENCH_crawl.json` (written by
//! `cargo run --release --bin crawl_baseline`) records the same
//! workload so regressions show up as a diff.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use squatphi_crawler::{
    crawl_all, CircuitBreakerPolicy, CrawlConfig, DeadlinePolicy, FaultPlan, InProcessTransport,
    RetryPolicy, TransportStack,
};
use squatphi_squat::{BrandRegistry, SquatType};
use squatphi_web::{WebWorld, WorldConfig};
use std::net::Ipv4Addr;
use std::sync::Arc;

type Jobs = Vec<(String, usize, SquatType)>;

fn workload() -> (Jobs, BrandRegistry, Arc<WebWorld>) {
    let registry = BrandRegistry::with_size(16);
    let mut squats = Vec::new();
    for (i, b) in registry.brands().iter().enumerate() {
        for j in 0..25 {
            squats.push((
                format!("{}-sq{}.com", b.label, j),
                i,
                SquatType::Combo,
                Ipv4Addr::new(203, 0, (i % 200) as u8, j as u8),
            ));
        }
    }
    let cfg = WorldConfig {
        phishing_domains: 40,
        seed: 1,
        ..WorldConfig::default()
    };
    let world = Arc::new(WebWorld::build(&squats, &registry, &cfg));
    let jobs = squats
        .iter()
        .map(|(d, b, t, _)| (d.clone(), *b, *t))
        .collect();
    (jobs, registry, world)
}

fn cfg(workers: usize) -> CrawlConfig {
    CrawlConfig::builder()
        .workers(workers)
        .build()
        .expect("bench worker counts are nonzero")
}

fn bench_crawl(c: &mut Criterion) {
    let (jobs, registry, world) = workload();

    let mut group = c.benchmark_group("crawl/400_domains");
    group.sample_size(10);
    group.throughput(Throughput::Elements(jobs.len() as u64));

    for workers in [1usize, 4, 8] {
        group.bench_with_input(
            BenchmarkId::new("plain", workers),
            &workers,
            |b, &workers| {
                let transport = InProcessTransport::new(world.clone());
                b.iter(|| {
                    let (records, _) = crawl_all(&jobs, &registry, &transport, &cfg(workers));
                    black_box(records.len())
                })
            },
        );
        group.bench_with_input(
            BenchmarkId::new("stack_zero_fault", workers),
            &workers,
            |b, &workers| {
                b.iter(|| {
                    // The stack is rebuilt per iteration: breaker and
                    // chaos state are per-crawl, like in production use.
                    let stack = TransportStack::new(InProcessTransport::new(world.clone()))
                        .chaos(FaultPlan::none())
                        .retry(RetryPolicy::default())
                        .breaker(CircuitBreakerPolicy::default())
                        .deadline(DeadlinePolicy::default())
                        .build();
                    let (records, _) = crawl_all(&jobs, &registry, &stack, &cfg(workers));
                    black_box(records.len())
                })
            },
        );
        group.bench_with_input(
            BenchmarkId::new("stack_chaos_permille_100", workers),
            &workers,
            |b, &workers| {
                b.iter(|| {
                    let stack = TransportStack::new(InProcessTransport::new(world.clone()))
                        .chaos(FaultPlan::fail_permille(100).with_seed(7))
                        .retry(RetryPolicy::default())
                        .breaker(CircuitBreakerPolicy::default())
                        .deadline(DeadlinePolicy::default())
                        .build();
                    let (records, stats) = crawl_all(&jobs, &registry, &stack, &cfg(workers));
                    black_box((records.len(), stats.transport.injected_total()))
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_crawl);
criterion_main!(benches);
