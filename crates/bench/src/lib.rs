//! Shared fixtures for the benchmark suite.

#![forbid(unsafe_code)]

use squatphi_squat::BrandRegistry;
use squatphi_web::behavior::{Cloaking, LifetimePattern, PhishingProfile, ScamKind};
use squatphi_web::pages;

/// A mid-sized registry shared by benches (full 702 where scan realism
/// matters, smaller where per-item cost is measured).
pub fn registry() -> BrandRegistry {
    BrandRegistry::paper()
}

/// A representative phishing page for page-pipeline benches.
pub fn sample_phishing_page() -> String {
    let registry = BrandRegistry::with_size(10);
    let brand = registry.by_label("paypal").expect("paypal");
    let profile = PhishingProfile {
        brand: brand.id,
        scam: ScamKind::FakeLogin,
        layout_obfuscation: 2,
        string_obfuscation: true,
        code_obfuscation: true,
        cloaking: Cloaking::None,
        lifetime: LifetimePattern::Stable,
    };
    pages::phishing_page(brand, &profile, "paypal-cash.com", 3)
}
