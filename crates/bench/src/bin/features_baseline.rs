//! Writes `BENCH_features.json`: the cold-vs-warm feature-extraction
//! baseline each PR commits so the analysis-cache payoff stays on record.
//!
//! ```text
//! cargo run --release -p squatphi-bench --bin features_baseline [out.json]
//! ```
//!
//! The workload matches `benches/features.rs` (template-heavy corpus: 16
//! distinct page bodies cycled over batches of 1/64/512). Numbers are
//! machine-dependent; the file is a trajectory record, not a CI gate —
//! compare ratios, not absolutes. `BENCH_QUICK=1` runs a single
//! iteration for smoke testing.

use squatphi::FeatureExtractor;
use squatphi_squat::BrandRegistry;
use squatphi_telemetry::Json;
use squatphi_web::behavior::{Cloaking, LifetimePattern, PhishingProfile, ScamKind};
use squatphi_web::pages;
use std::time::Instant;

fn corpus(registry: &BrandRegistry) -> Vec<String> {
    let mut out = Vec::new();
    for (i, brand) in registry.brands().iter().take(4).enumerate() {
        out.push(pages::brand_login_page(brand));
        let profile = PhishingProfile {
            brand: brand.id,
            scam: ScamKind::FakeLogin,
            layout_obfuscation: (i % 4) as u8,
            string_obfuscation: i % 2 == 0,
            code_obfuscation: i % 3 == 0,
            cloaking: Cloaking::None,
            lifetime: LifetimePattern::Stable,
        };
        out.push(pages::phishing_page(
            brand,
            &profile,
            &format!("{}-pay.com", brand.label),
            i as u64,
        ));
        out.push(pages::benign_page(
            &format!("shop{i}.example.com"),
            i as u64,
        ));
        out.push(pages::parked_page(&format!("parked{i}.example.com")));
    }
    out
}

fn main() {
    let out_path = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "BENCH_features.json".to_string());
    let quick = std::env::var_os("BENCH_QUICK").is_some();
    let iterations = if quick { 1 } else { 5 };

    let registry = BrandRegistry::with_size(16);
    let corpus = corpus(&registry);
    eprintln!(
        "[features_baseline] {} distinct pages, {iterations} iteration(s) per batch size",
        corpus.len()
    );

    let mut workload_obj = Json::obj();
    workload_obj.push("distinct_pages", Json::U64(corpus.len() as u64));
    workload_obj.push("brands", Json::U64(registry.len() as u64));

    let batch_sizes = [1usize, 64, 512];
    let mut runs = Vec::new();
    for &size in &batch_sizes {
        let htmls: Vec<&str> = (0..size)
            .map(|i| corpus[i % corpus.len()].as_str())
            .collect();
        let threads = if size == 1 { 1 } else { 4 };

        // Cold: cache disabled, every page fully derived, best-of-N.
        let mut cold_best = f64::INFINITY;
        for _ in 0..iterations {
            let fx = FeatureExtractor::uncached(&registry);
            let t = Instant::now();
            let n = fx.extract_batch(&htmls, threads).len();
            let dt = t.elapsed().as_secs_f64();
            assert_eq!(n, size);
            cold_best = cold_best.min(dt);
        }

        // Warm: cache pre-populated, best-of-N over pure-hit batches.
        let fx = FeatureExtractor::new(&registry);
        fx.extract_batch(&htmls, threads);
        let mut warm_best = f64::INFINITY;
        for _ in 0..iterations {
            let t = Instant::now();
            let n = fx.extract_batch(&htmls, threads).len();
            warm_best = warm_best.min(t.elapsed().as_secs_f64());
            assert_eq!(n, size);
        }
        let m = fx.analyzer().metrics();
        assert_eq!(m.pages, m.cache_hits + m.cache_misses, "metrics drifted");

        let speedup = cold_best / warm_best;
        eprintln!(
            "[features_baseline] batch {size}: cold {:.2}ms, warm {:.2}ms, speedup {speedup:.1}x ({} hits / {} misses)",
            cold_best * 1e3,
            warm_best * 1e3,
            m.cache_hits,
            m.cache_misses,
        );
        // Cache counters are read back from the analyzer's live telemetry
        // registry — the same counters `--json` surfaces serialize.
        let snap = fx.analyzer().telemetry().snapshot();
        let mut run = Json::obj();
        run.push("batch", Json::U64(size as u64));
        run.push("threads", Json::U64(threads as u64));
        run.push("cold_ms", Json::F64(cold_best * 1e3));
        run.push("warm_ms", Json::F64(warm_best * 1e3));
        run.push("speedup", Json::F64(speedup));
        run.push("cache_hits", snap.json_value("analysis.cache_hits"));
        run.push("cache_misses", snap.json_value("analysis.cache_misses"));
        runs.push(run);
    }

    let mut doc = Json::obj();
    doc.push("workload", workload_obj);
    doc.push("iterations", Json::U64(iterations as u64));
    doc.push("runs", Json::Arr(runs));
    let json = doc.render() + "\n";

    std::fs::write(&out_path, json).unwrap_or_else(|e| {
        eprintln!("features_baseline: cannot write {out_path}: {e}");
        std::process::exit(2);
    });
    eprintln!("[features_baseline] baseline written to {out_path}");
}
