//! Writes `BENCH_features.json`: the cold-vs-warm feature-extraction
//! baseline each PR commits so the analysis-cache payoff stays on record.
//!
//! ```text
//! cargo run --release -p squatphi-bench --bin features_baseline [out.json]
//! ```
//!
//! The workload matches `benches/features.rs` (template-heavy corpus: 16
//! distinct page bodies cycled over batches of 1/64/512). Numbers are
//! machine-dependent; the file is a trajectory record, not a CI gate —
//! compare ratios, not absolutes. `BENCH_QUICK=1` runs a single
//! iteration for smoke testing.

use squatphi::FeatureExtractor;
use squatphi_squat::BrandRegistry;
use squatphi_web::behavior::{Cloaking, LifetimePattern, PhishingProfile, ScamKind};
use squatphi_web::pages;
use std::fmt::Write as _;
use std::time::Instant;

fn corpus(registry: &BrandRegistry) -> Vec<String> {
    let mut out = Vec::new();
    for (i, brand) in registry.brands().iter().take(4).enumerate() {
        out.push(pages::brand_login_page(brand));
        let profile = PhishingProfile {
            brand: brand.id,
            scam: ScamKind::FakeLogin,
            layout_obfuscation: (i % 4) as u8,
            string_obfuscation: i % 2 == 0,
            code_obfuscation: i % 3 == 0,
            cloaking: Cloaking::None,
            lifetime: LifetimePattern::Stable,
        };
        out.push(pages::phishing_page(
            brand,
            &profile,
            &format!("{}-pay.com", brand.label),
            i as u64,
        ));
        out.push(pages::benign_page(
            &format!("shop{i}.example.com"),
            i as u64,
        ));
        out.push(pages::parked_page(&format!("parked{i}.example.com")));
    }
    out
}

fn main() {
    let out_path = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "BENCH_features.json".to_string());
    let quick = std::env::var_os("BENCH_QUICK").is_some();
    let iterations = if quick { 1 } else { 5 };

    let registry = BrandRegistry::with_size(16);
    let corpus = corpus(&registry);
    eprintln!(
        "[features_baseline] {} distinct pages, {iterations} iteration(s) per batch size",
        corpus.len()
    );

    let mut json = String::from("{\n");
    let _ = writeln!(json, "  \"workload\": {{");
    let _ = writeln!(json, "    \"distinct_pages\": {},", corpus.len());
    let _ = writeln!(json, "    \"brands\": {}", registry.len());
    let _ = writeln!(json, "  }},");
    let _ = writeln!(json, "  \"iterations\": {iterations},");
    let _ = writeln!(json, "  \"runs\": [");

    let batch_sizes = [1usize, 64, 512];
    for (bi, &size) in batch_sizes.iter().enumerate() {
        let htmls: Vec<&str> = (0..size)
            .map(|i| corpus[i % corpus.len()].as_str())
            .collect();
        let threads = if size == 1 { 1 } else { 4 };

        // Cold: cache disabled, every page fully derived, best-of-N.
        let mut cold_best = f64::INFINITY;
        for _ in 0..iterations {
            let fx = FeatureExtractor::uncached(&registry);
            let t = Instant::now();
            let n = fx.extract_batch(&htmls, threads).len();
            let dt = t.elapsed().as_secs_f64();
            assert_eq!(n, size);
            cold_best = cold_best.min(dt);
        }

        // Warm: cache pre-populated, best-of-N over pure-hit batches.
        let fx = FeatureExtractor::new(&registry);
        fx.extract_batch(&htmls, threads);
        let mut warm_best = f64::INFINITY;
        for _ in 0..iterations {
            let t = Instant::now();
            let n = fx.extract_batch(&htmls, threads).len();
            warm_best = warm_best.min(t.elapsed().as_secs_f64());
            assert_eq!(n, size);
        }
        let m = fx.analyzer().metrics();
        assert_eq!(m.pages, m.cache_hits + m.cache_misses, "metrics drifted");

        let speedup = cold_best / warm_best;
        eprintln!(
            "[features_baseline] batch {size}: cold {:.2}ms, warm {:.2}ms, speedup {speedup:.1}x ({} hits / {} misses)",
            cold_best * 1e3,
            warm_best * 1e3,
            m.cache_hits,
            m.cache_misses,
        );
        let _ = writeln!(json, "    {{");
        let _ = writeln!(json, "      \"batch\": {size},");
        let _ = writeln!(json, "      \"threads\": {threads},");
        let _ = writeln!(json, "      \"cold_ms\": {:.3},", cold_best * 1e3);
        let _ = writeln!(json, "      \"warm_ms\": {:.3},", warm_best * 1e3);
        let _ = writeln!(json, "      \"speedup\": {speedup:.2},");
        let _ = writeln!(json, "      \"cache_hits\": {},", m.cache_hits);
        let _ = writeln!(json, "      \"cache_misses\": {}", m.cache_misses);
        let _ = writeln!(
            json,
            "    }}{}",
            if bi + 1 < batch_sizes.len() { "," } else { "" }
        );
    }
    let _ = writeln!(json, "  ]");
    json.push_str("}\n");

    std::fs::write(&out_path, json).unwrap_or_else(|e| {
        eprintln!("features_baseline: cannot write {out_path}: {e}");
        std::process::exit(2);
    });
    eprintln!("[features_baseline] baseline written to {out_path}");
}
