//! Writes `BENCH_crawl.json`: the crawl-throughput baseline each PR
//! touching the crawl path commits, so the engine + middleware overhead
//! trajectory stays on record.
//!
//! ```text
//! cargo run --release -p squatphi-bench --bin crawl_baseline [out.json]
//! ```
//!
//! The workload matches `benches/crawl.rs` (400 squatting domains, 16
//! brands): each thread count is measured over the plain in-process
//! transport and over the zero-fault middleware stack (chaos none +
//! retry + breaker + deadline), so the stack overhead is one division
//! away. Numbers are machine-dependent; the file is a trajectory record,
//! not a CI gate — compare ratios, not absolutes. The transport counters
//! are deterministic and must not drift across runs. `BENCH_QUICK=1`
//! runs a single iteration for smoke testing.

use squatphi_crawler::{
    crawl_all, CircuitBreakerPolicy, CrawlConfig, DeadlinePolicy, FaultPlan, InProcessTransport,
    RetryPolicy, TransportSnapshot, TransportStack,
};
use squatphi_squat::{BrandRegistry, SquatType};
use squatphi_telemetry::{Json, Registry};
use squatphi_web::{WebWorld, WorldConfig};
use std::net::Ipv4Addr;
use std::sync::Arc;
use std::time::{Duration, Instant};

fn workload() -> (
    Vec<(String, usize, SquatType)>,
    BrandRegistry,
    Arc<WebWorld>,
) {
    let registry = BrandRegistry::with_size(16);
    let mut squats = Vec::new();
    for (i, b) in registry.brands().iter().enumerate() {
        for j in 0..25 {
            squats.push((
                format!("{}-sq{}.com", b.label, j),
                i,
                SquatType::Combo,
                Ipv4Addr::new(203, 0, (i % 200) as u8, j as u8),
            ));
        }
    }
    let cfg = WorldConfig {
        phishing_domains: 40,
        seed: 1,
        ..WorldConfig::default()
    };
    let world = Arc::new(WebWorld::build(&squats, &registry, &cfg));
    let jobs = squats
        .iter()
        .map(|(d, b, t, _)| (d.clone(), *b, *t))
        .collect();
    (jobs, registry, world)
}

fn main() {
    let out_path = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "BENCH_crawl.json".to_string());
    let quick = std::env::var_os("BENCH_QUICK").is_some();
    let iterations = if quick { 1 } else { 5 };

    let (jobs, registry, world) = workload();
    eprintln!(
        "[crawl_baseline] {} domains, {} brands, {iterations} iteration(s) per thread count",
        jobs.len(),
        registry.len()
    );

    let mut workload_obj = Json::obj();
    workload_obj.push("domains", Json::U64(jobs.len() as u64));
    workload_obj.push("brands", Json::U64(registry.len() as u64));
    workload_obj.push("seed", Json::U64(1));

    let thread_counts = [1usize, 2, 4, 8];
    let mut runs = Vec::new();
    for &threads in &thread_counts {
        let cfg = CrawlConfig::builder()
            .workers(threads)
            .build()
            .expect("baseline worker counts are nonzero");

        // Plain transport: best-of-N wall clock.
        let mut plain_best = Duration::MAX;
        for _ in 0..iterations {
            let transport = InProcessTransport::new(world.clone());
            let started = Instant::now();
            let (records, _) = crawl_all(&jobs, &registry, &transport, &cfg);
            assert_eq!(records.len(), jobs.len());
            plain_best = plain_best.min(started.elapsed());
        }

        // Zero-fault middleware stack: best-of-N plus the (run-invariant)
        // transport counters.
        let mut stack_best = Duration::MAX;
        let mut snapshot = TransportSnapshot::default();
        for _ in 0..iterations {
            let stack = TransportStack::new(InProcessTransport::new(world.clone()))
                .chaos(FaultPlan::none())
                .retry(RetryPolicy::default())
                .breaker(CircuitBreakerPolicy::default())
                .deadline(DeadlinePolicy::default())
                .build();
            let started = Instant::now();
            let (records, stats) = crawl_all(&jobs, &registry, &stack, &cfg);
            assert_eq!(records.len(), jobs.len());
            stack_best = stack_best.min(started.elapsed());
            snapshot = stats.transport;
        }

        let rate = |d: Duration| jobs.len() as f64 / d.as_secs_f64().max(1e-9);
        eprintln!(
            "[crawl_baseline] {threads} thread(s): plain {:.0} domains/s, stack {:.0} domains/s",
            rate(plain_best),
            rate(stack_best)
        );
        // Counters come back out of the canonical transport telemetry
        // export, so this file cannot drift from the `--json` schema.
        let reg = Registry::new();
        snapshot.export(&reg.scope("transport"));
        let snap = reg.snapshot();
        let mut run = Json::obj();
        run.push("threads", Json::U64(threads as u64));
        run.push("plain_wall_ms", Json::F64(plain_best.as_secs_f64() * 1e3));
        run.push("plain_domains_per_sec", Json::F64(rate(plain_best)));
        run.push("stack_wall_ms", Json::F64(stack_best.as_secs_f64() * 1e3));
        run.push("stack_domains_per_sec", Json::F64(rate(stack_best)));
        run.push("stack_attempts", snap.json_value("transport.attempts"));
        run.push("stack_successes", snap.json_value("transport.successes"));
        run.push("stack_retries", snap.json_value("transport.retries"));
        run.push("stack_errors_total", Json::U64(snapshot.errors_total()));
        runs.push(run);
    }

    let mut doc = Json::obj();
    doc.push("workload", workload_obj);
    doc.push("iterations", Json::U64(iterations as u64));
    doc.push("runs", Json::Arr(runs));
    let json = doc.render() + "\n";

    std::fs::write(&out_path, json).unwrap_or_else(|e| {
        eprintln!("crawl_baseline: cannot write {out_path}: {e}");
        std::process::exit(2);
    });
    eprintln!("[crawl_baseline] baseline written to {out_path}");
}
