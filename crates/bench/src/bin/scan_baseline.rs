//! Writes `BENCH_scan.json`: the scan-throughput baseline each PR commits
//! so the throughput trajectory of the hot path stays on record.
//!
//! ```text
//! cargo run --release -p squatphi-bench --bin scan_baseline [out.json] [--assert-scaling]
//! ```
//!
//! The workload is a 500k-record synthetic snapshot over the paper-scale
//! registry — an order of magnitude past the unit-bench size, so
//! per-block overheads (sharding, dedupe, worker handoff) show up in the
//! numbers instead of drowning in startup cost. Numbers are
//! machine-dependent; the file is a trajectory record, not a CI gate —
//! compare ratios, not absolutes. `BENCH_QUICK=1` runs a single
//! iteration for smoke testing.
//!
//! Per-run counters are read back from the same telemetry registry
//! export every other surface uses (`ScanOutcome::export` +
//! `ScanMetrics::export`) and rendered with the shared JSON encoder, so
//! the baseline cannot drift from the `--json` schema. Timing values are
//! deliberately kept — measuring them is the point of a benchmark.
//!
//! `--assert-scaling` exits non-zero if the 8-thread records/sec falls
//! below the 1-thread number (the flat-scaling regression PR 6 fixed);
//! the CI scan-bench smoke runs with it.

use squatphi_dnsdb::{scan_with_metrics, synth, ScanMetrics, SnapshotConfig};
use squatphi_squat::{BrandRegistry, SquatDetector};
use squatphi_telemetry::{Json, Registry};

fn main() {
    let mut out_path = "BENCH_scan.json".to_string();
    let mut assert_scaling = false;
    for arg in std::env::args().skip(1) {
        if arg == "--assert-scaling" {
            assert_scaling = true;
        } else {
            out_path = arg;
        }
    }
    let quick = std::env::var_os("BENCH_QUICK").is_some();
    // Best-of-N: a 500k-record scan is a few hundred ms, so a healthy N
    // still finishes in seconds and keeps a noisy neighbour on the
    // benchmark box from masquerading as a throughput regression.
    let iterations = if quick { 1 } else { 12 };

    let registry = BrandRegistry::paper();
    let detector = SquatDetector::new(&registry);
    let cfg = SnapshotConfig {
        benign_records: 500_000,
        squatting_records: 2_000,
        subdomain_fraction: 0.25,
        seed: 1,
    };
    let (store, _) = synth::generate(&cfg, &registry);
    eprintln!(
        "[scan_baseline] {} records, {} brands, {iterations} iteration(s) per thread count",
        store.len(),
        registry.len()
    );

    let mut workload = Json::obj();
    workload.push("records", Json::U64(store.len() as u64));
    workload.push("brands", Json::U64(registry.len() as u64));
    workload.push("squatting_records", Json::U64(cfg.squatting_records as u64));
    workload.push("seed", Json::U64(cfg.seed));

    let thread_counts = [1usize, 2, 4, 8];
    let mut per_thread_rps = Vec::new();
    let mut runs = Vec::new();
    for &threads in &thread_counts {
        // Best-of-N wall clock; counters are identical across iterations.
        let mut best: Option<ScanMetrics> = None;
        let mut matches = 0usize;
        for _ in 0..iterations {
            let (outcome, metrics) = scan_with_metrics(&store, &registry, &detector, threads);
            matches = outcome.total_matches();
            if best.as_ref().map(|b| metrics.wall < b.wall).unwrap_or(true) {
                best = Some(metrics);
            }
        }
        let m = best.expect("at least one iteration");
        per_thread_rps.push((threads, m.records_per_sec()));
        eprintln!(
            "[scan_baseline] {threads} thread(s): {:.0} records/s ({} matches, {}/{} workers)",
            m.records_per_sec(),
            matches,
            m.actual_workers(),
            m.requested_workers,
        );
        // The run row is a view over the canonical telemetry export, not
        // a hand-maintained parallel schema.
        let reg = Registry::new();
        m.export(&reg.scope("scan"));
        let snap = reg.snapshot();
        let mut run = Json::obj();
        run.push("threads", Json::U64(threads as u64));
        run.push("records_per_sec", snap.json_value("scan.records_per_sec"));
        run.push(
            "wall_ms",
            Json::F64(snap.u64_or_zero("scan.wall_nanos") as f64 / 1e6),
        );
        run.push("matches", Json::U64(matches as u64));
        for (key, name) in [
            ("requested_workers", "scan.exec.requested_workers"),
            ("actual_workers", "scan.exec.actual_workers"),
            ("probes", "scan.exec.probes"),
            ("deep_probes", "scan.exec.deep_probes"),
            ("allocations_avoided", "scan.exec.allocations_avoided"),
            ("invalid", "scan.exec.invalid"),
            ("dedupe_collisions", "scan.dedupe_collisions"),
        ] {
            run.push(key, snap.json_value(name));
        }
        runs.push(run);
    }

    let mut doc = Json::obj();
    doc.push("workload", workload);
    doc.push("iterations", Json::U64(iterations as u64));
    doc.push("runs", Json::Arr(runs));
    let json = doc.render() + "\n";

    std::fs::write(&out_path, json).unwrap_or_else(|e| {
        eprintln!("scan_baseline: cannot write {out_path}: {e}");
        std::process::exit(2);
    });
    eprintln!("[scan_baseline] baseline written to {out_path}");

    if assert_scaling {
        let rps_1 = per_thread_rps
            .iter()
            .find(|(t, _)| *t == 1)
            .map(|(_, r)| *r)
            .expect("1-thread run present");
        let rps_8 = per_thread_rps
            .iter()
            .find(|(t, _)| *t == 8)
            .map(|(_, r)| *r)
            .expect("8-thread run present");
        if rps_8 < rps_1 {
            eprintln!(
                "[scan_baseline] FAIL: 8-thread throughput ({rps_8:.0} rec/s) regressed below \
                 1-thread ({rps_1:.0} rec/s)"
            );
            std::process::exit(3);
        }
        eprintln!(
            "[scan_baseline] scaling OK: 8-thread {rps_8:.0} rec/s >= 1-thread {rps_1:.0} rec/s"
        );
    }
}
