//! Writes `BENCH_scan.json`: the scan-throughput baseline each PR commits
//! so the throughput trajectory of the hot path stays on record.
//!
//! ```text
//! cargo run --release -p squatphi-bench --bin scan_baseline [out.json] [--assert-scaling]
//! ```
//!
//! The workload matches `benches/scan.rs` (50k-record synthetic snapshot,
//! paper-scale registry). Numbers are machine-dependent; the file is a
//! trajectory record, not a CI gate — compare ratios, not absolutes.
//! `BENCH_QUICK=1` runs a single iteration for smoke testing.
//!
//! `--assert-scaling` exits non-zero if the 8-thread records/sec falls
//! below the 1-thread number (the flat-scaling regression PR 6 fixed);
//! the CI scan-bench smoke runs with it.

use squatphi_dnsdb::{scan_with_metrics, synth, ScanMetrics, SnapshotConfig};
use squatphi_squat::{BrandRegistry, SquatDetector};
use std::fmt::Write as _;

fn main() {
    let mut out_path = "BENCH_scan.json".to_string();
    let mut assert_scaling = false;
    for arg in std::env::args().skip(1) {
        if arg == "--assert-scaling" {
            assert_scaling = true;
        } else {
            out_path = arg;
        }
    }
    let quick = std::env::var_os("BENCH_QUICK").is_some();
    // Best-of-N: each scan is ~25 ms, so a generous N costs little and
    // keeps a noisy neighbour on the benchmark box from masquerading as
    // a throughput regression.
    let iterations = if quick { 1 } else { 12 };

    let registry = BrandRegistry::paper();
    let detector = SquatDetector::new(&registry);
    let cfg = SnapshotConfig {
        benign_records: 50_000,
        squatting_records: 200,
        subdomain_fraction: 0.25,
        seed: 1,
    };
    let (store, _) = synth::generate(&cfg, &registry);
    eprintln!(
        "[scan_baseline] {} records, {} brands, {iterations} iteration(s) per thread count",
        store.len(),
        registry.len()
    );

    let mut json = String::from("{\n");
    let _ = writeln!(json, "  \"workload\": {{");
    let _ = writeln!(json, "    \"records\": {},", store.len());
    let _ = writeln!(json, "    \"brands\": {},", registry.len());
    let _ = writeln!(
        json,
        "    \"squatting_records\": {},",
        cfg.squatting_records
    );
    let _ = writeln!(json, "    \"seed\": {}", cfg.seed);
    let _ = writeln!(json, "  }},");
    let _ = writeln!(json, "  \"iterations\": {iterations},");
    let _ = writeln!(json, "  \"runs\": [");

    let thread_counts = [1usize, 2, 4, 8];
    let mut per_thread_rps = Vec::new();
    for (ti, &threads) in thread_counts.iter().enumerate() {
        // Best-of-N wall clock; counters are identical across iterations.
        let mut best: Option<ScanMetrics> = None;
        let mut matches = 0usize;
        for _ in 0..iterations {
            let (outcome, metrics) = scan_with_metrics(&store, &registry, &detector, threads);
            matches = outcome.total_matches();
            if best.as_ref().map(|b| metrics.wall < b.wall).unwrap_or(true) {
                best = Some(metrics);
            }
        }
        let m = best.expect("at least one iteration");
        per_thread_rps.push((threads, m.records_per_sec()));
        eprintln!(
            "[scan_baseline] {threads} thread(s): {:.0} records/s ({} matches, {}/{} workers)",
            m.records_per_sec(),
            matches,
            m.actual_workers(),
            m.requested_workers,
        );
        let _ = writeln!(json, "    {{");
        let _ = writeln!(json, "      \"threads\": {threads},");
        let _ = writeln!(
            json,
            "      \"records_per_sec\": {:.1},",
            m.records_per_sec()
        );
        let _ = writeln!(
            json,
            "      \"wall_ms\": {:.3},",
            m.wall.as_secs_f64() * 1e3
        );
        let _ = writeln!(json, "      \"matches\": {matches},");
        let _ = writeln!(
            json,
            "      \"requested_workers\": {},",
            m.requested_workers
        );
        let _ = writeln!(json, "      \"actual_workers\": {},", m.actual_workers());
        let _ = writeln!(json, "      \"probes\": {},", m.probes());
        let _ = writeln!(json, "      \"deep_probes\": {},", m.deep_probes());
        let _ = writeln!(
            json,
            "      \"allocations_avoided\": {},",
            m.allocations_avoided()
        );
        let _ = writeln!(json, "      \"invalid\": {},", m.invalid());
        let _ = writeln!(json, "      \"dedupe_collisions\": {}", m.dedupe_collisions);
        let _ = writeln!(
            json,
            "    }}{}",
            if ti + 1 < thread_counts.len() {
                ","
            } else {
                ""
            }
        );
    }
    let _ = writeln!(json, "  ]");
    json.push_str("}\n");

    std::fs::write(&out_path, json).unwrap_or_else(|e| {
        eprintln!("scan_baseline: cannot write {out_path}: {e}");
        std::process::exit(2);
    });
    eprintln!("[scan_baseline] baseline written to {out_path}");

    if assert_scaling {
        let rps_1 = per_thread_rps
            .iter()
            .find(|(t, _)| *t == 1)
            .map(|(_, r)| *r)
            .expect("1-thread run present");
        let rps_8 = per_thread_rps
            .iter()
            .find(|(t, _)| *t == 8)
            .map(|(_, r)| *r)
            .expect("8-thread run present");
        if rps_8 < rps_1 {
            eprintln!(
                "[scan_baseline] FAIL: 8-thread throughput ({rps_8:.0} rec/s) regressed below \
                 1-thread ({rps_1:.0} rec/s)"
            );
            std::process::exit(3);
        }
        eprintln!(
            "[scan_baseline] scaling OK: 8-thread {rps_8:.0} rec/s >= 1-thread {rps_1:.0} rec/s"
        );
    }
}
