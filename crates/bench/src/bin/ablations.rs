//! Accuracy ablations (DESIGN.md §6): what each design choice buys.
//!
//! ```sh
//! cargo run --release -p squatphi-bench --bin ablations
//! ```
//!
//! * **OCR features on/off** — the paper's key novelty. Without the OCR
//!   channel, string-obfuscated phishing (brand swapped for a homoglyph
//!   twin or baked into a logo image) loses its brand evidence entirely;
//!   we report both the brand-keyword recovery rate and the classifier's
//!   recall on the string-obfuscated subset,
//! * **random-forest size** — AUC/accuracy as a function of tree count.

use squatphi::train::forest_config;
use squatphi::FeatureExtractor;
use squatphi_ml::{Classifier, Dataset, Metrics, RandomForest, RocCurve};
use squatphi_nlp::{remove_stopwords, tokenize, SparseVec};
use squatphi_squat::{Brand, BrandRegistry};
use squatphi_web::behavior::{Cloaking, LifetimePattern, PhishingProfile, ScamKind};
use squatphi_web::pages;

fn main() {
    let registry = BrandRegistry::with_size(120);
    let fx = FeatureExtractor::new(&registry);

    // Positives: half plain, half string-obfuscated. Negatives: the
    // benign page families *without* the brand-operated mirror shells
    // (this ablation isolates obfuscation robustness, not operator
    // identity).
    let mut plain_pos = Vec::new();
    let mut evasive_pos = Vec::new();
    let mut negatives = Vec::new();
    for (i, brand) in registry.brands().iter().enumerate() {
        for k in 0..2u64 {
            let seed = i as u64 * 2 + k;
            plain_pos.push(phishing(brand, false, seed));
            evasive_pos.push(phishing(brand, true, seed));
            negatives.push(pages::benign_page(&format!("n{i}-{k}.com"), seed));
            negatives.push(pages::benign_login_page(
                &format!("l{i}-{k}.com"),
                Some(&brand.label),
                seed,
            ));
            negatives.push(pages::confusing_benign_page(
                &format!("c{i}-{k}.com"),
                Some(&brand.label),
                (seed % 4) * 12, // survey / donate variants only
            ));
        }
    }
    println!(
        "ablation corpus: {} plain + {} string-obfuscated phishing, {} benign\n",
        plain_pos.len(),
        evasive_pos.len(),
        negatives.len()
    );

    for ocr_on in [true, false] {
        let embed = |html: &str| {
            if ocr_on {
                fx.extract(html)
            } else {
                lexical_only(&fx, html)
            }
        };
        // Brand-keyword recovery on the evasive positives.
        let mut recovered = 0usize;
        for (i, html) in evasive_pos.iter().enumerate() {
            let brand = registry.get((i / 2) % registry.len()).expect("brand");
            let v = embed(html);
            if fx
                .space()
                .keyword(&brand.label)
                .map(|d| v.get(d) > 0.0)
                .unwrap_or(false)
            {
                recovered += 1;
            }
        }
        // Classifier trained on the mixed corpus, recall on the evasive
        // subset + overall metrics.
        let mut data = Dataset::new(fx.dim());
        let mut evasive_idx = Vec::new();
        for html in plain_pos.iter() {
            data.push(embed(html), true);
        }
        for html in evasive_pos.iter() {
            evasive_idx.push(data.len());
            data.push(embed(html), true);
        }
        for html in negatives.iter() {
            data.push(embed(html), false);
        }
        let folds = data.stratified_folds(5, 3);
        let mut scored = Vec::new();
        let mut evasive_scored = Vec::new();
        for fold in 0..5 {
            let (train, _) = data.split_fold(&folds, fold);
            let mut rf = RandomForest::new(forest_config(3));
            rf.fit(&train);
            for (i, &f) in folds.iter().enumerate().take(data.len()) {
                if f == fold {
                    let s = rf.score(data.x(i));
                    scored.push((s, data.y(i)));
                    if evasive_idx.contains(&i) {
                        evasive_scored.push((s, true));
                    }
                }
            }
        }
        let m = Metrics::from_scores(&scored, 0.5);
        let evasive_recall = evasive_scored.iter().filter(|(s, _)| *s >= 0.5).count() as f64
            / evasive_scored.len().max(1) as f64;
        // SquatPhi detects squatting phishing *on a brand*: a detection
        // without brand-impersonation evidence does not survive the
        // verification step. Gate the evasive-subset recall on the brand
        // keyword being present in the feature vector.
        let mut gated = 0usize;
        let mut full_model = RandomForest::new(forest_config(3));
        full_model.fit(&data);
        for (i, html) in evasive_pos.iter().enumerate() {
            let brand = registry.get((i / 2) % registry.len()).expect("brand");
            let v = embed(html);
            let brand_ok = fx
                .space()
                .keyword(&brand.label)
                .map(|d| v.get(d) > 0.0)
                .unwrap_or(false);
            if full_model.score(&v) >= 0.5 && brand_ok {
                gated += 1;
            }
        }
        let auc = RocCurve::from_scores(&scored).auc();
        println!(
            "OCR {}  brand-keyword recovery on obfuscated pages: {:5.1}%   \
             recall on obfuscated subset: {:5.1}% raw, {:5.1}% with brand-evidence gate   \
             overall AUC {:.3} FP {:.3} FN {:.3}",
            if ocr_on { "ON " } else { "OFF" },
            recovered as f64 * 100.0 / evasive_pos.len() as f64,
            evasive_recall * 100.0,
            gated as f64 * 100.0 / evasive_pos.len() as f64,
            auc,
            m.fpr,
            m.fnr,
        );
    }

    // --- adversarial-noise sweep (paper §5.1 robustness discussion) ------------
    println!("\nadversarial pixel noise vs OCR keyword recovery:");
    {
        use squatphi_html::parse;
        use squatphi_ocr::attack::{recovery_rate, NoiseBudget};
        use squatphi_ocr::OcrConfig;
        use squatphi_render::{render_page, RenderOptions};
        let brand = registry.by_label("paypal").expect("paypal");
        let html = pages::brand_login_page(brand);
        let bmp = render_page(&parse(&html), &RenderOptions::default());
        let cfg = OcrConfig {
            char_error_rate: 0.0,
            ..OcrConfig::default()
        };
        for (name, budget) in [
            (
                "clean      ",
                NoiseBudget {
                    density: 0.0,
                    amplitude: 0,
                },
            ),
            ("subtle     ", NoiseBudget::subtle()),
            ("moderate   ", NoiseBudget::moderate()),
            ("heavy      ", NoiseBudget::heavy()),
        ] {
            let mut total = 0.0;
            for seed in 0..5 {
                total += recovery_rate(&bmp, &["paypal", "password", "email"], budget, seed, &cfg);
            }
            println!(
                "  {name} (density {:>4.0}%, amplitude {:>3})  keyword recovery {:>5.1}%",
                budget.density * 100.0,
                budget.amplitude,
                total / 5.0 * 100.0
            );
        }
        println!(
            "  (the paper's argument: budgets that defeat OCR also destroy the page's legitimacy)"
        );
    }

    // --- reinforcement round (paper §6.1 future work) -------------------------
    println!("\nreinforcement round (feed confirmed detections back into training):");
    {
        use squatphi::reinforce::{reinforce, wild_error_count};
        use squatphi::{RunOptions, SimConfig, SquatPhi};
        let config = SimConfig::tiny();
        let result =
            SquatPhi::try_run(&config, &RunOptions::default()).expect("tiny pipeline runs clean");
        let top8 = result.feed.top8(&result.registry);
        let base_pages: Vec<(&str, bool)> = top8
            .iter()
            .map(|e| (e.html.as_str(), e.still_phishing))
            .collect();
        let base = result.extractor.build_dataset(&base_pages, config.threads);
        let before = wild_error_count(&result, &result.extractor, &result.model, config.threads);
        let out = reinforce(&result, &result.extractor, &base, config.threads, 5);
        let after = wild_error_count(&result, &result.extractor, &out.model, config.threads);
        println!(
            "  in-the-wild classification errors: {before} -> {after} \
             (+{} confirmed positives, +{} rejected negatives fed back)",
            out.added_positives, out.added_negatives
        );
    }

    // --- forest size sweep ---------------------------------------------------
    println!("\nrandom-forest size sweep (full features):");
    let mut data = Dataset::new(fx.dim());
    for html in plain_pos.iter().chain(&evasive_pos) {
        data.push(fx.extract(html), true);
    }
    for html in &negatives {
        data.push(fx.extract(html), false);
    }
    for trees in [5usize, 15, 30, 60, 120] {
        let scored = squatphi_ml::cross_validate(
            || {
                let mut cfg = forest_config(7);
                cfg.trees = trees;
                RandomForest::new(cfg)
            },
            &data,
            5,
            7,
        );
        let m = Metrics::from_scores(&scored, 0.5);
        println!(
            "  {trees:>4} trees  AUC {:.3}  ACC {:.3}",
            m.auc, m.accuracy
        );
    }
}

fn phishing(brand: &Brand, evasive: bool, seed: u64) -> String {
    let profile = PhishingProfile {
        brand: brand.id,
        scam: ScamKind::FakeLogin,
        layout_obfuscation: (seed % 3) as u8,
        string_obfuscation: evasive,
        code_obfuscation: seed % 8 < 3,
        cloaking: Cloaking::None,
        lifetime: LifetimePattern::Stable,
    };
    // Avoid the two-step branch (seed % 16 == 7) so recall is measured on
    // full login pages only.
    let page_seed = seed * 16 + usize::from(evasive) as u64;
    pages::phishing_page(
        brand,
        &profile,
        &format!("{}-x.com", brand.label),
        page_seed,
    )
}

/// Lexical + form channels only — the OCR-off arm.
fn lexical_only(fx: &FeatureExtractor, html: &str) -> SparseVec {
    let doc = squatphi_html::parse(html);
    let mut v = SparseVec::new();
    let text = squatphi_html::extract::extract_text(&doc);
    for t in remove_stopwords(tokenize(&text.joined_lower())) {
        if let Some(i) = fx.space().keyword(&t) {
            v.add(i, 1.0);
        }
    }
    let forms = squatphi_html::extract::extract_forms(&doc);
    let mut pw = 0.0;
    for f in &forms {
        for ty in &f.input_types {
            if ty == "password" {
                pw += 1.0;
            }
            if let Some(i) = fx.space().keyword(ty) {
                v.add(i, 1.0);
            }
        }
        for s in f
            .placeholders
            .iter()
            .chain(&f.submit_texts)
            .chain(&f.input_names)
        {
            for t in tokenize(s) {
                if let Some(i) = fx.space().keyword(&t) {
                    v.add(i, 1.0);
                }
            }
        }
    }
    if !forms.is_empty() {
        v.add(
            fx.space().numeric("form_count").expect("dim"),
            forms.len() as f64,
        );
    }
    if pw > 0.0 {
        v.add(fx.space().numeric("password_inputs").expect("dim"), pw);
    }
    v
}
