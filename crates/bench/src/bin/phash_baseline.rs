//! Writes `BENCH_phash.json`: the NN-index lookup baseline each PR commits
//! so the visual-similarity speedup over the preserved linear scan stays
//! on record.
//!
//! ```text
//! cargo run --release -p squatphi-bench --bin phash_baseline \
//!     [out.json] [--assert-speedup] [--strip-timings]
//! ```
//!
//! The workload is a 1M-hash seeded corpus (80% uniform, 20% clustered
//! within a few flips of a small center set — the screenshot-hash shape:
//! most pages unrelated, phishing variants near their brand). Every query
//! is answered by both [`HashIndex`] and the [`linear`] oracle at each
//! radius, and the writer *first* proves the answers set-identical (exit
//! 2 on any divergence) before it times anything — a fast wrong index
//! must never produce a baseline file. Numbers are machine-dependent;
//! compare ratios, not absolutes. `BENCH_QUICK=1` shrinks the corpus for
//! smoke testing.
//!
//! `--assert-speedup` exits non-zero unless the index beats linear by
//! ≥ 10× at every radius ≤ 8 (the acceptance floor); `--strip-timings`
//! zeroes the wall-clock-derived fields so CI can `cmp` two runs — the
//! deterministic counters and result totals are byte-identical by
//! construction.

use rand::prelude::*;
use squatphi_imghash::index::{linear, HashIndex};
use squatphi_imghash::ImageHash;
use squatphi_telemetry::Json;
use std::time::Instant;

/// The acceptance floor `--assert-speedup` enforces at radii ≤ 8.
const SPEEDUP_FLOOR: f64 = 10.0;

fn corpus(n: usize, rng: &mut StdRng) -> Vec<ImageHash> {
    let centers: Vec<u64> = (0..(n / 1000).max(16)).map(|_| rng.gen()).collect();
    (0..n)
        .map(|i| {
            if i % 5 == 0 {
                let mut h = centers[rng.gen_range(0..centers.len())];
                for _ in 0..rng.gen_range(0..=8usize) {
                    h ^= 1u64 << rng.gen_range(0..64u32);
                }
                ImageHash(h)
            } else {
                ImageHash(rng.gen())
            }
        })
        .collect()
}

/// Half perturbed corpus members, half random misses.
fn queries(n: usize, corpus: &[ImageHash], rng: &mut StdRng) -> Vec<ImageHash> {
    (0..n)
        .map(|i| {
            if i % 2 == 0 {
                let mut h = corpus[rng.gen_range(0..corpus.len())].0;
                for _ in 0..rng.gen_range(0..=6usize) {
                    h ^= 1u64 << rng.gen_range(0..64u32);
                }
                ImageHash(h)
            } else {
                ImageHash(rng.gen())
            }
        })
        .collect()
}

fn main() {
    let mut out_path = "BENCH_phash.json".to_string();
    let mut assert_speedup = false;
    let mut strip_timings = false;
    for arg in std::env::args().skip(1) {
        match arg.as_str() {
            "--assert-speedup" => assert_speedup = true,
            "--strip-timings" => strip_timings = true,
            _ => out_path = arg,
        }
    }
    let quick = std::env::var_os("BENCH_QUICK").is_some();
    let (corpus_n, query_n, iterations) = if quick {
        (50_000, 100, 1)
    } else {
        (1_000_000, 400, 3)
    };

    let mut rng = StdRng::seed_from_u64(0x0070_6861_7368);
    let corpus = corpus(corpus_n, &mut rng);
    let queries = queries(query_n, &corpus, &mut rng);

    let build_start = Instant::now();
    let index = HashIndex::from_hashes(corpus.iter().copied());
    let build_ms = build_start.elapsed().as_secs_f64() * 1e3;
    eprintln!(
        "[phash_baseline] {corpus_n} hashes indexed in {build_ms:.0} ms, \
         {query_n} queries, {iterations} iteration(s) per radius"
    );

    let mut workload = Json::obj();
    workload.push("corpus", Json::U64(corpus_n as u64));
    workload.push("queries", Json::U64(query_n as u64));
    workload.push("seed", Json::U64(0x0070_6861_7368));
    workload.push(
        "build_ms",
        Json::F64(if strip_timings { 0.0 } else { build_ms }),
    );

    let mut runs = Vec::new();
    let mut floor_violations = Vec::new();
    for radius in [0u32, 2, 4, 8, 16] {
        // Correctness first: a baseline written by a diverging index would
        // record the throughput of wrong answers.
        let mut total_neighbors = 0u64;
        for q in &queries {
            let got = index.within(q, radius);
            let want = linear::within(&corpus, q, radius);
            if got != want {
                eprintln!(
                    "[phash_baseline] FAIL: index diverged from linear at radius {radius} \
                     for query {:016x} ({} vs {} neighbors)",
                    q.to_bits(),
                    got.len(),
                    want.len()
                );
                std::process::exit(2);
            }
            total_neighbors += got.len() as u64;
        }

        // Best-of-N wall clock for each side, identical query stream.
        let mut index_qps = 0f64;
        let mut linear_qps = 0f64;
        for _ in 0..iterations {
            let t = Instant::now();
            let mut found = 0usize;
            for q in &queries {
                found += index.within(q, radius).len();
            }
            std::hint::black_box(found);
            index_qps = index_qps.max(query_n as f64 / t.elapsed().as_secs_f64());

            let t = Instant::now();
            let mut found = 0usize;
            for q in &queries {
                found += linear::within(&corpus, q, radius).len();
            }
            std::hint::black_box(found);
            linear_qps = linear_qps.max(query_n as f64 / t.elapsed().as_secs_f64());
        }
        let speedup = index_qps / linear_qps;
        eprintln!(
            "[phash_baseline] radius {radius:2}: index {index_qps:9.0} q/s, \
             linear {linear_qps:7.0} q/s, speedup {speedup:6.1}x \
             ({total_neighbors} neighbors, set-identical)"
        );
        if radius <= 8 && speedup < SPEEDUP_FLOOR {
            floor_violations.push((radius, speedup));
        }

        let strip = |v: f64| if strip_timings { 0.0 } else { v };
        let mut run = Json::obj();
        run.push("radius", Json::U64(radius as u64));
        run.push("neighbors", Json::U64(total_neighbors));
        run.push("index_queries_per_sec", Json::F64(strip(index_qps)));
        run.push("linear_queries_per_sec", Json::F64(strip(linear_qps)));
        run.push("speedup", Json::F64(strip(speedup)));
        runs.push(run);
    }

    // The counters come from the same telemetry registry export every
    // other surface reads; they are deterministic for a fixed workload,
    // so they survive the two-run `cmp` untouched.
    let snap = index.telemetry().snapshot();
    let mut counters = Json::obj();
    for name in [
        "inserts",
        "queries",
        "probes",
        "bucket_hits",
        "verified",
        "pruned",
        "fallbacks",
    ] {
        counters.push(name, snap.json_value(&format!("phash.index.{name}")));
    }

    let mut doc = Json::obj();
    doc.push("workload", workload);
    doc.push("iterations", Json::U64(iterations as u64));
    doc.push("runs", Json::Arr(runs));
    doc.push("counters", counters);
    let json = doc.render() + "\n";

    std::fs::write(&out_path, json).unwrap_or_else(|e| {
        eprintln!("phash_baseline: cannot write {out_path}: {e}");
        std::process::exit(2);
    });
    eprintln!("[phash_baseline] baseline written to {out_path}");

    if assert_speedup {
        if let Some((radius, speedup)) = floor_violations.first() {
            eprintln!(
                "[phash_baseline] FAIL: speedup {speedup:.1}x at radius {radius} is below \
                 the {SPEEDUP_FLOOR:.0}x floor"
            );
            std::process::exit(3);
        }
        eprintln!("[phash_baseline] speedup OK: >= {SPEEDUP_FLOOR:.0}x at every radius <= 8");
    }
}
