//! HTML page generators for the synthetic web.
//!
//! Every page variant the pipeline meets is produced here: the brands'
//! canonical login pages, phishing imitations at each evasion level,
//! parked/marketplace/benign filler, and the "easy-to-confuse" benign
//! pages with submission forms that drive classifier false positives.
//!
//! Pages are deterministic functions of their inputs — crucial for the
//! reproducibility of every downstream measurement.

use crate::behavior::{PhishingProfile, ScamKind};
use rand::prelude::*;
use rand::rngs::StdRng;
use squatphi_squat::Brand;

/// Visual styling knobs (drives layout-obfuscation distances).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PageStyle {
    /// Logo heading level: 1 (h1, big) or 2 (h2, smaller).
    pub logo_level: u8,
    /// Decorative band heights inserted before the content.
    pub top_band: u8,
    /// Extra band between logo and form.
    pub mid_band: u8,
    /// Number of filler paragraphs.
    pub filler_paras: u8,
}

impl PageStyle {
    /// The canonical style brands use.
    pub fn canonical() -> Self {
        PageStyle {
            logo_level: 1,
            top_band: 0,
            mid_band: 0,
            filler_paras: 1,
        }
    }

    /// A style mutated to intensity 0..=3: each step moves the layout
    /// further from the canonical rendering (Figure 8's distances
    /// 7 / 24 / 38).
    pub fn obfuscated(intensity: u8, rng: &mut StdRng) -> Self {
        match intensity {
            0 => PageStyle {
                logo_level: 1,
                top_band: 0,
                mid_band: 0,
                filler_paras: 1,
            },
            1 => PageStyle {
                logo_level: 1,
                top_band: 10 + rng.gen_range(0..8),
                mid_band: 0,
                filler_paras: 2,
            },
            2 => PageStyle {
                logo_level: 2,
                top_band: 18 + rng.gen_range(0..10),
                mid_band: 12,
                filler_paras: 3,
            },
            _ => PageStyle {
                logo_level: 2,
                top_band: 30 + rng.gen_range(0..14),
                mid_band: 22,
                filler_paras: 5,
            },
        }
    }
}

/// Applies homoglyph string obfuscation to a brand word: the visual twin
/// that simple substring matching misses (`paypal` → `paypaI`-style; we
/// swap `l`→`1`, `o`→`0`, `i`→`l` deterministically).
pub fn obfuscate_brand_text(brand: &str) -> String {
    let mut out = String::with_capacity(brand.len());
    let mut swapped = false;
    for c in brand.chars() {
        let repl = match c {
            'l' if !swapped => Some('1'),
            'o' if !swapped => Some('0'),
            'i' if !swapped => Some('l'),
            _ => None,
        };
        match repl {
            Some(r) => {
                out.push(r);
                swapped = true;
            }
            None => out.push(c),
        }
    }
    if !swapped {
        // No swappable letter: uppercase-i trick on the last letter.
        out.pop();
        out.push('1');
    }
    out
}

fn style_blocks(style: &PageStyle) -> (String, String) {
    let top = if style.top_band > 0 {
        format!("<div data-fill=\"{}\"></div>", style.top_band)
    } else {
        String::new()
    };
    let mid = if style.mid_band > 0 {
        format!("<div data-fill=\"{}\"></div>", style.mid_band)
    } else {
        String::new()
    };
    (top, mid)
}

fn filler(paras: u8, seed: u64, seed_word: &str) -> String {
    // No brand labels and no template-unique words in here: the same pool
    // feeds phishing and benign pages, rotated by seed, so no filler line
    // becomes a class giveaway.
    let lines = [
        "your security is our top priority every day",
        "millions of users trust us with their accounts",
        "fast simple and secure access from any device",
        "manage everything in one place at your own pace",
        "we will never ask for your details by email",
        "download our app for the best experience",
        "read our help pages for common questions",
        "we updated our terms of service this spring",
    ];
    let start = (seed as usize).wrapping_mul(7) % lines.len();
    (0..paras as usize)
        .map(|i| format!("<p>{} {}</p>", lines[(start + i) % lines.len()], seed_word))
        .collect()
}

/// Title suffixes shared by phishing and benign sign-in pages.
const TITLE_SUFFIXES: &[&str] = &["login", "sign in", "account", "member access", "portal"];

/// Sign-in vocabulary pools shared by phishing *and* legitimate login
/// pages. Real phishing copies real sites, so the separating signal must
/// come from the combination of cues, not from template-unique words —
/// otherwise the classifier evaluation is meaningless.
const SIGNIN_PHRASES: &[&str] = &[
    "please sign in to continue your session has expired",
    "sign in to continue",
    "welcome back please sign in to your account",
    "log in to view your messages",
    "enter your credentials to access your account",
    "use your account details to sign in",
];
const ID_PLACEHOLDERS: &[&str] = &[
    "email or phone",
    "email address",
    "username",
    "user id",
    "email or username",
];
const PW_PLACEHOLDERS: &[&str] = &["password", "your password", "enter password"];
const BUTTON_LABELS: &[&str] = &["log in", "sign in", "continue", "submit"];
const ID_NAMES: &[&str] = &["email", "user", "login", "username", "identifier"];
const PW_NAMES: &[&str] = &["password", "pass", "pwd", "secret"];

fn pick<'a>(pool: &[&'a str], seed: u64, salt: u64) -> &'a str {
    pool[((seed ^ salt).wrapping_mul(0x9E37_79B9) as usize >> 3) % pool.len()]
}

const OBF_SCRIPT: &str = concat!(
    "<script>var _0x=String.fromCharCode(108,111,103,105,110);",
    "var _k=[];for(var i=0;i<8;i++){_k.push(_0x.charCodeAt(i%5));}",
    "eval('var trk=1');</script>"
);

const PLAIN_SCRIPT: &str =
    "<script>function focusFirst(){var f=document.forms[0];if(f){f.elements[0].focus();}}</script>";

/// The brand's canonical login page — what the real site serves and what
/// visual-similarity detectors compare against.
pub fn brand_login_page(brand: &Brand) -> String {
    let label = &brand.label;
    format!(
        "<html><head><title>{label} - log in or sign up</title></head><body>\
         <h1>{label}</h1>\
         <p>welcome back please sign in to continue to {label}</p>\
         {PLAIN_SCRIPT}\
         <form action=\"https://{domain}/signin\" method=\"post\">\
           <input type=\"email\" name=\"email\" placeholder=\"email or phone\">\
           <input type=\"password\" name=\"password\" placeholder=\"password\">\
           <button type=\"submit\">log in</button>\
         </form>\
         <a href=\"https://{domain}/recover\">forgot password?</a>\
         <p>new to {label}? create an account today</p>\
         </body></html>",
        domain = brand.domain.as_str(),
    )
}

/// A squatting phishing page for `brand` with the profile's evasions
/// applied. `host` is the squatting domain (used in the form action —
/// phishing forms post to the attacker's own host).
pub fn phishing_page(brand: &Brand, profile: &PhishingProfile, host: &str, seed: u64) -> String {
    let mut rng = StdRng::seed_from_u64(seed ^ 0x9E3779B97F4A7C15);
    let style = PageStyle::obfuscated(profile.layout_obfuscation, &mut rng);
    let (top, mid) = style_blocks(&style);
    let script = if profile.code_obfuscation {
        OBF_SCRIPT
    } else {
        PLAIN_SCRIPT
    };

    // String obfuscation: the brand name disappears from HTML text —
    // either swapped for a homoglyph twin or baked into a logo image.
    let (title_brand, logo_html, mention) = if profile.string_obfuscation {
        if seed.is_multiple_of(2) {
            let twin = obfuscate_brand_text(&brand.label);
            (
                twin.clone(),
                format!("<h{lv}>{twin}</h{lv}>", lv = style.logo_level),
                twin,
            )
        } else {
            (
                "secure portal".to_string(),
                format!(
                    "<img width=\"220\" height=\"{h}\" data-text=\"{label}\">",
                    h = if style.logo_level == 1 { 44 } else { 30 },
                    label = brand.label
                ),
                "our service".to_string(),
            )
        }
    } else {
        (
            brand.label.clone(),
            format!(
                "<h{lv}>{label}</h{lv}>",
                lv = style.logo_level,
                label = brand.label
            ),
            brand.label.clone(),
        )
    };

    let body = match profile.scam {
        ScamKind::FakeSearch => format!(
            "{logo_html}\
             <form action=\"http://{host}/search\">\
               <input type=\"text\" name=\"q\" placeholder=\"search the web\">\
               <button type=\"submit\">search</button>\
             </form>\
             <p>sponsored results and trending topics near you</p>\
             <a href=\"http://{host}/ads\">advertise with us</a>",
        ),
        ScamKind::TechSupport => format!(
            "{logo_html}\
             <h3>critical alert your computer may be infected</h3>\
             <p>call support now at 1 888 555 0142 to remove the virus</p>\
             <form action=\"http://{host}/case\">\
               <input type=\"text\" name=\"name\" placeholder=\"your name\">\
               <input type=\"email\" name=\"email\" placeholder=\"email\">\
               <input type=\"password\" name=\"pin\" placeholder=\"account password\">\
               <button type=\"submit\">start remote session</button>\
             </form>",
        ),
        ScamKind::Payroll => format!(
            "{logo_html}\
             <p>employee payroll and benefits portal</p>\
             <form action=\"http://{host}/payroll\">\
               <input type=\"text\" name=\"userid\" placeholder=\"user id\">\
               <input type=\"password\" name=\"password\" placeholder=\"password\">\
               <button type=\"submit\">sign in to payroll</button>\
             </form>\
             <p>view your paycheck w2 and direct deposit with {mention}</p>",
        ),
        ScamKind::OfflineScam => format!(
            "{logo_html}\
             <p>partner and driver sign in pick up loads near you</p>\
             <form action=\"http://{host}/driver\">\
               <input type=\"email\" name=\"email\" placeholder=\"driver email\">\
               <input type=\"password\" name=\"password\" placeholder=\"password\">\
               <button type=\"submit\">access loads</button>\
             </form>\
             <p>verified carriers get instant booking with {mention}</p>",
        ),
        ScamKind::PaymentTheft => format!(
            "{logo_html}\
             <p>secure message waiting verify your identity to read it</p>\
             <form action=\"http://{host}/verify\">\
               <input type=\"text\" name=\"card\" placeholder=\"card number\">\
               <input type=\"text\" name=\"ssn\" placeholder=\"social security number\">\
               <input type=\"password\" name=\"password\" placeholder=\"online banking password\">\
               <button type=\"submit\">verify and continue</button>\
             </form>",
        ),
        // A slice of fake logins are *two-step* (email first, password on
        // the next page — the flow large providers use). No password field
        // in the captured HTML: these are the classifier's intrinsic
        // false negatives, mirroring the paper's FN rate.
        ScamKind::FakeLogin if seed % 16 == 7 => format!(
            "{logo_html}\
             <p>{phrase}</p>\
             <form action=\"http://{host}/step2.php\">\
               <input type=\"email\" name=\"email\" placeholder=\"{id_ph}\">\
               <button type=\"submit\">continue</button>\
             </form>",
            phrase = pick(SIGNIN_PHRASES, seed, 0x11),
            id_ph = pick(ID_PLACEHOLDERS, seed, 0x22),
        ),
        ScamKind::FakeLogin => format!(
            "{logo_html}\
             <p>{phrase}</p>\
             <form action=\"http://{host}/login.php\">\
               <input type=\"email\" name=\"{id_name}\" placeholder=\"{id_ph}\">\
               <input type=\"password\" name=\"{pw_name}\" placeholder=\"{pw_ph}\">\
               <button type=\"submit\">{button}</button>\
             </form>\
             <a href=\"http://{host}/recover\">forgot password?</a>",
            phrase = pick(SIGNIN_PHRASES, seed, 0x11),
            id_ph = pick(ID_PLACEHOLDERS, seed, 0x22),
            pw_ph = pick(PW_PLACEHOLDERS, seed, 0x33),
            button = pick(BUTTON_LABELS, seed, 0x44),
            id_name = pick(ID_NAMES, seed, 0xA7),
            pw_name = pick(PW_NAMES, seed, 0xB8),
        ),
    };

    format!(
        "<html><head><title>{title_brand} {suffix}</title></head><body>\
         {top}{script}{body}{mid}{filler}</body></html>",
        suffix = pick(TITLE_SUFFIXES, seed, 0xD1),
        filler = filler(style.filler_paras, seed, &mention),
    )
}

/// Generic parked page (ads, no forms).
pub fn parked_page(host: &str) -> String {
    format!(
        "<html><head><title>{host}</title></head><body>\
         <h2>{host}</h2>\
         <p>this domain is parked free courtesy of the registrar</p>\
         <a href=\"http://ads.example/click1\">related searches</a>\
         <a href=\"http://ads.example/click2\">popular categories</a>\
         </body></html>"
    )
}

/// Domain-marketplace landing page ("this domain is for sale").
pub fn marketplace_page(host: &str, market: &str) -> String {
    format!(
        "<html><head><title>{host} is for sale</title></head><body>\
         <h2>{host} is for sale</h2>\
         <p>buy now on {market} or make an offer</p>\
         <p>premium domain pricing from $2500</p>\
         <a href=\"http://{market}/listing\">view listing</a>\
         </body></html>"
    )
}

/// An unrelated benign page (no forms, neutral text).
pub fn benign_page(host: &str, seed: u64) -> String {
    let topics = [
        "gardening tips",
        "weekend recipes",
        "travel notes",
        "local sports club",
        "diy projects",
    ];
    let t = topics[(seed as usize) % topics.len()];
    format!(
        "<html><head><title>{t}</title></head><body>\
         <h2>{t}</h2>\
         <p>welcome to {host} a small blog about {t}</p>\
         <p>updated weekly by volunteers</p>\
         <a href=\"/archive\">archive</a>\
         </body></html>"
    )
}

/// A legitimate login page for an unrelated service that happens to sit
/// on a squatting domain — a password form with no brand impersonation.
/// These are the negatives that force the classifier to learn more than
/// "has a password field".
pub fn benign_login_page(host: &str, brand_label: Option<&str>, seed: u64) -> String {
    let services = [
        "community forum",
        "webmail",
        "members area",
        "intranet",
        "wiki",
    ];
    let s = services[(seed as usize) % services.len()];
    // A third of legitimate logins mention a big brand in passing
    // ("available on google play", "protected by …") — together with the
    // password form this is the feature combination phishing pages show,
    // and it is what keeps the classifier's false-positive rate nonzero.
    let brand_mention = match (seed % 3, brand_label) {
        (0, Some(b)) => format!("<p>our mobile app is available on the {b} store</p>"),
        (1, Some(b)) => format!("<p>tip you can also register using your {b} address</p>"),
        _ => String::new(),
    };
    format!(
        "<html><head><title>{s} {suffix}</title></head><body>\
         <h2>{s}</h2>\
         <p>{phrase}</p>\
         <form action=\"/auth\">\
           <input type=\"{id_type}\" name=\"{id_name}\" placeholder=\"{id_ph}\">\
           <input type=\"password\" name=\"{pw_name}\" placeholder=\"{pw_ph}\">\
           <button type=\"submit\">{button}</button>\
         </form>\
         <a href=\"/reset\">forgot password?</a>\
         {brand_mention}\
         {filler}\
         </body></html>",
        phrase = pick(SIGNIN_PHRASES, seed, 0x55),
        id_type = pick(&["text", "email"], seed, 0xF3),
        id_name = pick(ID_NAMES, seed, 0xA8),
        pw_name = pick(PW_NAMES, seed, 0xB9),
        id_ph = pick(ID_PLACEHOLDERS, seed, 0x66),
        pw_ph = pick(PW_PLACEHOLDERS, seed, 0x77),
        button = pick(BUTTON_LABELS, seed, 0x88),
        filler = filler(1 + (seed % 2) as u8, seed, host),
        suffix = pick(TITLE_SUFFIXES, seed, 0xE2),
    )
}

/// Builds a benign page from the same generator phishing uses — a
/// brand-operated login mirror (`two_step = false`) or a branded
/// email-capture parking page (`two_step = true`). Same features, benign
/// operator: the irreducible overlap cell of the classification problem.
fn branded_shell(host: &str, brand_label: Option<&str>, seed: u64, two_step: bool) -> String {
    let label = brand_label.unwrap_or("google");
    let brand = Brand {
        id: 0,
        label: label.to_string(),
        domain: squatphi_domain::DomainName::parse(&format!("{label}.com")).unwrap_or_else(|_| {
            squatphi_domain::DomainName::parse("example.com").expect("static domain valid")
        }),
        category: squatphi_squat::Category::PhishTankOnly,
        alexa_rank: 0,
        phishtank_target: false,
    };
    let profile = PhishingProfile {
        brand: 0,
        scam: ScamKind::FakeLogin,
        layout_obfuscation: ((seed / 12) % 3) as u8,
        string_obfuscation: false,
        code_obfuscation: false,
        cloaking: crate::behavior::Cloaking::None,
        lifetime: crate::behavior::LifetimePattern::Stable,
    };
    // The FakeLogin generator branches to its two-step variant when
    // `seed % 16 == 7`; steer the seed accordingly (wrapping — callers
    // pass full-width hash seeds).
    let base = (seed / 12).wrapping_mul(16);
    let page_seed = if two_step {
        base.wrapping_add(7)
    } else {
        base.wrapping_add(3)
    };
    phishing_page(&brand, &profile, host, page_seed)
}

/// The paper's hard negatives: benign pages that *contain submission
/// forms* (survey boxes, feedback widgets, brand payment plugins,
/// federated "sign in with `<brand>`" logins).
pub fn confusing_benign_page(host: &str, brand_label: Option<&str>, seed: u64) -> String {
    match seed % 12 {
        0 => format!(
            "<html><head><title>customer survey</title></head><body>\
             <h2>tell us what you think</h2>\
             <p>your feedback helps {host} improve</p>\
             <form action=\"/survey\">\
               <input type=\"text\" name=\"name\" placeholder=\"name optional\">\
               <input type=\"email\" name=\"email\" placeholder=\"email optional\">\
               <textarea name=\"comments\" placeholder=\"comments\"></textarea>\
               <button type=\"submit\">send feedback</button>\
             </form></body></html>"
        ),
        1 => {
            let b = brand_label.unwrap_or("paypal");
            format!(
                "<html><head><title>donate to the club</title></head><body>\
                 <h2>support our community site</h2>\
                 <p>donations are processed securely via {b}</p>\
                 <form action=\"https://{b}.com/donate\">\
                   <input type=\"text\" name=\"amount\" placeholder=\"amount in usd\">\
                   <button type=\"submit\">donate with {b}</button>\
                 </form>\
                 <a href=\"https://twitter.com/share\">share</a></body></html>"
            )
        }
        2 => format!(
            "<html><head><title>newsletter signup</title></head><body>\
             <h2>join our newsletter</h2>\
             <p>get updates from {host} once a month no spam</p>\
             <form action=\"/subscribe\">\
               <input type=\"email\" name=\"email\" placeholder=\"your email\">\
               <button type=\"submit\">subscribe</button>\
             </form></body></html>"
        ),
        3 | 8 => benign_login_page(host, brand_label, seed / 12),
        // Benign pages that are *feature-identical* to phishing templates:
        // brand-owned defensive squats serving a copy of the real login
        // page, and branded "enter your email for updates" parking kits.
        // The classifier cannot tell these from phishing — only the manual
        // verification step can (the paper reports exactly this: its
        // classifier errors "largely come from legitimate pages that
        // contain some submission forms or third-party plugins of the
        // target brands").
        4 | 9 => branded_shell(host, brand_label, seed, true),
        5 => branded_shell(host, brand_label, seed, false),
        6 => {
            // Federated login: a legitimate page offering "sign in with
            // <brand>" — brand keyword AND a password field. The hardest
            // negative: the paper reports exactly these third-party
            // plugins as its classifier's main false-positive source.
            let b = brand_label.unwrap_or("google");
            format!(
                "<html><head><title>book club portal</title></head><body>\
                 <h2>book club portal</h2>\
                 <p>sign in with your {b} account to join the discussion on {host}</p>\
                 <form action=\"https://accounts.{b}.com/oauth\">\
                   <input type=\"email\" name=\"identifier\" placeholder=\"{b} email\">\
                   <input type=\"password\" name=\"secret\" placeholder=\"{b} password\">\
                   <button type=\"submit\">continue with {b}</button>\
                 </form>\
                 <p>we never store your {b} credentials</p>\
                 </body></html>"
            )
        }
        7 => {
            // Unofficial fan community for a brand: brand all over the
            // page *and* a member login with a password — feature-wise the
            // closest benign twin of a fake-login phishing page.
            let b = brand_label.unwrap_or("google");
            format!(
                "<html><head><title>{b} fan community</title></head><body>\
                 <h1>{b}</h1>\
                 <p>{phrase}</p>\
                 <form action=\"/members\">\
                   <input type=\"text\" name=\"{id_name}\" placeholder=\"{id_ph}\">\
                   <input type=\"password\" name=\"{pw_name}\" placeholder=\"{pw_ph}\">\
                   <button type=\"submit\">{button}</button>\
                 </form>\
                 <p>fan news and discussion about {b} not affiliated with {b}</p>\
                 </body></html>",
                phrase = pick(SIGNIN_PHRASES, seed, 0x99),
                id_name = pick(ID_NAMES, seed, 0xDD),
                pw_name = pick(PW_NAMES, seed, 0xEE),
                id_ph = pick(ID_PLACEHOLDERS, seed, 0xAA),
                pw_ph = pick(PW_PLACEHOLDERS, seed, 0xBB),
                button = pick(BUTTON_LABELS, seed, 0xCC),
            )
        }
        10 => format!(
            "<html><head><title>contact us</title></head><body>\
             <h2>contact {host}</h2>\
             <p>questions about an order send us a message</p>\
             <form action=\"/contact\">\
               <input type=\"text\" name=\"subject\" placeholder=\"subject\">\
               <input type=\"email\" name=\"email\" placeholder=\"email address\">\
               <textarea name=\"body\" placeholder=\"message\"></textarea>\
               <button type=\"submit\">send message</button>\
             </form></body></html>"
        ),
        _ => {
            let b = brand_label.unwrap_or("google");
            format!(
                "<html><head><title>price tracker</title></head><body>\
                 <h2>price tracker</h2>\
                 <p>track prices from {b} and other stores on {host}</p>\
                 <form action=\"/track\">\
                   <input type=\"text\" name=\"url\" placeholder=\"paste a product link\">\
                   <button type=\"submit\">track price</button>\
                 </form></body></html>"
            )
        }
    }
}

/// Non-squatting phishing page (for the PhishTank ground-truth set):
/// hosted on random infrastructure, typically less evasive (Table 11).
pub fn non_squatting_phishing_page(brand: &Brand, evasive: bool, host: &str, seed: u64) -> String {
    let profile = PhishingProfile {
        brand: brand.id,
        scam: ScamKind::FakeLogin,
        layout_obfuscation: if evasive { 2 } else { 1 },
        string_obfuscation: evasive,
        code_obfuscation: seed % 8 < 3, // ~37.5% (Table 11)
        cloaking: crate::behavior::Cloaking::None,
        lifetime: crate::behavior::LifetimePattern::Stable,
    };
    phishing_page(brand, &profile, host, seed)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::behavior::{Cloaking, LifetimePattern};
    use squatphi_html::{extract::extract_forms, extract::extract_text, js::scan_document, parse};
    use squatphi_squat::BrandRegistry;

    fn profile(layout: u8, string_obf: bool, code_obf: bool) -> PhishingProfile {
        PhishingProfile {
            brand: 0,
            scam: ScamKind::FakeLogin,
            layout_obfuscation: layout,
            string_obfuscation: string_obf,
            code_obfuscation: code_obf,
            cloaking: Cloaking::None,
            lifetime: LifetimePattern::Stable,
        }
    }

    #[test]
    fn brand_page_has_login_form_and_brand_text() {
        let reg = BrandRegistry::with_size(5);
        let brand = reg.by_label("paypal").unwrap();
        let doc = parse(&brand_login_page(brand));
        let forms = extract_forms(&doc);
        assert_eq!(forms.len(), 1);
        assert!(forms[0].has_password());
        assert!(extract_text(&doc).joined_lower().contains("paypal"));
    }

    #[test]
    fn plain_phishing_page_mentions_brand() {
        let reg = BrandRegistry::with_size(5);
        let brand = reg.by_label("paypal").unwrap();
        let html = phishing_page(brand, &profile(0, false, false), "paypal-cash.com", 1);
        let doc = parse(&html);
        assert!(extract_text(&doc).joined_lower().contains("paypal"));
        assert!(extract_forms(&doc)[0].has_password());
    }

    #[test]
    fn string_obfuscation_hides_brand_from_html_text() {
        let reg = BrandRegistry::with_size(5);
        let brand = reg.by_label("paypal").unwrap();
        for seed in [2, 3] {
            // seed parity selects homoglyph vs image-logo variants.
            let html = phishing_page(brand, &profile(1, true, false), "paypal-cash.com", seed);
            let text = extract_text(&parse(&html)).joined_lower();
            assert!(
                !text.contains("paypal"),
                "brand leaked into HTML text (seed {seed}): {text}"
            );
        }
    }

    #[test]
    fn code_obfuscation_detected_by_js_scanner() {
        let reg = BrandRegistry::with_size(5);
        let brand = reg.by_label("paypal").unwrap();
        let clean = phishing_page(brand, &profile(0, false, false), "h.com", 1);
        let obf = phishing_page(brand, &profile(0, false, true), "h.com", 1);
        assert!(!scan_document(&parse(&clean)).is_obfuscated());
        assert!(scan_document(&parse(&obf)).is_obfuscated());
    }

    #[test]
    fn layout_intensity_changes_markup() {
        let reg = BrandRegistry::with_size(5);
        let brand = reg.by_label("paypal").unwrap();
        let a = phishing_page(brand, &profile(0, false, false), "h.com", 7);
        let b = phishing_page(brand, &profile(3, false, false), "h.com", 7);
        assert_ne!(a, b);
        assert!(
            b.contains("data-fill"),
            "heavy layout obfuscation adds bands"
        );
    }

    #[test]
    fn all_scam_kinds_have_forms() {
        let reg = BrandRegistry::with_size(20);
        let brand = reg.by_label("uber").unwrap();
        for scam in ScamKind::ALL {
            let p = PhishingProfile {
                scam,
                ..profile(1, false, false)
            };
            let html = phishing_page(brand, &p, "go-uberfreight.com", 3);
            let forms = extract_forms(&parse(&html));
            assert!(!forms.is_empty(), "{scam:?} has no form");
        }
    }

    #[test]
    fn obfuscate_brand_text_changes_string() {
        assert_ne!(obfuscate_brand_text("paypal"), "paypal");
        assert_ne!(obfuscate_brand_text("uber"), "uber");
        // Visual length preserved.
        assert_eq!(obfuscate_brand_text("paypal").len(), "paypal".len());
    }

    #[test]
    fn confusing_benign_pages_all_have_forms() {
        for seed in 0..12 {
            let html = confusing_benign_page("example.com", Some("paypal"), seed);
            let forms = extract_forms(&parse(&html));
            assert!(
                !forms.is_empty(),
                "confusing benign page (seed {seed}) should have a form"
            );
        }
        let plain = benign_page("example.com", 1);
        assert!(extract_forms(&parse(&plain)).is_empty());
    }

    #[test]
    fn hard_negatives_include_password_forms() {
        // Benign logins and federated-login plugins carry password fields;
        // the classifier must not treat "password input" alone as phishing.
        let login = benign_login_page("example.com", None, 0);
        assert!(extract_forms(&parse(&login))[0].has_password());
        let federated = confusing_benign_page("example.com", Some("google"), 6);
        let forms = extract_forms(&parse(&federated));
        assert!(forms[0].has_password());
        assert!(federated.contains("google"));
    }

    #[test]
    fn pages_are_deterministic() {
        let reg = BrandRegistry::with_size(5);
        let brand = reg.by_label("paypal").unwrap();
        let p = profile(2, true, true);
        assert_eq!(
            phishing_page(brand, &p, "h.com", 9),
            phishing_page(brand, &p, "h.com", 9)
        );
    }

    #[test]
    fn non_squatting_variant_builds() {
        let reg = BrandRegistry::with_size(5);
        let brand = reg.by_label("facebook").unwrap();
        let html = non_squatting_phishing_page(brand, false, "xyz.000webhostapp.com", 4);
        assert!(extract_forms(&parse(&html))[0].has_password());
    }
}
