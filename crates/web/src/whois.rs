//! Whois and geolocation models (Figures 15-16).
//!
//! The paper looks up whois records (registration year, registrar — most
//! phishing domains registered within the last 4 years, godaddy the top
//! registrar) and IP geolocation (53 countries; US 494, DE 106, GB 77,
//! FR 44, IE 39, CA 34, JP 32, NL 29, CH 13, RU 9). We assign both
//! deterministically by hashing the domain, with the paper's marginals.

use std::hash::{Hash, Hasher};

/// A minimal whois record.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WhoisRecord {
    /// Registrar name, `None` for the ~37% of records without one.
    pub registrar: Option<&'static str>,
    /// Registration year.
    pub year: u16,
}

/// Registrars weighted like the paper's Figure (godaddy dominant among
/// the 121 institutions).
const REGISTRARS: &[(&str, u32)] = &[
    ("godaddy.com", 157),
    ("namecheap.com", 80),
    ("enom.com", 55),
    ("tucows.com", 45),
    ("publicdomainregistry.com", 40),
    ("networksolutions.com", 30),
    ("name.com", 25),
    ("gandi.net", 20),
    ("ovh.com", 18),
    ("alibaba-nic.com", 15),
    ("regru.ru", 12),
    ("hostinger.com", 10),
];

/// Country weights from Figure 15 plus a long tail to reach 53 countries.
const COUNTRIES: &[(&str, u32)] = &[
    ("US", 494),
    ("DE", 106),
    ("GB", 77),
    ("FR", 44),
    ("IE", 39),
    ("CA", 34),
    ("JP", 32),
    ("NL", 29),
    ("CH", 13),
    ("RU", 9),
    ("SG", 8),
    ("AU", 8),
    ("BR", 7),
    ("IN", 7),
    ("IT", 6),
    ("ES", 6),
    ("PL", 5),
    ("SE", 5),
    ("UA", 5),
    ("HK", 4),
    ("KR", 4),
    ("TR", 4),
    ("CZ", 3),
    ("RO", 3),
    ("ZA", 3),
    ("MX", 3),
    ("AR", 2),
    ("CL", 2),
    ("PT", 2),
    ("GR", 2),
    ("FI", 2),
    ("NO", 2),
    ("DK", 2),
    ("AT", 2),
    ("BE", 2),
    ("HU", 2),
    ("BG", 2),
    ("TH", 2),
    ("VN", 2),
    ("MY", 2),
    ("ID", 2),
    ("PH", 1),
    ("IL", 1),
    ("AE", 1),
    ("SA", 1),
    ("EG", 1),
    ("NG", 1),
    ("KE", 1),
    ("CO", 1),
    ("PE", 1),
    ("NZ", 1),
    ("LT", 1),
    ("LV", 1),
];

/// Registration-year weights (Figure 16: heavily recent, tail to 2005).
const YEARS: &[(u16, u32)] = &[
    (2005, 6),
    (2010, 10),
    (2011, 10),
    (2012, 14),
    (2013, 18),
    (2014, 40),
    (2015, 120),
    (2016, 220),
    (2017, 700),
    (2018, 380),
];

fn hash_of(domain: &str, salt: u64) -> u64 {
    let mut h = std::collections::hash_map::DefaultHasher::new();
    salt.hash(&mut h);
    domain.hash(&mut h);
    h.finish()
}

fn pick_weighted<T: Copy>(table: &[(T, u32)], h: u64) -> T {
    let total: u64 = table.iter().map(|(_, w)| *w as u64).sum();
    let mut r = h % total;
    for (item, w) in table {
        if r < *w as u64 {
            return *item;
        }
        r -= *w as u64;
    }
    table.last().expect("nonempty table").0
}

/// Country code for a phishing domain's hosting IP.
pub fn country_of(domain: &str) -> &'static str {
    pick_weighted(COUNTRIES, hash_of(domain, 0xC0))
}

/// Registrar of a phishing domain; `None` models the ~37% of whois
/// records without registrar information (738/1175 had one).
pub fn registrar_of(domain: &str) -> Option<&'static str> {
    let h = hash_of(domain, 0x1E);
    if h % 1175 >= 738 {
        return None;
    }
    Some(pick_weighted(REGISTRARS, h / 7))
}

/// Registration year of a domain.
pub fn registration_year(domain: &str) -> u16 {
    pick_weighted(YEARS, hash_of(domain, 0x4E))
}

/// Full whois record.
pub fn whois(domain: &str) -> WhoisRecord {
    WhoisRecord {
        registrar: registrar_of(domain),
        year: registration_year(domain),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashMap;

    fn sample_domains(n: usize) -> Vec<String> {
        (0..n).map(|i| format!("phish{i}.example")).collect()
    }

    #[test]
    fn deterministic() {
        assert_eq!(country_of("mobile-adp.com"), country_of("mobile-adp.com"));
        assert_eq!(whois("x.com"), whois("x.com"));
    }

    #[test]
    fn us_is_top_country() {
        let mut counts: HashMap<&str, usize> = HashMap::new();
        for d in sample_domains(2000) {
            *counts.entry(country_of(&d)).or_default() += 1;
        }
        let us = counts["US"];
        let max_other = counts
            .iter()
            .filter(|(k, _)| **k != "US")
            .map(|(_, v)| *v)
            .max()
            .unwrap();
        assert!(us > max_other, "US {us} vs max other {max_other}");
        // DE should be second-heavy.
        assert!(counts["DE"] > counts.get("RU").copied().unwrap_or(0));
    }

    #[test]
    fn recent_years_dominate() {
        let mut recent = 0;
        let mut old = 0;
        for d in sample_domains(2000) {
            if registration_year(&d) >= 2015 {
                recent += 1;
            } else {
                old += 1;
            }
        }
        assert!(recent > old * 4, "recent {recent} old {old}");
    }

    #[test]
    fn registrar_missing_rate_near_paper() {
        let n = 4000;
        let missing = sample_domains(n)
            .iter()
            .filter(|d| registrar_of(d).is_none())
            .count();
        let rate = missing as f64 / n as f64;
        // Paper: 437/1175 ≈ 0.372 without registrar info.
        assert!((rate - 0.372).abs() < 0.05, "missing rate {rate}");
    }

    #[test]
    fn godaddy_is_top_registrar() {
        let mut counts: HashMap<&str, usize> = HashMap::new();
        for d in sample_domains(3000) {
            if let Some(r) = registrar_of(&d) {
                *counts.entry(r).or_default() += 1;
            }
        }
        let gd = counts["godaddy.com"];
        let max_other = counts
            .iter()
            .filter(|(k, _)| **k != "godaddy.com")
            .map(|(_, v)| *v)
            .max()
            .unwrap();
        assert!(gd >= max_other);
    }

    #[test]
    fn country_table_has_53_entries() {
        assert_eq!(COUNTRIES.len(), 53);
    }
}
