//! The synthetic web world (paper §3.2, §4, §6).
//!
//! The paper crawls the live 2018 web; we rebuild that world from its
//! measured distributions so every downstream pipeline stage runs on
//! equivalent inputs:
//!
//! * [`behavior`] — per-domain site behavior (dead / parked / benign /
//!   redirect-to-original / redirect-to-marketplace / phishing with
//!   evasion knobs), assigned with the paper's Table 2-4 ratios,
//! * [`pages`] — HTML generators: canonical brand login pages, phishing
//!   variants (layout / string / code obfuscation), parked pages,
//!   marketplace pages, and the "easy-to-confuse" benign pages (survey
//!   forms, brand plugins) that the paper says cause classifier errors,
//! * [`world`] — [`WebWorld`]: host → behavior resolution, device
//!   cloaking, snapshot liveness (Figure 17, Table 13),
//! * [`whois`] — registrar and registration-year model (Figure 16) and
//!   IP geolocation model (Figure 15).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod behavior;
pub mod pages;
pub mod whois;
pub mod world;

pub use behavior::{Cloaking, LifetimePattern, PhishingProfile, ScamKind, SiteBehavior};
pub use pages::PageStyle;
pub use whois::{country_of, registrar_of, registration_year, WhoisRecord};
pub use world::{Device, ServeClass, ServeResult, Site, Snapshot, WebWorld, WorldConfig};
