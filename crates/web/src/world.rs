//! The [`WebWorld`]: host → behavior resolution with device cloaking and
//! snapshot dynamics.

use crate::behavior::{Cloaking, LifetimePattern, PhishingProfile, ScamKind, SiteBehavior};
use crate::pages;
use rand::prelude::*;
use rand::rngs::StdRng;
use squatphi_squat::{BrandId, BrandRegistry, SquatType};
use std::collections::HashMap;
use std::net::Ipv4Addr;

/// The 22 known domain marketplaces the paper compiled (names synthetic).
pub const MARKETPLACES: &[&str] = &[
    "marketmonitor.example",
    "sedo.example",
    "afternic.example",
    "dan.example",
    "flippa.example",
    "hugedomains.example",
    "buydomains.example",
    "namejet.example",
    "snapnames.example",
    "dropcatch.example",
    "parkingcrew.example",
    "bodis.example",
    "above.example",
    "undeveloped.example",
    "uniregistry.example",
    "epik.example",
    "dynadot.example",
    "squadhelp.example",
    "brandbucket.example",
    "efty.example",
    "domainagents.example",
    "grit.example",
];

/// Device profile of a crawl request (the paper's two User-Agent strings).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Device {
    /// Desktop Chrome 65.
    Web,
    /// iPhone 6 Safari/Chrome.
    Mobile,
}

/// One of the four crawl snapshots (April 01 / 08 / 22 / 29, 2018).
pub type Snapshot = u8;

/// Labels for the four snapshots.
pub const SNAPSHOT_DATES: [&str; 4] = ["April 01", "April 08", "April 22", "April 29"];

/// A site entry in the world.
#[derive(Debug, Clone)]
pub struct Site {
    /// The registrable squatting domain.
    pub domain: String,
    /// Impersonated brand (if the domain came from the squat scan).
    pub brand: Option<BrandId>,
    /// Squatting type (if any).
    pub squat_type: Option<SquatType>,
    /// What the site does.
    pub behavior: SiteBehavior,
    /// Hosting IP.
    pub ip: Ipv4Addr,
}

/// What a request returns.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ServeResult {
    /// Connection failed / NXDOMAIN.
    Unreachable,
    /// HTTP redirect to another absolute URL.
    Redirect(String),
    /// An HTML page.
    Page(String),
}

/// The payload-free class of a [`ServeResult`] — what transports map
/// onto their own error taxonomies (the crawler turns `Unreachable`
/// into a connection-refused fetch error).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ServeClass {
    /// Connection failed / NXDOMAIN.
    Unreachable,
    /// HTTP redirect.
    Redirect,
    /// An HTML page.
    Page,
}

impl ServeResult {
    /// This result's class.
    pub fn class(&self) -> ServeClass {
        match self {
            ServeResult::Unreachable => ServeClass::Unreachable,
            ServeResult::Redirect(_) => ServeClass::Redirect,
            ServeResult::Page(_) => ServeClass::Page,
        }
    }

    /// Whether the request failed to reach any server.
    pub fn is_unreachable(&self) -> bool {
        matches!(self, ServeResult::Unreachable)
    }
}

impl std::fmt::Display for ServeClass {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            ServeClass::Unreachable => "unreachable",
            ServeClass::Redirect => "redirect",
            ServeClass::Page => "page",
        })
    }
}

impl std::fmt::Display for ServeResult {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServeResult::Unreachable => f.write_str("unreachable"),
            ServeResult::Redirect(url) => write!(f, "redirect -> {url}"),
            ServeResult::Page(html) => write!(f, "page ({} bytes)", html.len()),
        }
    }
}

/// Behavior-mix configuration (paper Tables 2-4, §6.1).
#[derive(Debug, Clone)]
pub struct WorldConfig {
    /// Fraction of squatting domains that are live (~0.55 in Table 2).
    pub live_fraction: f64,
    /// Among live: fraction redirecting to the original brand site.
    pub redirect_original: f64,
    /// Among live: fraction redirecting to marketplaces.
    pub redirect_market: f64,
    /// Among live: fraction redirecting elsewhere.
    pub redirect_other: f64,
    /// Number of phishing domains to plant (paper: 1,175).
    pub phishing_domains: usize,
    /// Fraction of live non-phishing sites that are confusing-benign
    /// (forms, brand plugins) — the classifier's hard negatives.
    pub confusing_fraction: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for WorldConfig {
    fn default() -> Self {
        WorldConfig {
            live_fraction: 0.551,
            redirect_original: 0.017,
            redirect_market: 0.030,
            redirect_other: 0.080,
            phishing_domains: 1175,
            confusing_fraction: 0.10,
            seed: 20180401,
        }
    }
}

/// The synthetic web: every squatting domain mapped to a behavior.
#[derive(Debug, Clone)]
pub struct WebWorld {
    sites: HashMap<String, Site>,
    registry_labels: Vec<String>,
    registry_domains: Vec<String>,
    brand_pages: Vec<String>,
}

impl WebWorld {
    /// Builds the world over the squat-scan output: `(domain, brand,
    /// squat_type, ip)` tuples. Behavior assignment reproduces the
    /// paper's measured mix; phishing placement is weighted toward the
    /// brands the paper found heavily targeted (google first at 194
    /// pages — Figure 13).
    pub fn build(
        squats: &[(String, BrandId, SquatType, Ipv4Addr)],
        registry: &BrandRegistry,
        config: &WorldConfig,
    ) -> Self {
        let mut rng = StdRng::seed_from_u64(config.seed);
        let mut sites = HashMap::with_capacity(squats.len());

        // Choose phishing hosts by weighted sampling *without replacement*
        // (exponential-race trick: smallest -ln(u)/w wins). Heavy brands
        // dominate (google first, Figure 13) but the tail still lands a
        // few phishing domains each, reproducing the paper's 281 targeted
        // brands.
        let mut keyed: Vec<(f64, usize)> = squats
            .iter()
            .enumerate()
            .map(|(i, (d, b, t, _))| {
                let w = phishing_weight(registry, *b, *t) as f64;
                // Uniform in (0,1) from the domain hash, stable across runs.
                let u = ((fxhash(d) >> 11) as f64 + 1.0) / ((1u64 << 53) as f64 + 2.0);
                (-u.ln() / w, i)
            })
            .collect();
        let phishing_count = config.phishing_domains.min(squats.len());
        if phishing_count > 0 && phishing_count < keyed.len() {
            keyed.select_nth_unstable_by(phishing_count - 1, |a, b| {
                a.0.partial_cmp(&b.0).expect("finite keys")
            });
        }
        let phishing_set: std::collections::HashSet<usize> =
            keyed.iter().take(phishing_count).map(|&(_, i)| i).collect();

        for (i, (domain, brand, squat_type, ip)) in squats.iter().enumerate() {
            let behavior = if phishing_set.contains(&i) {
                SiteBehavior::Phishing(make_profile(*brand, &mut rng))
            } else {
                assign_benign_behavior(*brand, config, &mut rng)
            };
            sites.insert(
                domain.clone(),
                Site {
                    domain: domain.clone(),
                    brand: Some(*brand),
                    squat_type: Some(*squat_type),
                    behavior,
                    ip: *ip,
                },
            );
        }
        WebWorld {
            sites,
            registry_labels: registry.brands().iter().map(|b| b.label.clone()).collect(),
            registry_domains: registry
                .brands()
                .iter()
                .map(|b| b.domain.as_str().to_string())
                .collect(),
            brand_pages: registry
                .brands()
                .iter()
                .map(pages::brand_login_page)
                .collect(),
        }
    }

    /// Adds an explicit site (used by the ground-truth feed and tests).
    pub fn insert_site(&mut self, site: Site) {
        self.sites.insert(site.domain.clone(), site);
    }

    /// All sites.
    pub fn sites(&self) -> impl Iterator<Item = &Site> {
        self.sites.values()
    }

    /// Site lookup by registrable domain.
    pub fn site(&self, domain: &str) -> Option<&Site> {
        self.sites.get(domain)
    }

    /// Number of sites.
    pub fn len(&self) -> usize {
        self.sites.len()
    }

    /// Whether the world has no sites.
    pub fn is_empty(&self) -> bool {
        self.sites.is_empty()
    }

    /// The canonical login page of a brand (what the real site serves).
    pub fn brand_page(&self, brand: BrandId) -> Option<&str> {
        self.brand_pages.get(brand).map(String::as_str)
    }

    /// Serves a request for `host` from `device` at snapshot `snapshot`.
    /// Brand-canonical hosts are always served; squat hosts follow their
    /// assigned behavior.
    pub fn serve(&self, host: &str, device: Device, snapshot: Snapshot) -> ServeResult {
        // The brands' own sites.
        if let Some(b) = self.registry_domains.iter().position(|d| d == host) {
            return ServeResult::Page(self.brand_pages[b].clone());
        }
        let Some(site) = self.sites.get(host) else {
            return ServeResult::Unreachable;
        };
        match &site.behavior {
            SiteBehavior::Dead => ServeResult::Unreachable,
            SiteBehavior::Parked => ServeResult::Page(pages::parked_page(host)),
            SiteBehavior::Benign => ServeResult::Page(pages::benign_page(host, fxhash(host))),
            SiteBehavior::ConfusingBenign => {
                let brand_label = site
                    .brand
                    .and_then(|b| self.registry_labels.get(b))
                    .map(String::as_str);
                ServeResult::Page(pages::confusing_benign_page(
                    host,
                    brand_label,
                    fxhash(host),
                ))
            }
            SiteBehavior::RedirectOriginal { brand } => {
                let target = self
                    .registry_domains
                    .get(*brand)
                    .cloned()
                    .unwrap_or_else(|| "example.com".into());
                ServeResult::Redirect(format!("https://{target}/"))
            }
            SiteBehavior::RedirectMarket { market } => {
                let m = MARKETPLACES[market % MARKETPLACES.len()];
                ServeResult::Redirect(format!("http://{m}/domain/{host}"))
            }
            SiteBehavior::RedirectOther => ServeResult::Redirect(format!(
                "http://tracker{}.example/lander",
                fxhash(host) % 50
            )),
            SiteBehavior::Phishing(profile) => {
                self.serve_phishing(site, profile, device, snapshot, host)
            }
        }
    }

    fn serve_phishing(
        &self,
        site: &Site,
        profile: &PhishingProfile,
        device: Device,
        snapshot: Snapshot,
        host: &str,
    ) -> ServeResult {
        if !profile.lifetime.phishing_live(snapshot) {
            // Taken down: either gone entirely or replaced by benign.
            return match profile.lifetime {
                LifetimePattern::Comeback => {
                    ServeResult::Page(pages::benign_page(host, fxhash(host)))
                }
                _ => ServeResult::Unreachable,
            };
        }
        let cloaked_away = matches!(
            (profile.cloaking, device),
            (Cloaking::MobileOnly, Device::Web) | (Cloaking::WebOnly, Device::Mobile)
        );
        if cloaked_away {
            return ServeResult::Page(pages::benign_page(host, fxhash(host) ^ 1));
        }
        let brand_label = site
            .brand
            .and_then(|b| self.registry_labels.get(b))
            .cloned()
            .unwrap_or_default();
        // Rebuild a Brand view for the page generator (label + id are all
        // it reads).
        let brand = squatphi_squat::Brand {
            id: profile.brand,
            label: brand_label.clone(),
            domain: squatphi_domain::DomainName::parse(
                self.registry_domains
                    .get(profile.brand)
                    .map(String::as_str)
                    .unwrap_or("example.com"),
            )
            .expect("registry domains are valid"),
            category: squatphi_squat::Category::PhishTankOnly,
            alexa_rank: 0,
            phishtank_target: false,
        };
        ServeResult::Page(pages::phishing_page(&brand, profile, host, fxhash(host)))
    }
}

/// Deterministic string hash (FxHash-style multiply-xor).
pub fn fxhash(s: &str) -> u64 {
    let mut h = 0xcbf29ce484222325u64;
    for b in s.bytes() {
        h = (h ^ b as u64).wrapping_mul(0x100000001b3);
    }
    h
}

fn phishing_weight(registry: &BrandRegistry, brand: BrandId, ty: SquatType) -> u64 {
    let label = registry.get(brand).map(|b| b.label.as_str()).unwrap_or("");
    // Figure 13: google dominates (194), then ford/facebook/bitcoin/
    // amazon/apple in the 20-40 band; combo slightly favored (Figure 12).
    let brand_w: u64 = match label {
        "google" => 200,
        "ford" => 40,
        "facebook" => 38,
        "bitcoin" => 33,
        "archive" => 30,
        "amazon" => 28,
        "europa" => 25,
        "cisco" => 24,
        "discover" => 23,
        "apple" => 22,
        "porn" => 20,
        "healthcare" => 18,
        "samsung" => 17,
        "intel" => 16,
        "uber" => 16,
        "people" => 14,
        "citi" => 14,
        "youtube" => 13,
        "paypal" => 12,
        "ebay" => 8,
        "microsoft" => 6,
        "twitter" => 6,
        "dropbox" => 4,
        "github" => 5,
        "adp" => 5,
        "santander" => 2,
        _ => 1,
    };
    let type_w: u64 = match ty {
        SquatType::Combo => 5,
        SquatType::Typo => 3,
        SquatType::Homograph => 3,
        SquatType::Bits => 2,
        SquatType::WrongTld => 2,
    };
    brand_w * type_w
}

fn make_profile(brand: BrandId, rng: &mut StdRng) -> PhishingProfile {
    // Cloaking mix from §6.1: 590/1175 both, 318 mobile-only, 267 web-only.
    let cloaking = match rng.gen_range(0..1175u32) {
        0..=589 => Cloaking::None,
        590..=907 => Cloaking::MobileOnly,
        _ => Cloaking::WebOnly,
    };
    // Lifetime from Figure 17: ~80% stable over the month; a sliver of
    // comebacks (Table 13).
    let lifetime = match rng.gen_range(0..100u32) {
        0..=79 => LifetimePattern::Stable,
        80..=84 => LifetimePattern::TakenDown { down_from: 1 },
        85..=92 => LifetimePattern::TakenDown { down_from: 2 },
        93..=97 => LifetimePattern::TakenDown { down_from: 3 },
        _ => LifetimePattern::Comeback,
    };
    let scam = match rng.gen_range(0..100u32) {
        0..=59 => ScamKind::FakeLogin,
        60..=69 => ScamKind::PaymentTheft,
        70..=79 => ScamKind::FakeSearch,
        80..=86 => ScamKind::TechSupport,
        87..=93 => ScamKind::Payroll,
        _ => ScamKind::OfflineScam,
    };
    PhishingProfile {
        brand,
        scam,
        // Table 11: squatting phishing layout distance 28.4±11.8 → mostly
        // intensity 2-3.
        layout_obfuscation: match rng.gen_range(0..100u32) {
            0..=9 => 0,
            10..=34 => 1,
            35..=74 => 2,
            _ => 3,
        },
        // 68.1% string obfuscation.
        string_obfuscation: rng.gen_bool(0.681),
        // 34% code obfuscation.
        code_obfuscation: rng.gen_bool(0.340),
        cloaking,
        lifetime,
    }
}

fn assign_benign_behavior(brand: BrandId, config: &WorldConfig, rng: &mut StdRng) -> SiteBehavior {
    if !rng.gen_bool(config.live_fraction) {
        return SiteBehavior::Dead;
    }
    let r: f64 = rng.gen();
    if r < config.redirect_original {
        SiteBehavior::RedirectOriginal { brand }
    } else if r < config.redirect_original + config.redirect_market {
        SiteBehavior::RedirectMarket {
            market: rng.gen_range(0..MARKETPLACES.len()),
        }
    } else if r < config.redirect_original + config.redirect_market + config.redirect_other {
        SiteBehavior::RedirectOther
    } else if r < config.redirect_original
        + config.redirect_market
        + config.redirect_other
        + config.confusing_fraction
    {
        SiteBehavior::ConfusingBenign
    } else if rng.gen_bool(0.5) {
        SiteBehavior::Parked
    } else {
        SiteBehavior::Benign
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_world() -> (WebWorld, BrandRegistry) {
        let registry = BrandRegistry::with_size(30);
        let mut squats = Vec::new();
        for (i, b) in registry.brands().iter().enumerate() {
            for j in 0..40 {
                squats.push((
                    format!("{}-squat{}.com", b.label, j),
                    i,
                    SquatType::Combo,
                    Ipv4Addr::new(198, 51, (i % 250) as u8, j as u8),
                ));
            }
        }
        let config = WorldConfig {
            phishing_domains: 60,
            seed: 5,
            ..WorldConfig::default()
        };
        (WebWorld::build(&squats, &registry, &config), registry)
    }

    #[test]
    fn world_covers_all_squats() {
        let (world, reg) = tiny_world();
        assert_eq!(world.len(), reg.len() * 40);
    }

    #[test]
    fn phishing_count_matches_config() {
        let (world, _) = tiny_world();
        let n = world.sites().filter(|s| s.behavior.is_phishing()).count();
        assert_eq!(n, 60);
    }

    #[test]
    fn google_gets_most_phishing() {
        let (world, reg) = tiny_world();
        let google = reg.by_label("google").unwrap().id;
        let mut per_brand = vec![0usize; reg.len()];
        for s in world.sites().filter(|s| s.behavior.is_phishing()) {
            per_brand[s.brand.unwrap()] += 1;
        }
        let max = per_brand.iter().max().copied().unwrap();
        assert_eq!(
            per_brand[google], max,
            "google {} vs max {max}",
            per_brand[google]
        );
    }

    #[test]
    fn behavior_mix_roughly_matches() {
        let (world, _) = tiny_world();
        let total = world.len() as f64;
        let live = world.sites().filter(|s| s.behavior.is_live()).count() as f64;
        assert!(
            (live / total - 0.55).abs() < 0.1,
            "live fraction {}",
            live / total
        );
    }

    #[test]
    fn serve_brand_site() {
        let (world, reg) = tiny_world();
        let d = reg.by_label("paypal").unwrap().domain.as_str().to_string();
        match world.serve(&d, Device::Web, 0) {
            ServeResult::Page(p) => assert!(p.contains("paypal")),
            other => panic!("expected page, got {other:?}"),
        }
    }

    #[test]
    fn serve_unknown_host_unreachable() {
        let (world, _) = tiny_world();
        assert_eq!(
            world.serve("unknown.example", Device::Web, 0),
            ServeResult::Unreachable
        );
    }

    #[test]
    fn redirects_resolve() {
        let (world, _) = tiny_world();
        let mut seen_redirect = false;
        for s in world.sites() {
            if let SiteBehavior::RedirectOriginal { .. } | SiteBehavior::RedirectMarket { .. } =
                s.behavior
            {
                match world.serve(&s.domain, Device::Web, 0) {
                    ServeResult::Redirect(url) => {
                        assert!(url.starts_with("http"));
                        seen_redirect = true;
                    }
                    other => panic!("expected redirect for {}, got {other:?}", s.domain),
                }
            }
        }
        assert!(
            seen_redirect,
            "no redirect behaviors assigned at this scale"
        );
    }

    #[test]
    fn cloaking_serves_different_pages() {
        let (world, _) = tiny_world();
        let cloaked: Vec<&Site> = world
            .sites()
            .filter(|s| {
                matches!(
                    &s.behavior,
                    SiteBehavior::Phishing(p) if p.cloaking == Cloaking::MobileOnly
                        && p.lifetime == LifetimePattern::Stable
                )
            })
            .collect();
        assert!(!cloaked.is_empty(), "no mobile-only phishing in sample");
        let s = cloaked[0];
        let web = world.serve(&s.domain, Device::Web, 0);
        let mobile = world.serve(&s.domain, Device::Mobile, 0);
        assert_ne!(web, mobile);
        if let ServeResult::Page(p) = mobile {
            assert!(p.contains("form"), "mobile should get the phishing form");
        } else {
            panic!("mobile request should get a page");
        }
    }

    #[test]
    fn takedown_lifecycle_respected() {
        let (world, _) = tiny_world();
        for s in world.sites() {
            if let SiteBehavior::Phishing(p) = &s.behavior {
                if let LifetimePattern::TakenDown { down_from } = p.lifetime {
                    let before =
                        world.serve(&s.domain, Device::Mobile, down_from.saturating_sub(1));
                    let after = world.serve(&s.domain, Device::Mobile, down_from);
                    if down_from > 0 {
                        assert_ne!(before, ServeResult::Unreachable);
                    }
                    assert_eq!(after, ServeResult::Unreachable);
                    return;
                }
            }
        }
    }

    #[test]
    fn serve_results_classify_and_display() {
        assert_eq!(ServeResult::Unreachable.class(), ServeClass::Unreachable);
        assert!(ServeResult::Unreachable.is_unreachable());
        let r = ServeResult::Redirect("http://x.example/".into());
        assert_eq!(r.class(), ServeClass::Redirect);
        assert_eq!(r.to_string(), "redirect -> http://x.example/");
        let p = ServeResult::Page("<html></html>".into());
        assert_eq!(p.class(), ServeClass::Page);
        assert_eq!(p.to_string(), "page (13 bytes)");
        assert_eq!(ServeClass::Unreachable.to_string(), "unreachable");
    }

    #[test]
    fn deterministic_serving() {
        let (world, _) = tiny_world();
        for s in world.sites().take(10) {
            assert_eq!(
                world.serve(&s.domain, Device::Web, 0),
                world.serve(&s.domain, Device::Web, 0)
            );
        }
    }
}
