//! Site behaviors and the phishing evasion profile.

use squatphi_squat::BrandId;

/// How a phishing page cloaks by device (paper §6.1 "Mobile vs. Web":
/// of 1,175 phishing domains, 590 served both, 318 mobile-only, 267
/// web-only).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Cloaking {
    /// Serves the phishing page to both device profiles.
    None,
    /// Phishing page for mobile user-agents only; web gets a bland page.
    MobileOnly,
    /// Phishing page for desktop user-agents only.
    WebOnly,
}

/// Per-snapshot liveness (Figure 17: ~80% still live after a month;
/// Table 13 shows a page that disappears and *comes back*).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum LifetimePattern {
    /// Live in all four snapshots.
    Stable,
    /// Taken down starting at snapshot `down_from` (0-based).
    TakenDown {
        /// First snapshot index at which the page is gone.
        down_from: u8,
    },
    /// Replaced by a benign page at snapshot 2, phishing again at 3 —
    /// the `tacebook.ga` pattern.
    Comeback,
}

impl LifetimePattern {
    /// Whether the phishing page is being served at snapshot `s` (0..4).
    pub fn phishing_live(&self, s: u8) -> bool {
        match self {
            LifetimePattern::Stable => true,
            LifetimePattern::TakenDown { down_from } => s < *down_from,
            LifetimePattern::Comeback => s != 2,
        }
    }
}

/// The targeted-scam archetypes from the paper's case studies (§6.2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ScamKind {
    /// Classic credential-stealing login form.
    FakeLogin,
    /// Fake search engine serving extra ads (goofle.com.ua).
    FakeSearch,
    /// Tech-support scam with a phone number (live-microsoftsupport.com).
    TechSupport,
    /// Payroll-service scam (mobile-adp.com).
    Payroll,
    /// Account theft for offline abuse (go-uberfreight.com).
    OfflineScam,
    /// Payment-account compromise (securemail-citizenslc.com).
    PaymentTheft,
}

impl ScamKind {
    /// All archetypes.
    pub const ALL: [ScamKind; 6] = [
        ScamKind::FakeLogin,
        ScamKind::FakeSearch,
        ScamKind::TechSupport,
        ScamKind::Payroll,
        ScamKind::OfflineScam,
        ScamKind::PaymentTheft,
    ];
}

/// Evasion knobs of one squatting phishing page (§4.2, Table 11).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PhishingProfile {
    /// Impersonated brand.
    pub brand: BrandId,
    /// Scam archetype.
    pub scam: ScamKind,
    /// Layout obfuscation intensity 0..=3 (0 ≈ pixel-near copy, distance
    /// ~7; 3 ≈ heavily restyled, distance ~38 — Figure 8).
    pub layout_obfuscation: u8,
    /// Brand keywords hidden from HTML text (homoglyphs / baked into
    /// images) while staying visible on screen.
    pub string_obfuscation: bool,
    /// Obfuscated JavaScript on the page.
    pub code_obfuscation: bool,
    /// Device cloaking.
    pub cloaking: Cloaking,
    /// Per-snapshot liveness.
    pub lifetime: LifetimePattern,
}

/// What a (squatting) domain does when visited.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SiteBehavior {
    /// Unreachable (the ~45% of squatting domains that never resolve to a
    /// live site — Table 2).
    Dead,
    /// Generic parked page with ads.
    Parked,
    /// An unrelated benign site that happens to sit on the squat domain.
    Benign,
    /// Benign page that *looks* phishy: survey forms, feedback boxes,
    /// third-party brand plugins (the paper's main false-positive source).
    ConfusingBenign,
    /// Defensive registration: redirects to the brand's real site (1.7%).
    RedirectOriginal {
        /// The brand whose official site is the target.
        brand: BrandId,
    },
    /// For-sale redirect to a domain marketplace (3.0%).
    RedirectMarket {
        /// Marketplace index into [`crate::world::MARKETPLACES`].
        market: usize,
    },
    /// Redirect somewhere else (8.0%).
    RedirectOther,
    /// A squatting phishing page.
    Phishing(PhishingProfile),
}

impl SiteBehavior {
    /// Whether this behavior serves *any* HTTP response.
    pub fn is_live(&self) -> bool {
        !matches!(self, SiteBehavior::Dead)
    }

    /// Whether this is a phishing behavior.
    pub fn is_phishing(&self) -> bool {
        matches!(self, SiteBehavior::Phishing(_))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lifetime_patterns() {
        assert!(LifetimePattern::Stable.phishing_live(3));
        let down = LifetimePattern::TakenDown { down_from: 2 };
        assert!(down.phishing_live(0));
        assert!(down.phishing_live(1));
        assert!(!down.phishing_live(2));
        assert!(!down.phishing_live(3));
        let back = LifetimePattern::Comeback;
        assert!(back.phishing_live(0));
        assert!(back.phishing_live(1));
        assert!(!back.phishing_live(2));
        assert!(
            back.phishing_live(3),
            "tacebook.ga comes back in snapshot 4"
        );
    }

    #[test]
    fn behavior_liveness() {
        assert!(!SiteBehavior::Dead.is_live());
        assert!(SiteBehavior::Parked.is_live());
        assert!(SiteBehavior::RedirectOther.is_live());
    }

    #[test]
    fn phishing_flag() {
        let p = SiteBehavior::Phishing(PhishingProfile {
            brand: 0,
            scam: ScamKind::FakeLogin,
            layout_obfuscation: 1,
            string_obfuscation: true,
            code_obfuscation: false,
            cloaking: Cloaking::None,
            lifetime: LifetimePattern::Stable,
        });
        assert!(p.is_phishing());
        assert!(!SiteBehavior::Benign.is_phishing());
    }
}
