//! Debug harness: planted vs detected type mix, plus benign-word
//! collision check against the squat detector.

fn main() {
    let reg = squatphi_squat::BrandRegistry::paper();
    let det = squatphi_squat::SquatDetector::new(&reg);

    // Benign-word collision check.
    for w in squatphi_squat::words::BENIGN_WORDS {
        for tld in ["com", "net", "de", "org"] {
            for pattern in [
                format!("{w}.{tld}"),
                format!("{w}-almond.{tld}"),
                format!("almond-{w}.{tld}"),
            ] {
                if let Ok(d) = squatphi_domain::DomainName::parse(&pattern) {
                    if let Some(m) = det.classify(&d) {
                        println!(
                            "COLLISION {pattern} -> {:?} {}",
                            m.squat_type,
                            reg.get(m.brand).unwrap().label
                        );
                    }
                }
            }
        }
    }

    // Planted vs detected mix.
    let cfg = squatphi_dnsdb::SnapshotConfig::paper_scale(2000);
    let (store, stats) = squatphi_dnsdb::synth::generate(&cfg, &reg);
    let out = squatphi_dnsdb::scan(&store, &reg, &det, 8);
    println!("planted {:?}", stats.planted_by_type);
    println!("scanned {:?}", out.by_type);
    let mut top: Vec<(usize, usize)> = stats.planted_by_brand.iter().copied().enumerate().collect();
    top.sort_by_key(|x| std::cmp::Reverse(x.1));
    for (b, n) in top.iter().take(8) {
        println!("brand {} planted {}", reg.get(*b).unwrap().label, n);
    }
}
