//! Debug harness: RF score distribution per page-template group, to see
//! which templates the classifier separates trivially.

use squatphi::train::{build_ground_truth, fit_final_model};
use squatphi::{FeatureExtractor, SimConfig};
use squatphi_feeds::{FeedConfig, GroundTruthFeed};
use squatphi_ml::Classifier;
use squatphi_squat::BrandRegistry;
use squatphi_web::pages;

fn main() {
    let config = SimConfig::tiny();
    let registry = BrandRegistry::with_size(config.brands);
    let feed = GroundTruthFeed::generate(
        &registry,
        &FeedConfig {
            total_urls: 700,
            seed: 13,
        },
    );
    let fx = FeatureExtractor::new(&registry);

    let top8 = feed.top8(&registry);
    let phishing: Vec<&str> = top8
        .iter()
        .filter(|e| e.still_phishing)
        .map(|e| e.html.as_str())
        .collect();
    let benign: Vec<&str> = top8
        .iter()
        .filter(|e| !e.still_phishing)
        .map(|e| e.html.as_str())
        .collect();
    let data = build_ground_truth(&fx, &phishing, &benign, 8);
    let model = fit_final_model(&data, 1);

    let brand = registry.by_label("paypal").unwrap();
    let groups: Vec<(&str, Vec<String>)> = vec![
        (
            "phish:full-login",
            (0..20)
                .map(|k| pages::non_squatting_phishing_page(brand, false, "h.com", k * 16))
                .collect(),
        ),
        (
            "phish:two-step",
            (0..20)
                .map(|k| pages::non_squatting_phishing_page(brand, false, "h.com", k * 16 + 7))
                .collect(),
        ),
        (
            "phish:evasive",
            (0..20)
                .map(|k| pages::non_squatting_phishing_page(brand, true, "h.com", k))
                .collect(),
        ),
        (
            "benign:login",
            (0..20)
                .map(|k| pages::benign_login_page("h.com", Some("paypal"), k))
                .collect(),
        ),
        (
            "benign:fanforum",
            (0..20)
                .map(|k| pages::confusing_benign_page("h.com", Some("paypal"), k * 12 + 7))
                .collect(),
        ),
        (
            "benign:federated",
            (0..20)
                .map(|k| pages::confusing_benign_page("h.com", Some("paypal"), k * 12 + 6))
                .collect(),
        ),
        (
            "benign:survey",
            (0..20)
                .map(|k| pages::confusing_benign_page("h.com", Some("paypal"), k * 12))
                .collect(),
        ),
    ];
    for (name, htmls) in groups {
        let scores: Vec<f64> = htmls.iter().map(|h| model.score(&fx.extract(h))).collect();
        let mean = scores.iter().sum::<f64>() / scores.len() as f64;
        let min = scores.iter().cloned().fold(f64::MAX, f64::min);
        let max = scores.iter().cloned().fold(f64::MIN, f64::max);
        let flagged = scores.iter().filter(|&&s| s >= 0.5).count();
        println!("{name:18} mean {mean:.2} min {min:.2} max {max:.2} flagged {flagged}/20");
    }
}
