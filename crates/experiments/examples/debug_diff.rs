//! Dump feature-vector diff between a two-step phishing page and a fan
//! forum benign page to find residual template leaks.
use squatphi::{FeatureExtractor, SimConfig};
use squatphi_squat::BrandRegistry;
use squatphi_web::pages;

fn main() {
    let config = SimConfig::tiny();
    let registry = BrandRegistry::with_size(config.brands);
    let fx = FeatureExtractor::new(&registry);
    let brand = registry.by_label("paypal").unwrap();
    let phish = pages::non_squatting_phishing_page(brand, false, "h.com", 7);
    let fan = pages::confusing_benign_page("h.com", Some("paypal"), 7);
    let vp = fx.extract(&phish);
    let vf = fx.extract(&fan);
    let dims: std::collections::BTreeSet<usize> = vp
        .entries()
        .iter()
        .chain(vf.entries())
        .map(|(i, _)| *i)
        .collect();
    for d in dims {
        let (a, b) = (vp.get(d), vf.get(d));
        if (a - b).abs() > 0.5 {
            println!("dim {d:4} {:24} phish {a:4.1} fan {b:4.1}", name_of(&fx, d));
        }
    }
    println!("--- phish html ---\n{phish}\n--- fan html ---\n{fan}");
}

fn name_of(fx: &FeatureExtractor, d: usize) -> String {
    for w in squatphi_nlp::spell::BASE_DICTIONARY {
        if fx.space().keyword(w) == Some(d) {
            return (*w).to_string();
        }
    }
    let reg = BrandRegistry::paper();
    for b in reg.brands() {
        if fx.space().keyword(&b.label) == Some(d) {
            return format!("brand:{}", b.label);
        }
    }
    for n in [
        "form_count",
        "password_inputs",
        "text_inputs",
        "submit_controls",
        "js_obfuscated",
    ] {
        if fx.space().numeric(n) == Some(d) {
            return format!("num:{n}");
        }
    }
    format!("keyword#{d}")
}
