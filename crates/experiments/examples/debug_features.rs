//! Debug harness: find feature dimensions that (almost) perfectly
//! separate the ground-truth classes — such dimensions mean the page
//! generators leak template-unique vocabulary.

use squatphi::{FeatureExtractor, SimConfig};
use squatphi_feeds::{FeedConfig, GroundTruthFeed};
use squatphi_squat::BrandRegistry;

fn main() {
    let config = SimConfig::tiny();
    let registry = BrandRegistry::with_size(config.brands);
    let feed = GroundTruthFeed::generate(
        &registry,
        &FeedConfig {
            total_urls: 700,
            seed: 13,
        },
    );
    let fx = FeatureExtractor::new(&registry);

    let top8 = feed.top8(&registry);
    let pages: Vec<(&str, bool)> = top8
        .iter()
        .map(|e| (e.html.as_str(), e.still_phishing))
        .collect();
    let data = fx.build_dataset(&pages, 8);
    println!(
        "dataset: {} samples, {} positive",
        data.len(),
        data.positives()
    );

    let dim = data.dim();
    for d in 0..dim {
        let mut pos_with = 0usize;
        let mut neg_with = 0usize;
        let (mut pos, mut neg) = (0usize, 0usize);
        for (x, y) in data.iter() {
            let has = x.get(d) > 0.0;
            if y {
                pos += 1;
                pos_with += usize::from(has);
            } else {
                neg += 1;
                neg_with += usize::from(has);
            }
        }
        let p_rate = pos_with as f64 / pos.max(1) as f64;
        let n_rate = neg_with as f64 / neg.max(1) as f64;
        if (p_rate - n_rate).abs() > 0.75 {
            // Recover the dimension's name.
            let name = name_of(&fx, d);
            println!("dim {d:4} {name:20} pos {p_rate:.2} neg {n_rate:.2}");
        }
    }
}

fn name_of(fx: &FeatureExtractor, d: usize) -> String {
    // Brute-force reverse lookup over a crude token universe.
    for w in squatphi_nlp::spell::BASE_DICTIONARY {
        if fx.space().keyword(w) == Some(d) {
            return (*w).to_string();
        }
    }
    let reg = BrandRegistry::paper();
    for b in reg.brands() {
        if fx.space().keyword(&b.label) == Some(d) {
            return format!("brand:{}", b.label);
        }
    }
    for n in [
        "form_count",
        "password_inputs",
        "text_inputs",
        "submit_controls",
        "js_obfuscated",
    ] {
        if fx.space().numeric(n) == Some(d) {
            return format!("num:{n}");
        }
    }
    format!("keyword#{d}")
}
// (appended) — per-template RF score audit lives in debug_scores.rs
