//! Index transparency for the paper experiments: the pHash NN index is a
//! pure speedup, so every visual-similarity experiment (Fig 8/9, Tables
//! 6/11) must print byte-identical reports with `phash_index` on and off,
//! and two identical index-on runs must agree with each other. Mirrors
//! the `analysis_cache` transparency gate in `crates/core/tests/`.

use squatphi::pipeline::PipelineResult;
use squatphi::{RunOptions, SimConfig, SquatPhi};
use squatphi_dnsdb::SnapshotConfig;
use squatphi_experiments::experiments::run_experiment;
use squatphi_feeds::FeedConfig;
use squatphi_web::WorldConfig;

/// Smaller than `SimConfig::tiny()` — this test runs the pipeline three
/// times (index-on twice for determinism, index-off once for parity).
fn micro(phash_index: bool) -> SimConfig {
    SimConfig {
        snapshot: SnapshotConfig {
            benign_records: 500,
            squatting_records: 220,
            subdomain_fraction: 0.2,
            seed: 21,
        },
        world: WorldConfig {
            phishing_domains: 36,
            seed: 22,
            ..WorldConfig::default()
        },
        feed: FeedConfig {
            total_urls: 220,
            seed: 23,
        },
        brands: 25,
        threads: 4,
        sampled_benign: 50,
        cv_folds: 3,
        analysis_cache: true,
        phash_index,
        seed: 24,
    }
}

/// The experiments whose lookups route through the index.
const VISUAL_EXPERIMENTS: &[&str] = &["fig8", "fig9", "table6", "table11"];

fn reports(result: &PipelineResult) -> Vec<(String, String)> {
    VISUAL_EXPERIMENTS
        .iter()
        .map(|id| {
            (
                id.to_string(),
                run_experiment(id, result).unwrap_or_else(|| panic!("experiment {id} missing")),
            )
        })
        .collect()
}

#[test]
fn visual_experiments_identical_with_index_on_and_off() {
    let on = SquatPhi::try_run(&micro(true), &RunOptions::default())
        .expect("index-on pipeline runs clean");
    let off = SquatPhi::try_run(&micro(false), &RunOptions::default())
        .expect("index-off pipeline runs clean");
    for ((id, a), (_, b)) in reports(&on).into_iter().zip(reports(&off)) {
        assert_eq!(a, b, "experiment {id} diverged between index and linear");
        assert!(!a.is_empty(), "experiment {id} printed nothing");
    }
}

#[test]
fn visual_experiments_are_two_run_deterministic() {
    let a = SquatPhi::try_run(&micro(true), &RunOptions::default()).expect("first run");
    let b = SquatPhi::try_run(&micro(true), &RunOptions::default()).expect("second run");
    assert_eq!(
        reports(&a),
        reports(&b),
        "identical index-on runs printed different reports"
    );
}
