//! Experiment regeneration library: one function per table/figure of the
//! paper's evaluation. The `repro` binary dispatches to these; tests call
//! them directly on a tiny pipeline run.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod experiments;
pub mod report;
pub mod summary;

pub use experiments::{run_experiment, EXPERIMENT_IDS};
