//! `repro` — regenerates every table and figure of the paper.
//!
//! ```text
//! repro all                 # everything, default 1/100 haystack scale
//! repro table7 fig10        # specific experiments
//! repro --scale 400 all     # faster, smaller haystack
//! repro --json out.json all # also dump a machine-readable summary
//! repro --list              # list experiment ids
//! ```
//!
//! Crash-safety flags (see DESIGN.md §10):
//!
//! ```text
//! repro --checkpoint-dir ckpt all        # persist stage outputs
//! repro --checkpoint-dir ckpt --resume … # replay completed stages
//! repro --stop-after crawl …             # deterministic kill stand-in
//! repro --faults panic-permille-50 …     # seeded fault injection
//! repro --disk-faults torn-at-byte-40 …  # seeded disk faults under the
//!                                        # checkpoint store (DESIGN.md §16)
//! repro --fail-fast …                    # first panic aborts the run
//! repro --timings …                      # keep nanos in --json output
//! ```

use squatphi::{DiskFaultPlan, PipelineFaultPlan, PipelineStage, RunOptions, SimConfig, SquatPhi};
use squatphi_experiments::summary::RunSummary;
use squatphi_experiments::{run_experiment, EXPERIMENT_IDS};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut scale = 100usize;
    let mut ids: Vec<String> = Vec::new();
    let mut json_path: Option<String> = None;
    let mut threads: Option<usize> = None;
    let mut opts = RunOptions::default();
    let mut fault_spec: Option<String> = None;
    let mut fault_seed: Option<u64> = None;
    let mut disk_fault_spec: Option<String> = None;
    let mut disk_fault_seed: Option<u64> = None;
    let mut timings = false;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--list" => {
                for id in EXPERIMENT_IDS {
                    println!("{id}");
                }
                return;
            }
            "--scale" => {
                i += 1;
                scale = args
                    .get(i)
                    .and_then(|s| s.parse().ok())
                    .unwrap_or_else(|| die("--scale needs a positive integer"));
                if scale == 0 {
                    die("--scale must be >= 1")
                }
            }
            "--threads" => {
                i += 1;
                let n: usize = args
                    .get(i)
                    .and_then(|s| s.parse().ok())
                    .unwrap_or_else(|| die("--threads needs a positive integer"));
                if n == 0 {
                    die("--threads must be >= 1")
                }
                threads = Some(n);
            }
            "--json" => {
                i += 1;
                json_path = Some(
                    args.get(i)
                        .cloned()
                        .unwrap_or_else(|| die("--json needs an output path")),
                );
            }
            "--checkpoint-dir" => {
                i += 1;
                let dir = args
                    .get(i)
                    .cloned()
                    .unwrap_or_else(|| die("--checkpoint-dir needs a directory path"));
                opts.checkpoint_dir = Some(dir.into());
            }
            "--resume" => opts.resume = true,
            "--fail-fast" => opts.fail_fast = true,
            "--faults" => {
                i += 1;
                fault_spec = Some(
                    args.get(i)
                        .cloned()
                        .unwrap_or_else(|| die("--faults needs a plan spec")),
                );
            }
            "--fault-seed" => {
                i += 1;
                fault_seed = Some(
                    args.get(i)
                        .and_then(|s| s.parse().ok())
                        .unwrap_or_else(|| die("--fault-seed needs an integer")),
                );
            }
            "--disk-faults" => {
                i += 1;
                disk_fault_spec = Some(
                    args.get(i)
                        .cloned()
                        .unwrap_or_else(|| die("--disk-faults needs a plan spec")),
                );
            }
            "--disk-fault-seed" => {
                i += 1;
                disk_fault_seed = Some(
                    args.get(i)
                        .and_then(|s| s.parse().ok())
                        .unwrap_or_else(|| die("--disk-fault-seed needs an integer")),
                );
            }
            "--stop-after" => {
                i += 1;
                let name = args
                    .get(i)
                    .cloned()
                    .unwrap_or_else(|| die("--stop-after needs a stage name"));
                opts.stop_after =
                    Some(PipelineStage::parse(&name).unwrap_or_else(|| {
                        die("--stop-after expects scan, crawl, train or detect")
                    }));
            }
            "--timings" => timings = true,
            "all" => ids = EXPERIMENT_IDS.iter().map(|s| s.to_string()).collect(),
            other if EXPERIMENT_IDS.contains(&other) => ids.push(other.to_string()),
            other => die(&format!(
                "unknown argument {other:?} (use --list to see experiment ids)"
            )),
        }
        i += 1;
    }
    if let Some(spec) = fault_spec {
        opts.faults = PipelineFaultPlan::parse(&spec)
            .unwrap_or_else(|e| die(&format!("bad --faults plan: {e}")));
    }
    if let Some(seed) = fault_seed {
        opts.faults = opts.faults.with_seed(seed);
    }
    if let Some(spec) = disk_fault_spec {
        opts.disk_faults = DiskFaultPlan::parse(&spec)
            .unwrap_or_else(|e| die(&format!("bad --disk-faults plan: {e}")));
    }
    if let Some(seed) = disk_fault_seed {
        opts.disk_faults = opts.disk_faults.with_seed(seed);
    }
    if opts.resume && opts.checkpoint_dir.is_none() {
        die("--resume requires --checkpoint-dir");
    }
    if !opts.disk_faults.is_none() && opts.checkpoint_dir.is_none() {
        die("--disk-faults requires --checkpoint-dir (they act on the checkpoint store)");
    }
    if ids.is_empty() && json_path.is_none() && opts.stop_after.is_none() {
        die("nothing to run: pass experiment ids or `all`");
    }

    eprintln!("[repro] running pipeline at 1/{scale} haystack scale …");
    let started = std::time::Instant::now();
    let mut config = SimConfig::paper_scale(scale);
    if let Some(n) = threads {
        config.threads = n;
    }
    let result = match SquatPhi::try_run(&config, &opts) {
        Ok(result) => result,
        Err(e) if e.is_interrupted() && opts.stop_after.is_some() => {
            // A requested interruption is a success: the checkpoints for
            // every completed stage are on disk.
            eprintln!(
                "[repro] stopped after the {} stage as requested ({:.1}s)",
                e.stage,
                started.elapsed().as_secs_f64(),
            );
            return;
        }
        Err(e) => {
            eprintln!("[repro] pipeline failed: {e}");
            std::process::exit(1);
        }
    };
    eprintln!(
        "[repro] pipeline done in {:.1}s: {} DNS records scanned, {} squatting domains, {} confirmed phishing domains",
        started.elapsed().as_secs_f64(),
        result.scan.scanned,
        result.scan.total_matches(),
        result.confirmed_domains().len(),
    );
    let t = &result.timings;
    eprintln!(
        "[repro] stage timings: scan {:.2}s, crawl {:.2}s, train {:.2}s, detect {:.2}s (total {:.2}s)",
        t.scan.as_secs_f64(),
        t.crawl.as_secs_f64(),
        t.train.as_secs_f64(),
        t.detect.as_secs_f64(),
        t.total().as_secs_f64(),
    );
    eprintln!(
        "[repro] crawl transport: {}",
        result.crawl_stats.transport.report_line()
    );
    eprintln!("[repro] page analysis: {}", result.analysis.report_line());
    eprintln!("[repro] supervision: {}", result.supervision.report_line());
    if opts.checkpoint_dir.is_some() {
        eprintln!("[repro] durability: {}", result.durability.report_line());
    }
    eprintln!(
        "[repro] training set: {} phishing / {} benign",
        result.train_split.0, result.train_split.1
    );
    let m = &result.scan_metrics;
    eprintln!(
        "[repro] scan: {:.0} records/s over {}/{} workers, {} probes ({} past filter), {} allocations avoided, {} dedupe collisions",
        m.records_per_sec(),
        m.actual_workers(),
        m.requested_workers,
        m.probes(),
        m.deep_probes(),
        m.allocations_avoided(),
        m.dedupe_collisions,
    );

    for id in &ids {
        match run_experiment(id, &result) {
            Some(text) => {
                println!("{text}");
            }
            None => eprintln!("[repro] unknown experiment {id}"),
        }
    }

    if let Some(path) = json_path {
        let mut summary = RunSummary::collect(&result);
        if !timings {
            // Keep the summary byte-reproducible across runs of the same
            // config (the CI resume smoke `cmp`s two of them).
            summary.strip_timings();
        }
        if let Err(e) = std::fs::write(&path, summary.to_json_pretty()) {
            die(&format!("cannot write {path}: {e}"));
        }
        eprintln!("[repro] summary written to {path}");
    }
}

fn die(msg: &str) -> ! {
    eprintln!("repro: {msg}");
    std::process::exit(2);
}
