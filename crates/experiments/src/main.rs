//! `repro` — regenerates every table and figure of the paper.
//!
//! ```text
//! repro all                 # everything, default 1/100 haystack scale
//! repro table7 fig10        # specific experiments
//! repro --scale 400 all     # faster, smaller haystack
//! repro --json out.json all # also dump a machine-readable summary
//! repro --list              # list experiment ids
//! ```

use squatphi::{SimConfig, SquatPhi};
use squatphi_experiments::summary::RunSummary;
use squatphi_experiments::{run_experiment, EXPERIMENT_IDS};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut scale = 100usize;
    let mut ids: Vec<String> = Vec::new();
    let mut json_path: Option<String> = None;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--list" => {
                for id in EXPERIMENT_IDS {
                    println!("{id}");
                }
                return;
            }
            "--scale" => {
                i += 1;
                scale = args
                    .get(i)
                    .and_then(|s| s.parse().ok())
                    .unwrap_or_else(|| die("--scale needs a positive integer"));
                if scale == 0 {
                    die("--scale must be >= 1")
                }
            }
            "--json" => {
                i += 1;
                json_path = Some(
                    args.get(i)
                        .cloned()
                        .unwrap_or_else(|| die("--json needs an output path")),
                );
            }
            "all" => ids = EXPERIMENT_IDS.iter().map(|s| s.to_string()).collect(),
            other if EXPERIMENT_IDS.contains(&other) => ids.push(other.to_string()),
            other => die(&format!(
                "unknown argument {other:?} (use --list to see experiment ids)"
            )),
        }
        i += 1;
    }
    if ids.is_empty() && json_path.is_none() {
        die("nothing to run: pass experiment ids or `all`");
    }

    eprintln!("[repro] running pipeline at 1/{scale} haystack scale …");
    let started = std::time::Instant::now();
    let config = SimConfig::paper_scale(scale);
    let result = SquatPhi::run(&config);
    eprintln!(
        "[repro] pipeline done in {:.1}s: {} DNS records scanned, {} squatting domains, {} confirmed phishing domains",
        started.elapsed().as_secs_f64(),
        result.scan.scanned,
        result.scan.total_matches(),
        result.confirmed_domains().len(),
    );
    let t = &result.timings;
    eprintln!(
        "[repro] stage timings: scan {:.2}s, crawl {:.2}s, train {:.2}s, detect {:.2}s (total {:.2}s)",
        t.scan.as_secs_f64(),
        t.crawl.as_secs_f64(),
        t.train.as_secs_f64(),
        t.detect.as_secs_f64(),
        t.total().as_secs_f64(),
    );
    eprintln!(
        "[repro] crawl transport: {}",
        result.crawl_stats.transport.report_line()
    );
    eprintln!("[repro] page analysis: {}", result.analysis.report_line());
    eprintln!(
        "[repro] training set: {} phishing / {} benign",
        result.train_split.0, result.train_split.1
    );
    let m = &result.scan_metrics;
    eprintln!(
        "[repro] scan: {:.0} records/s over {} workers, {} probes, {} allocations avoided, {} dedupe collisions",
        m.records_per_sec(),
        m.workers.len(),
        m.probes(),
        m.allocations_avoided(),
        m.dedupe_collisions,
    );

    for id in &ids {
        match run_experiment(id, &result) {
            Some(text) => {
                println!("{text}");
            }
            None => eprintln!("[repro] unknown experiment {id}"),
        }
    }

    if let Some(path) = json_path {
        let summary = RunSummary::collect(&result);
        if let Err(e) = std::fs::write(&path, summary.to_json_pretty()) {
            die(&format!("cannot write {path}: {e}"));
        }
        eprintln!("[repro] summary written to {path}");
    }
}

fn die(msg: &str) -> ! {
    eprintln!("repro: {msg}");
    std::process::exit(2);
}
