//! Machine-readable run summary (serialized by `repro --json`).
//!
//! JSON emission is hand-rolled: the summary is a small, fixed shape and
//! the workspace builds without registry access, so a serde dependency
//! would buy nothing but a vendored stub. The output matches what
//! `serde_json::to_string_pretty` produced for the old derive (tuples as
//! arrays, two-space indent), so downstream consumers are unaffected.

use squatphi::analysis;
use squatphi::artifact::AnalysisSnapshot;
use squatphi::pipeline::PipelineResult;
use squatphi::SupervisionReport;
use squatphi_crawler::TransportSnapshot;
use squatphi_web::Device;

/// Headline numbers of one pipeline run — everything a dashboard or a
/// regression check needs without re-parsing the text tables.
#[derive(Debug)]
pub struct RunSummary {
    /// DNS records scanned.
    pub records_scanned: usize,
    /// Squatting domains found.
    pub squatting_domains: usize,
    /// Squatting counts per type, paper order.
    pub squatting_by_type: [usize; 5],
    /// Live domains crawled (web profile).
    pub web_live: usize,
    /// Transport middleware counters from the crawl stage.
    pub crawl_transport: TransportSnapshot,
    /// Page-analysis counters (cache hits/misses, per-stage nanos).
    pub analysis: AnalysisSnapshot,
    /// Training-set class balance: (positives, negatives).
    pub train_split: (usize, usize),
    /// Classifier metrics per model: (name, fpr, fnr, auc, acc).
    pub models: Vec<ModelSummary>,
    /// Pages flagged per device.
    pub flagged: DeviceCounts,
    /// Confirmed after manual verification.
    pub confirmed: DeviceCounts,
    /// Unique confirmed phishing domains (union).
    pub confirmed_domains: usize,
    /// Brands with at least one confirmed phishing domain.
    pub targeted_brands: usize,
    /// Blacklist coverage at day 30: phishtank / virustotal / ecrimex /
    /// undetected.
    pub blacklist: (usize, usize, usize, usize),
    /// Supervision accounting (fault injection, quarantine, degraded
    /// pages).
    pub supervision: SupervisionSummary,
}

/// Supervision block of the JSON summary. Checkpoint bookkeeping
/// (resumed/checkpointed stage lists) is deliberately excluded so a
/// resumed run serializes byte-identically to an uninterrupted one.
#[derive(Debug)]
pub struct SupervisionSummary {
    /// Analyzer panics planted by the fault plan.
    pub injected_panics: u64,
    /// Pages the fault plan poisoned into the degraded path.
    pub injected_poisons: u64,
    /// Crawl records whose HTML the fault plan truncated.
    pub injected_truncations: u64,
    /// Records excluded after exhausting their retry budget.
    pub quarantined: usize,
    /// Injected panics that recovered within the retry budget.
    pub recovered: u64,
    /// Pages that fell back to the lexical+form-only feature vector.
    pub degraded: u64,
    /// The non-injected subset of `degraded`.
    pub degraded_natural: u64,
    /// Crawl records actually truncated.
    pub truncated: u64,
    /// Re-analysis attempts spent across all records.
    pub retries: u64,
    /// Whether the injected counts reconcile against the observed ones.
    pub reconciles: bool,
}

impl SupervisionSummary {
    fn collect(report: &SupervisionReport) -> Self {
        SupervisionSummary {
            injected_panics: report.injected.analyzer_panics,
            injected_poisons: report.injected.poisoned_pages,
            injected_truncations: report.injected.truncated_records,
            quarantined: report.quarantined.len(),
            recovered: report.recovered,
            degraded: report.degraded,
            degraded_natural: report.degraded_natural,
            truncated: report.truncated,
            retries: report.retries,
            reconciles: report.reconciles(),
        }
    }

    fn to_json(&self) -> String {
        format!(
            "{{\n    \"injected_panics\": {},\n    \"injected_poisons\": {},\n    \"injected_truncations\": {},\n    \"quarantined\": {},\n    \"recovered\": {},\n    \"degraded\": {},\n    \"degraded_natural\": {},\n    \"truncated\": {},\n    \"retries\": {},\n    \"reconciles\": {}\n  }}",
            self.injected_panics,
            self.injected_poisons,
            self.injected_truncations,
            self.quarantined,
            self.recovered,
            self.degraded,
            self.degraded_natural,
            self.truncated,
            self.retries,
            self.reconciles,
        )
    }
}

/// One classifier row.
#[derive(Debug)]
pub struct ModelSummary {
    /// Model name.
    pub name: String,
    /// False-positive rate.
    pub fpr: f64,
    /// False-negative rate.
    pub fnr: f64,
    /// Area under the ROC curve.
    pub auc: f64,
    /// Accuracy.
    pub accuracy: f64,
}

/// Web/mobile pair.
#[derive(Debug)]
pub struct DeviceCounts {
    /// Desktop profile.
    pub web: usize,
    /// Mobile profile.
    pub mobile: usize,
}

/// Escapes a string for a JSON string literal.
fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Formats a float as a JSON number (non-finite values become 0,
/// which cannot occur for the rates/AUCs stored here).
fn json_f64(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        "0".into()
    }
}

impl DeviceCounts {
    fn to_json(&self, indent: &str) -> String {
        format!(
            "{{\n{indent}  \"web\": {},\n{indent}  \"mobile\": {}\n{indent}}}",
            self.web, self.mobile
        )
    }
}

impl RunSummary {
    /// Collects the summary from a pipeline result.
    pub fn collect(result: &PipelineResult) -> Self {
        let brands: std::collections::HashSet<usize> = result
            .web_detections
            .iter()
            .chain(&result.mobile_detections)
            .filter(|d| d.confirmed)
            .map(|d| d.brand)
            .collect();
        RunSummary {
            records_scanned: result.scan.scanned,
            squatting_domains: result.scan.total_matches(),
            squatting_by_type: result.scan.by_type,
            web_live: result.crawl_stats.web_live,
            crawl_transport: result.crawl_stats.transport.clone(),
            analysis: result.analysis.clone(),
            train_split: result.train_split,
            models: result
                .eval
                .models
                .iter()
                .map(|m| ModelSummary {
                    name: m.name.to_string(),
                    fpr: m.metrics.fpr,
                    fnr: m.metrics.fnr,
                    auc: m.metrics.auc,
                    accuracy: m.metrics.accuracy,
                })
                .collect(),
            flagged: DeviceCounts {
                web: result.web_detections.len(),
                mobile: result.mobile_detections.len(),
            },
            confirmed: DeviceCounts {
                web: result.confirmed(Device::Web).len(),
                mobile: result.confirmed(Device::Mobile).len(),
            },
            confirmed_domains: result.confirmed_domains().len(),
            targeted_brands: brands.len(),
            blacklist: analysis::blacklist_coverage(result),
            supervision: SupervisionSummary::collect(&result.supervision),
        }
    }

    /// Zeroes the wall-clock-dependent analyzer counters (the six
    /// per-stage nano totals), so two runs of the same config serialize
    /// byte-identically. Counts (pages, hits, misses) are untouched.
    /// `repro` calls this unless `--timings` is passed.
    pub fn strip_timings(&mut self) {
        self.analysis.parse_nanos = 0;
        self.analysis.extract_nanos = 0;
        self.analysis.render_nanos = 0;
        self.analysis.hash_nanos = 0;
        self.analysis.ocr_nanos = 0;
        self.analysis.embed_nanos = 0;
    }

    /// Pretty-printed JSON (two-space indent, fields in declaration
    /// order, tuples as arrays).
    pub fn to_json_pretty(&self) -> String {
        let by_type = self
            .squatting_by_type
            .iter()
            .map(|n| format!("    {n}"))
            .collect::<Vec<_>>()
            .join(",\n");
        let models = self
            .models
            .iter()
            .map(|m| {
                format!(
                    "    {{\n      \"name\": \"{}\",\n      \"fpr\": {},\n      \"fnr\": {},\n      \"auc\": {},\n      \"accuracy\": {}\n    }}",
                    json_escape(&m.name),
                    json_f64(m.fpr),
                    json_f64(m.fnr),
                    json_f64(m.auc),
                    json_f64(m.accuracy),
                )
            })
            .collect::<Vec<_>>()
            .join(",\n");
        let (pt, vt, ec, un) = self.blacklist;
        let t = &self.crawl_transport;
        let arr4 = |a: &[u64; 4]| a.iter().map(u64::to_string).collect::<Vec<_>>().join(", ");
        let transport = format!(
            "{{\n    \"attempts\": {},\n    \"successes\": {},\n    \"retries\": {},\n    \"errors\": [{}],\n    \"injected\": [{}],\n    \"breaker_trips\": {},\n    \"breaker_short_circuits\": {},\n    \"fetch_deadline_hits\": {},\n    \"crawl_deadline_hits\": {}\n  }}",
            t.attempts,
            t.successes,
            t.retries,
            arr4(&t.errors),
            arr4(&t.injected),
            t.breaker_trips,
            t.breaker_short_circuits,
            t.fetch_deadline_hits,
            t.crawl_deadline_hits,
        );
        let a = &self.analysis;
        let analysis = format!(
            "{{\n    \"pages\": {},\n    \"cache_hits\": {},\n    \"cache_misses\": {},\n    \"key_collisions\": {},\n    \"parse_nanos\": {},\n    \"extract_nanos\": {},\n    \"render_nanos\": {},\n    \"hash_nanos\": {},\n    \"ocr_nanos\": {},\n    \"embed_nanos\": {}\n  }}",
            a.pages,
            a.cache_hits,
            a.cache_misses,
            a.key_collisions,
            a.parse_nanos,
            a.extract_nanos,
            a.render_nanos,
            a.hash_nanos,
            a.ocr_nanos,
            a.embed_nanos,
        );
        format!(
            "{{\n  \"records_scanned\": {},\n  \"squatting_domains\": {},\n  \"squatting_by_type\": [\n{by_type}\n  ],\n  \"web_live\": {},\n  \"crawl_transport\": {transport},\n  \"analysis\": {analysis},\n  \"supervision\": {},\n  \"train_split\": [\n    {},\n    {}\n  ],\n  \"models\": [\n{models}\n  ],\n  \"flagged\": {},\n  \"confirmed\": {},\n  \"confirmed_domains\": {},\n  \"targeted_brands\": {},\n  \"blacklist\": [\n    {pt},\n    {vt},\n    {ec},\n    {un}\n  ]\n}}",
            self.records_scanned,
            self.squatting_domains,
            self.web_live,
            self.supervision.to_json(),
            self.train_split.0,
            self.train_split.1,
            self.flagged.to_json("  "),
            self.confirmed.to_json("  "),
            self.confirmed_domains,
            self.targeted_brands,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use squatphi::{RunOptions, SimConfig, SquatPhi};

    #[test]
    fn summary_serializes_and_is_consistent() {
        let result = SquatPhi::try_run(&SimConfig::tiny(), &RunOptions::default())
            .expect("tiny pipeline runs clean");
        let summary = RunSummary::collect(&result);
        assert_eq!(summary.squatting_domains, result.scan.total_matches());
        assert_eq!(summary.models.len(), 3);
        assert!(summary.confirmed.web <= summary.flagged.web);
        let json = summary.to_json_pretty();
        assert!(json.contains("\"records_scanned\""));
        assert!(json.contains("RandomForest"));
        // The crawl stage runs over the middleware-aware engine, so the
        // transport counters are populated and serialized.
        assert!(summary.crawl_transport.attempts > 0);
        assert!(json.contains("\"crawl_transport\""));
        assert!(json.contains("\"breaker_trips\""));
        // Page-analysis counters reconcile exactly and are serialized.
        assert!(summary.analysis.pages > 0);
        assert!(summary.analysis.reconciles());
        assert_eq!(
            summary.analysis.pages,
            summary.analysis.cache_hits + summary.analysis.cache_misses
        );
        assert!(json.contains("\"cache_hits\""));
        assert!(json.contains("\"train_split\""));
        assert_eq!(summary.train_split, result.eval.train_shape);
        // The supervision block is serialized and clean for an unfaulted
        // run; stripping timings zeroes only the nano counters.
        assert!(json.contains("\"supervision\""));
        assert!(json.contains("\"reconciles\": true"));
        assert_eq!(summary.supervision.injected_panics, 0);
        assert_eq!(summary.supervision.quarantined, 0);
        let mut stripped = RunSummary::collect(&result);
        stripped.strip_timings();
        assert_eq!(stripped.analysis.parse_nanos, 0);
        assert_eq!(stripped.analysis.embed_nanos, 0);
        assert_eq!(stripped.analysis.pages, summary.analysis.pages);
        assert!(stripped.to_json_pretty().contains("\"parse_nanos\": 0"));
    }

    #[test]
    fn json_escaping_and_floats_are_wellformed() {
        assert_eq!(json_escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
        assert_eq!(json_escape("\u{1}"), "\\u0001");
        assert_eq!(json_f64(0.25), "0.25");
        assert_eq!(json_f64(f64::NAN), "0");
    }
}
