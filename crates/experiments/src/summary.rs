//! Machine-readable run summary (serialized by `repro --json`).
//!
//! The summary is a typed view over the pipeline's exported telemetry:
//! [`RunSummary::collect`] reads the migrated stage counters back from
//! [`PipelineResult::telemetry`]'s registry snapshot (scan, crawl
//! transport, analysis, supervision) and takes only the ML-specific
//! numbers (models, detections, blacklist coverage) from the result
//! directly. JSON emission goes through the shared
//! [`squatphi_telemetry::Json`] encoder; timing fields are stripped by
//! the one telemetry-layer rule unless `repro --timings` asked for them.

use squatphi::analysis;
use squatphi::artifact::AnalysisSnapshot;
use squatphi::pipeline::PipelineResult;
use squatphi_crawler::TransportSnapshot;
use squatphi_telemetry::{invariants, Json, Registry, Snapshot};
use squatphi_web::Device;

/// Headline numbers of one pipeline run — everything a dashboard or a
/// regression check needs without re-parsing the text tables.
#[derive(Debug)]
pub struct RunSummary {
    /// DNS records scanned.
    pub records_scanned: usize,
    /// Squatting domains found.
    pub squatting_domains: usize,
    /// Squatting counts per type, paper order.
    pub squatting_by_type: [usize; 5],
    /// Live domains crawled (web profile).
    pub web_live: usize,
    /// Transport middleware counters from the crawl stage.
    pub crawl_transport: TransportSnapshot,
    /// Page-analysis counters (cache hits/misses, per-stage nanos).
    pub analysis: AnalysisSnapshot,
    /// Training-set class balance: (positives, negatives).
    pub train_split: (usize, usize),
    /// Classifier metrics per model: (name, fpr, fnr, auc, acc).
    pub models: Vec<ModelSummary>,
    /// Pages flagged per device.
    pub flagged: DeviceCounts,
    /// Confirmed after manual verification.
    pub confirmed: DeviceCounts,
    /// Unique confirmed phishing domains (union).
    pub confirmed_domains: usize,
    /// Brands with at least one confirmed phishing domain.
    pub targeted_brands: usize,
    /// Blacklist coverage at day 30: phishtank / virustotal / ecrimex /
    /// undetected.
    pub blacklist: (usize, usize, usize, usize),
    /// Supervision accounting (fault injection, quarantine, degraded
    /// pages).
    pub supervision: SupervisionSummary,
}

/// Supervision block of the JSON summary. Checkpoint bookkeeping
/// (resumed/checkpointed stage lists) is deliberately excluded so a
/// resumed run serializes byte-identically to an uninterrupted one.
#[derive(Debug)]
pub struct SupervisionSummary {
    /// Analyzer panics planted by the fault plan.
    pub injected_panics: u64,
    /// Pages the fault plan poisoned into the degraded path.
    pub injected_poisons: u64,
    /// Crawl records whose HTML the fault plan truncated.
    pub injected_truncations: u64,
    /// Records excluded after exhausting their retry budget.
    pub quarantined: usize,
    /// Injected panics that recovered within the retry budget.
    pub recovered: u64,
    /// Pages that fell back to the lexical+form-only feature vector.
    pub degraded: u64,
    /// The non-injected subset of `degraded`.
    pub degraded_natural: u64,
    /// Crawl records actually truncated.
    pub truncated: u64,
    /// Re-analysis attempts spent across all records.
    pub retries: u64,
    /// Whether the injected counts reconcile against the observed ones.
    pub reconciles: bool,
}

impl SupervisionSummary {
    /// Reads the supervision block back from an exported `supervision.`
    /// scope; `reconciles` is the central invariant check over the same
    /// snapshot.
    fn from_snapshot(snap: &Snapshot) -> Self {
        SupervisionSummary {
            injected_panics: snap.u64_or_zero("supervision.injected.analyzer_panics"),
            injected_poisons: snap.u64_or_zero("supervision.injected.poisoned_pages"),
            injected_truncations: snap.u64_or_zero("supervision.injected.truncated_records"),
            quarantined: snap.u64_or_zero("supervision.quarantined") as usize,
            recovered: snap.u64_or_zero("supervision.recovered"),
            degraded: snap.u64_or_zero("supervision.degraded"),
            degraded_natural: snap.u64_or_zero("supervision.degraded_natural"),
            truncated: snap.u64_or_zero("supervision.truncated"),
            retries: snap.u64_or_zero("supervision.retries"),
            reconciles: invariants::supervision_invariants().all_hold(snap),
        }
    }

    fn to_json(&self) -> Json {
        let mut obj = Json::obj();
        obj.push("injected_panics", Json::U64(self.injected_panics));
        obj.push("injected_poisons", Json::U64(self.injected_poisons));
        obj.push("injected_truncations", Json::U64(self.injected_truncations));
        obj.push("quarantined", Json::U64(self.quarantined as u64));
        obj.push("recovered", Json::U64(self.recovered));
        obj.push("degraded", Json::U64(self.degraded));
        obj.push("degraded_natural", Json::U64(self.degraded_natural));
        obj.push("truncated", Json::U64(self.truncated));
        obj.push("retries", Json::U64(self.retries));
        obj.push("reconciles", Json::Bool(self.reconciles));
        obj
    }
}

/// One classifier row.
#[derive(Debug)]
pub struct ModelSummary {
    /// Model name.
    pub name: String,
    /// False-positive rate.
    pub fpr: f64,
    /// False-negative rate.
    pub fnr: f64,
    /// Area under the ROC curve.
    pub auc: f64,
    /// Accuracy.
    pub accuracy: f64,
}

impl ModelSummary {
    fn to_json(&self) -> Json {
        let mut obj = Json::obj();
        obj.push("name", Json::Str(self.name.clone()));
        obj.push("fpr", Json::F64(self.fpr));
        obj.push("fnr", Json::F64(self.fnr));
        obj.push("auc", Json::F64(self.auc));
        obj.push("accuracy", Json::F64(self.accuracy));
        obj
    }
}

/// Web/mobile pair.
#[derive(Debug)]
pub struct DeviceCounts {
    /// Desktop profile.
    pub web: usize,
    /// Mobile profile.
    pub mobile: usize,
}

impl DeviceCounts {
    fn to_json(&self) -> Json {
        let mut obj = Json::obj();
        obj.push("web", Json::U64(self.web as u64));
        obj.push("mobile", Json::U64(self.mobile as u64));
        obj
    }
}

impl RunSummary {
    /// Collects the summary from a pipeline result, reading every
    /// migrated stage counter back from the result's telemetry registry.
    pub fn collect(result: &PipelineResult) -> Self {
        let snap = result.telemetry().snapshot();
        let brands: std::collections::HashSet<usize> = result
            .web_detections
            .iter()
            .chain(&result.mobile_detections)
            .filter(|d| d.confirmed)
            .map(|d| d.brand)
            .collect();
        let by_type = ["homograph", "bits", "typo", "combo", "wrong_tld"]
            .map(|name| snap.u64_or_zero(&format!("scan.by_type.{name}")) as usize);
        RunSummary {
            records_scanned: snap.u64_or_zero("scan.scanned") as usize,
            squatting_domains: snap.u64_or_zero("scan.matches") as usize,
            squatting_by_type: by_type,
            web_live: snap.u64_or_zero("crawl.web_live") as usize,
            crawl_transport: TransportSnapshot::from_snapshot(&snap, "crawl.transport"),
            analysis: AnalysisSnapshot::from_snapshot(&snap, "analysis"),
            train_split: result.train_split,
            models: result
                .eval
                .models
                .iter()
                .map(|m| ModelSummary {
                    name: m.name.to_string(),
                    fpr: m.metrics.fpr,
                    fnr: m.metrics.fnr,
                    auc: m.metrics.auc,
                    accuracy: m.metrics.accuracy,
                })
                .collect(),
            flagged: DeviceCounts {
                web: result.web_detections.len(),
                mobile: result.mobile_detections.len(),
            },
            confirmed: DeviceCounts {
                web: result.confirmed(Device::Web).len(),
                mobile: result.confirmed(Device::Mobile).len(),
            },
            confirmed_domains: result.confirmed_domains().len(),
            targeted_brands: brands.len(),
            blacklist: analysis::blacklist_coverage(result),
            supervision: SupervisionSummary::from_snapshot(&snap),
        }
    }

    /// Zeroes the wall-clock-dependent counters via the telemetry layer's
    /// timing rule — the same rule every CLI surface applies — so two
    /// runs of the same config serialize byte-identically. Counts (pages,
    /// hits, misses) are untouched. `repro` calls this unless `--timings`
    /// is passed.
    pub fn strip_timings(&mut self) {
        let reg = Registry::new();
        self.analysis.export(&reg.scope("analysis"));
        let mut snap = reg.snapshot();
        snap.strip_timings();
        self.analysis = AnalysisSnapshot::from_snapshot(&snap, "analysis");
    }

    /// Pretty-printed JSON (two-space indent, fields in declaration
    /// order, tuples as arrays), rendered by the shared telemetry
    /// encoder.
    pub fn to_json_pretty(&self) -> String {
        let t = &self.crawl_transport;
        let arr4 = |a: &[u64; 4]| Json::Arr(a.iter().map(|v| Json::U64(*v)).collect());
        let mut transport = Json::obj();
        transport.push("attempts", Json::U64(t.attempts));
        transport.push("successes", Json::U64(t.successes));
        transport.push("retries", Json::U64(t.retries));
        transport.push("errors", arr4(&t.errors));
        transport.push("injected", arr4(&t.injected));
        transport.push("breaker_trips", Json::U64(t.breaker_trips));
        transport.push(
            "breaker_short_circuits",
            Json::U64(t.breaker_short_circuits),
        );
        transport.push("fetch_deadline_hits", Json::U64(t.fetch_deadline_hits));
        transport.push("crawl_deadline_hits", Json::U64(t.crawl_deadline_hits));

        let a = &self.analysis;
        let mut analysis = Json::obj();
        analysis.push("pages", Json::U64(a.pages));
        analysis.push("cache_hits", Json::U64(a.cache_hits));
        analysis.push("cache_misses", Json::U64(a.cache_misses));
        analysis.push("key_collisions", Json::U64(a.key_collisions));
        analysis.push("parse_nanos", Json::U64(a.parse_nanos));
        analysis.push("extract_nanos", Json::U64(a.extract_nanos));
        analysis.push("render_nanos", Json::U64(a.render_nanos));
        analysis.push("hash_nanos", Json::U64(a.hash_nanos));
        analysis.push("ocr_nanos", Json::U64(a.ocr_nanos));
        analysis.push("embed_nanos", Json::U64(a.embed_nanos));

        let (pt, vt, ec, un) = self.blacklist;
        let mut doc = Json::obj();
        doc.push("records_scanned", Json::U64(self.records_scanned as u64));
        doc.push(
            "squatting_domains",
            Json::U64(self.squatting_domains as u64),
        );
        doc.push(
            "squatting_by_type",
            Json::Arr(
                self.squatting_by_type
                    .iter()
                    .map(|n| Json::U64(*n as u64))
                    .collect(),
            ),
        );
        doc.push("web_live", Json::U64(self.web_live as u64));
        doc.push("crawl_transport", transport);
        doc.push("analysis", analysis);
        doc.push("supervision", self.supervision.to_json());
        doc.push(
            "train_split",
            Json::Arr(vec![
                Json::U64(self.train_split.0 as u64),
                Json::U64(self.train_split.1 as u64),
            ]),
        );
        doc.push(
            "models",
            Json::Arr(self.models.iter().map(ModelSummary::to_json).collect()),
        );
        doc.push("flagged", self.flagged.to_json());
        doc.push("confirmed", self.confirmed.to_json());
        doc.push(
            "confirmed_domains",
            Json::U64(self.confirmed_domains as u64),
        );
        doc.push("targeted_brands", Json::U64(self.targeted_brands as u64));
        doc.push(
            "blacklist",
            Json::Arr(vec![
                Json::U64(pt as u64),
                Json::U64(vt as u64),
                Json::U64(ec as u64),
                Json::U64(un as u64),
            ]),
        );
        doc.render()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use squatphi::{RunOptions, SimConfig, SquatPhi};

    #[test]
    fn summary_serializes_and_is_consistent() {
        let result = SquatPhi::try_run(&SimConfig::tiny(), &RunOptions::default())
            .expect("tiny pipeline runs clean");
        let summary = RunSummary::collect(&result);
        assert_eq!(summary.squatting_domains, result.scan.total_matches());
        assert_eq!(summary.records_scanned, result.scan.scanned);
        assert_eq!(summary.squatting_by_type, result.scan.by_type);
        assert_eq!(summary.models.len(), 3);
        assert!(summary.confirmed.web <= summary.flagged.web);
        let json = summary.to_json_pretty();
        assert!(json.contains("\"records_scanned\""));
        assert!(json.contains("RandomForest"));
        // The crawl stage runs over the middleware-aware engine, so the
        // transport counters are populated and serialized.
        assert!(summary.crawl_transport.attempts > 0);
        assert_eq!(summary.crawl_transport, result.crawl_stats.transport);
        assert!(json.contains("\"crawl_transport\""));
        assert!(json.contains("\"breaker_trips\""));
        // Page-analysis counters reconcile exactly and are serialized.
        assert!(summary.analysis.pages > 0);
        assert!(summary.analysis.reconciles());
        assert_eq!(
            summary.analysis.pages,
            summary.analysis.cache_hits + summary.analysis.cache_misses
        );
        assert!(json.contains("\"cache_hits\""));
        assert!(json.contains("\"train_split\""));
        assert_eq!(summary.train_split, result.eval.train_shape);
        // The supervision block is serialized and clean for an unfaulted
        // run; stripping timings zeroes only the nano counters.
        assert!(json.contains("\"supervision\""));
        assert!(json.contains("\"reconciles\": true"));
        assert_eq!(summary.supervision.injected_panics, 0);
        assert_eq!(summary.supervision.quarantined, 0);
        let mut stripped = RunSummary::collect(&result);
        stripped.strip_timings();
        assert_eq!(stripped.analysis.parse_nanos, 0);
        assert_eq!(stripped.analysis.embed_nanos, 0);
        assert_eq!(stripped.analysis.pages, summary.analysis.pages);
        assert!(stripped.to_json_pretty().contains("\"parse_nanos\": 0"));
    }

    #[test]
    fn json_escaping_and_floats_are_wellformed() {
        // The summary leans on the shared telemetry encoder; spot-check
        // its escaping and float policy from this consumer's side.
        assert_eq!(squatphi_telemetry::escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
        assert_eq!(squatphi_telemetry::escape("\u{1}"), "\\u0001");
        assert_eq!(squatphi_telemetry::fmt_f64(0.25), "0.250000");
        assert_eq!(squatphi_telemetry::fmt_f64(f64::NAN), "0.000000");
    }
}
