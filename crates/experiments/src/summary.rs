//! Machine-readable run summary (serialized by `repro --json`).

use serde::Serialize;
use squatphi::analysis;
use squatphi::pipeline::PipelineResult;
use squatphi_web::Device;

/// Headline numbers of one pipeline run — everything a dashboard or a
/// regression check needs without re-parsing the text tables.
#[derive(Debug, Serialize)]
pub struct RunSummary {
    /// DNS records scanned.
    pub records_scanned: usize,
    /// Squatting domains found.
    pub squatting_domains: usize,
    /// Squatting counts per type, paper order.
    pub squatting_by_type: [usize; 5],
    /// Live domains crawled (web profile).
    pub web_live: usize,
    /// Classifier metrics per model: (name, fpr, fnr, auc, acc).
    pub models: Vec<ModelSummary>,
    /// Pages flagged per device.
    pub flagged: DeviceCounts,
    /// Confirmed after manual verification.
    pub confirmed: DeviceCounts,
    /// Unique confirmed phishing domains (union).
    pub confirmed_domains: usize,
    /// Brands with at least one confirmed phishing domain.
    pub targeted_brands: usize,
    /// Blacklist coverage at day 30: phishtank / virustotal / ecrimex /
    /// undetected.
    pub blacklist: (usize, usize, usize, usize),
}

/// One classifier row.
#[derive(Debug, Serialize)]
pub struct ModelSummary {
    /// Model name.
    pub name: String,
    /// False-positive rate.
    pub fpr: f64,
    /// False-negative rate.
    pub fnr: f64,
    /// Area under the ROC curve.
    pub auc: f64,
    /// Accuracy.
    pub accuracy: f64,
}

/// Web/mobile pair.
#[derive(Debug, Serialize)]
pub struct DeviceCounts {
    /// Desktop profile.
    pub web: usize,
    /// Mobile profile.
    pub mobile: usize,
}

impl RunSummary {
    /// Collects the summary from a pipeline result.
    pub fn collect(result: &PipelineResult) -> Self {
        let brands: std::collections::HashSet<usize> = result
            .web_detections
            .iter()
            .chain(&result.mobile_detections)
            .filter(|d| d.confirmed)
            .map(|d| d.brand)
            .collect();
        RunSummary {
            records_scanned: result.scan.scanned,
            squatting_domains: result.scan.total_matches(),
            squatting_by_type: result.scan.by_type,
            web_live: result.crawl_stats.web_live,
            models: result
                .eval
                .models
                .iter()
                .map(|m| ModelSummary {
                    name: m.name.to_string(),
                    fpr: m.metrics.fpr,
                    fnr: m.metrics.fnr,
                    auc: m.metrics.auc,
                    accuracy: m.metrics.accuracy,
                })
                .collect(),
            flagged: DeviceCounts {
                web: result.web_detections.len(),
                mobile: result.mobile_detections.len(),
            },
            confirmed: DeviceCounts {
                web: result.confirmed(Device::Web).len(),
                mobile: result.confirmed(Device::Mobile).len(),
            },
            confirmed_domains: result.confirmed_domains().len(),
            targeted_brands: brands.len(),
            blacklist: analysis::blacklist_coverage(result),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use squatphi::{SimConfig, SquatPhi};

    #[test]
    fn summary_serializes_and_is_consistent() {
        let result = SquatPhi::run(&SimConfig::tiny());
        let summary = RunSummary::collect(&result);
        assert_eq!(summary.squatting_domains, result.scan.total_matches());
        assert_eq!(summary.models.len(), 3);
        assert!(summary.confirmed.web <= summary.flagged.web);
        let json = serde_json::to_string_pretty(&summary).expect("serializable");
        assert!(json.contains("\"records_scanned\""));
        assert!(json.contains("RandomForest"));
    }
}
