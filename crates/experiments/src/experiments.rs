//! One regeneration function per table/figure of the paper's evaluation.
//!
//! Each function prints the same rows/series the paper reports, with the
//! paper's headline value quoted in the title for side-by-side reading.
//! Absolute numbers depend on the simulation scale; the *shape* (who
//! wins, rough factors, crossovers) is the reproduction target.

use crate::report::{f2, pct, series, table};
use squatphi::analysis;
use squatphi::pipeline::PipelineResult;
use squatphi_domain::idna;
use squatphi_feeds::RankBucket;
use squatphi_render::ascii;
use squatphi_squat::gen::{self, GenBudget};
use squatphi_squat::{BrandRegistry, SquatType};
use squatphi_web::behavior::{Cloaking, LifetimePattern, PhishingProfile, ScamKind};
use squatphi_web::world::SNAPSHOT_DATES;
use squatphi_web::{pages, Device, SiteBehavior};

/// Every experiment id, in paper order.
pub const EXPERIMENT_IDS: &[&str] = &[
    "table1", "fig2", "fig3", "fig4", "table2", "table3", "table4", "fig5", "fig6", "fig7",
    "table5", "fig8", "fig9", "table6", "table7", "fig10", "table8", "table9", "fig11", "fig12",
    "fig13", "table10", "fig14", "fig15", "fig16", "fig17", "table11", "table12", "table13",
];

/// Runs one experiment against a pipeline result, returning its report
/// text. Unknown ids return `None`.
pub fn run_experiment(id: &str, result: &PipelineResult) -> Option<String> {
    Some(match id {
        "table1" => table1(),
        "fig2" => fig2(result),
        "fig3" => fig3(result),
        "fig4" => fig4(result),
        "table2" => table2(result),
        "table3" => table3(result),
        "table4" => table4(result),
        "fig5" => fig5(result),
        "fig6" => fig6(result),
        "fig7" => fig7(result),
        "table5" => table5(result),
        "fig8" => fig8(result.phash_index),
        "fig9" => fig9(result),
        "table6" => table6(result),
        "table7" => table7(result),
        "fig10" => fig10(result),
        "table8" => table8(result),
        "table9" => table9(result),
        "fig11" => fig11(result),
        "fig12" => fig12(result),
        "fig13" => fig13(result),
        "table10" => table10(result),
        "fig14" => fig14(result),
        "fig15" => fig15(result),
        "fig16" => fig16(result),
        "fig17" => fig17(result),
        "table11" => table11(result),
        "table12" => table12(result),
        "table13" => table13(result),
        _ => return None,
    })
}

/// Table 1: example squatting domains per type for `facebook`.
fn table1() -> String {
    let registry = BrandRegistry::with_size(10);
    let fb = registry.by_label("facebook").expect("facebook in registry");
    let budget = GenBudget {
        homograph: 60,
        bits: 10,
        typo: 40,
        combo: 10,
        wrong_tld: 5,
    };
    let mut rows: Vec<Vec<String>> = Vec::new();
    let mut per_type = [0usize; 5];
    let mut idn_shown = false;
    for c in gen::generate_all(fb, budget) {
        let idx = type_index(c.squat_type);
        // For homographs, show one ASCII trick and one IDN (the paper's
        // Table 1 has faceb00k.pw and xn--fcebook-8va.com).
        if idx == 0 && per_type[0] == 1 && !idn_shown && !c.domain.is_idn() {
            continue;
        }
        if per_type[idx] >= 2 {
            continue;
        }
        if idx == 0 && c.domain.is_idn() {
            idn_shown = true;
        }
        per_type[idx] += 1;
        let shown = if c.domain.is_idn() {
            format!(
                "{} (punycode: {})",
                idna::to_unicode(c.domain.as_str()),
                c.domain
            )
        } else {
            c.domain.to_string()
        };
        rows.push(vec![shown, c.squat_type.to_string().to_lowercase()]);
    }
    table(
        "Table 1 — example squatting domains for the facebook brand",
        &["Domain", "Type"],
        &rows,
    )
}

fn type_index(t: SquatType) -> usize {
    match t {
        SquatType::Homograph => 0,
        SquatType::Bits => 1,
        SquatType::Typo => 2,
        SquatType::Combo => 3,
        SquatType::WrongTld => 4,
    }
}

/// Figure 2: # of squatting domains per type (paper: 32,646 / 48,097 /
/// 166,152 / 371,354 / 39,414 — combo 56%).
fn fig2(result: &PipelineResult) -> String {
    let paper = [32_646, 48_097, 166_152, 371_354, 39_414];
    let order = [0usize, 1, 2, 3, 4];
    let names = ["Homograph", "Bits", "Typo", "Combo", "WrongTLD"];
    let total: usize = result.scan.by_type.iter().sum();
    let rows: Vec<Vec<String>> = order
        .iter()
        .map(|&i| {
            vec![
                names[i].to_string(),
                result.scan.by_type[i].to_string(),
                pct(result.scan.by_type[i], total),
                paper[i].to_string(),
                pct(paper[i], 657_663),
            ]
        })
        .collect();
    table(
        "Figure 2 — squatting domains per type (measured vs paper)",
        &["Type", "Measured", "Share", "Paper", "PaperShare"],
        &rows,
    )
}

/// Figure 3: accumulated % of squatting domains vs brand rank (paper:
/// top-20 brands own >30%).
fn fig3(result: &PipelineResult) -> String {
    let shares = analysis::accumulated_share(&result.scan.by_brand);
    let picks = [0usize, 4, 9, 19, 49, 99, 199, 399, 699];
    let points: Vec<(String, String)> = picks
        .iter()
        .filter(|&&i| i < shares.len())
        .map(|&i| {
            (
                format!("top {}", i + 1),
                format!("{:.1}%", shares[i] * 100.0),
            )
        })
        .collect();
    let mut s = series(
        "Figure 3 — accumulated share of squatting domains by brand rank",
        "Brands",
        "Accumulated share",
        &points,
    );
    if shares.len() >= 20 {
        s.push_str(&format!(
            "(paper: top-20 brands own >30%; measured: {:.1}%)\n",
            shares[19] * 100.0
        ));
    }
    s
}

/// Figure 4 (table): top-5 brands with the most squatting domains
/// (paper: vice 5.98%, porn 2.76%, bt 2.46%, apple 2.05%, ford 1.85%).
fn fig4(result: &PipelineResult) -> String {
    let total: usize = result.scan.by_brand.iter().sum();
    let mut per_brand: Vec<(usize, usize)> =
        result.scan.by_brand.iter().copied().enumerate().collect();
    per_brand.sort_by_key(|x| std::cmp::Reverse(x.1));
    let rows: Vec<Vec<String>> = per_brand
        .iter()
        .take(5)
        .map(|&(b, n)| {
            vec![
                result
                    .registry
                    .get(b)
                    .map(|br| br.domain.as_str().to_string())
                    .unwrap_or_default(),
                n.to_string(),
                pct(n, total),
            ]
        })
        .collect();
    table(
        "Figure 4 — top-5 brands by squatting domains (paper: vice, porn, bt, apple, ford)",
        &["Brand", "Squatting Domains", "Percent"],
        &rows,
    )
}

/// Table 2: crawl statistics (paper: 362,545 web live, 87.3% no redirect,
/// 1.7% original, 3.0% market, 8.0% other).
fn table2(result: &PipelineResult) -> String {
    let s = &result.crawl_stats;
    let row = |name: &str, live: usize, none: usize, orig: usize, market: usize, other: usize| {
        vec![
            name.to_string(),
            live.to_string(),
            format!("{none} ({})", pct(none, live)),
            format!("{orig} ({})", pct(orig, live)),
            format!("{market} ({})", pct(market, live)),
            format!("{other} ({})", pct(other, live)),
        ]
    };
    table(
        "Table 2 — crawl statistics (paper: 87.3% none / 1.7% original / 3.0% market / 8.0% other)",
        &[
            "Type",
            "Live Domains",
            "No Redirect",
            "To Original",
            "To Market",
            "To Others",
        ],
        &[
            row(
                "Web",
                s.web_live,
                s.web_no_redirect,
                s.web_redirect_original,
                s.web_redirect_market,
                s.web_redirect_other,
            ),
            row(
                "Mobile",
                s.mobile_live,
                s.mobile_no_redirect,
                s.mobile_redirect_original,
                s.mobile_redirect_market,
                s.mobile_redirect_other,
            ),
        ],
    )
}

/// Table 3: top brands redirecting to their original sites.
fn table3(result: &PipelineResult) -> String {
    let mut league = analysis::redirect_league(result);
    league.sort_by(|a, b| {
        let ra = a.2 as f64 / a.1.max(1) as f64;
        let rb = b.2 as f64 / b.1.max(1) as f64;
        rb.partial_cmp(&ra)
            .expect("finite ratios")
            .then(b.2.cmp(&a.2))
    });
    let rows: Vec<Vec<String>> = league
        .iter()
        .filter(|(_, _, orig, ..)| *orig > 0)
        .take(5)
        .map(|(brand, total, orig, market, other)| {
            vec![
                brand.clone(),
                total.to_string(),
                format!("{orig} ({})", pct(*orig, *total)),
                format!("{market} ({})", pct(*market, *total)),
                format!("{other} ({})", pct(*other, *total)),
            ]
        })
        .collect();
    table(
        "Table 3 — top brands redirecting squats to their original sites (paper: Shutterfly, Alliancebank, Rabobank, Priceline, Carfax)",
        &["Brand", "Domains w/ Redirect", "Original", "Market", "Others"],
        &rows,
    )
}

/// Table 4: top brands redirecting to domain marketplaces.
fn table4(result: &PipelineResult) -> String {
    let mut league = analysis::redirect_league(result);
    league.sort_by(|a, b| {
        let ra = a.3 as f64 / a.1.max(1) as f64;
        let rb = b.3 as f64 / b.1.max(1) as f64;
        rb.partial_cmp(&ra)
            .expect("finite ratios")
            .then(b.3.cmp(&a.3))
    });
    let rows: Vec<Vec<String>> = league
        .iter()
        .filter(|(_, _, _, market, _)| *market > 0)
        .take(5)
        .map(|(brand, total, orig, market, other)| {
            vec![
                brand.clone(),
                total.to_string(),
                format!("{orig} ({})", pct(*orig, *total)),
                format!("{market} ({})", pct(*market, *total)),
                format!("{other} ({})", pct(*other, *total)),
            ]
        })
        .collect();
    table(
        "Table 4 — top brands redirecting squats to marketplaces (paper: Zocdoc, Comerica, Verizon, Amazon, Paypal)",
        &["Brand", "Domains w/ Redirect", "Original", "Market", "Others"],
        &rows,
    )
}

/// Figure 5: accumulated % of PhishTank URLs per brand (paper: top-8 =
/// 59.1%).
fn fig5(result: &PipelineResult) -> String {
    let mut per_brand = vec![0usize; result.registry.len()];
    for e in &result.feed.entries {
        per_brand[e.brand] += 1;
    }
    let shares = analysis::accumulated_share(&per_brand);
    let picks = [0usize, 3, 7, 19, 49, 99, 137];
    let points: Vec<(String, String)> = picks
        .iter()
        .filter(|&&i| i < shares.len())
        .map(|&i| {
            (
                format!("top {}", i + 1),
                format!("{:.1}%", shares[i] * 100.0),
            )
        })
        .collect();
    let mut s = series(
        "Figure 5 — accumulated share of ground-truth feed URLs by brand",
        "Brands",
        "Accumulated share",
        &points,
    );
    if shares.len() >= 8 {
        s.push_str(&format!(
            "(paper: top-8 brands = 59.1%; measured: {:.1}%)\n",
            shares[7] * 100.0
        ));
    }
    s
}

/// Figure 6: Alexa-rank buckets of feed URLs (paper: 246 / 1042 / 444 /
/// 274 / 4749 — 70% beyond top-1M).
fn fig6(result: &PipelineResult) -> String {
    let mut buckets = [0usize; 5];
    for e in &result.feed.entries {
        let i = match e.rank {
            RankBucket::Top1K => 0,
            RankBucket::To10K => 1,
            RankBucket::To100K => 2,
            RankBucket::To1M => 3,
            RankBucket::Beyond1M => 4,
        };
        buckets[i] += 1;
    }
    let paper = [246, 1042, 444, 274, 4749];
    let names = ["(0-1000]", "(1000-1e4]", "(1e4-1e5]", "(1e5-1e6]", "1e6+"];
    let rows: Vec<Vec<String>> = (0..5)
        .map(|i| {
            vec![
                names[i].to_string(),
                buckets[i].to_string(),
                paper[i].to_string(),
            ]
        })
        .collect();
    table(
        "Figure 6 — Alexa rank of ground-truth phishing hosts (measured vs paper)",
        &["Bucket", "Measured", "Paper"],
        &rows,
    )
}

/// Figure 7: squatting-type mix inside the feed (paper: 4 homograph / 0
/// bits / 3 typo / 592 combo / 0 wrongTLD / 6,156 none).
fn fig7(result: &PipelineResult) -> String {
    let mut counts = [0usize; 6];
    for e in &result.feed.entries {
        let i = match e.squat_type {
            Some(t) => type_index(t),
            None => 5,
        };
        counts[i] += 1;
    }
    let names = ["Homograph", "Bits", "Typo", "Combo", "WrongTLD", "No"];
    let paper = [4, 0, 3, 592, 0, 6156];
    let rows: Vec<Vec<String>> = (0..6)
        .map(|i| {
            vec![
                names[i].to_string(),
                counts[i].to_string(),
                paper[i].to_string(),
            ]
        })
        .collect();
    table(
        "Figure 7 — squatting domains inside the ground-truth feed (measured vs paper)",
        &["Type", "Measured", "Paper"],
        &rows,
    )
}

/// Table 5: top-8 feed brands with manual-verification results (paper:
/// 1,731 of 4,004 still phishing).
fn table5(result: &PipelineResult) -> String {
    let feed = &result.feed;
    let total = feed.entries.len();
    let mut rows = Vec::new();
    let mut sum_urls = 0usize;
    let mut sum_valid = 0usize;
    for label in squatphi_feeds::GroundTruthFeed::top8_labels() {
        let Some(brand) = result.registry.by_label(label) else {
            continue;
        };
        let entries: Vec<_> = feed
            .entries
            .iter()
            .filter(|e| e.brand == brand.id)
            .collect();
        let valid = entries.iter().filter(|e| e.still_phishing).count();
        sum_urls += entries.len();
        sum_valid += valid;
        rows.push(vec![
            label.to_string(),
            entries.len().to_string(),
            pct(entries.len(), total),
            valid.to_string(),
        ]);
    }
    rows.push(vec![
        "SubTotal".to_string(),
        sum_urls.to_string(),
        pct(sum_urls, total),
        sum_valid.to_string(),
    ]);
    table(
        "Table 5 — top-8 feed brands and still-valid phishing (paper: 4,004 URLs, 1,731 valid)",
        &["Brand", "# of URLs", "Percent", "Valid Phishing"],
        &rows,
    )
}

/// Figure 8: layout-obfuscation example — image-hash distances of
/// increasingly obfuscated paypal phishing pages (paper: 7 / 24 / 38).
fn fig8(indexed: bool) -> String {
    let registry = BrandRegistry::with_size(10);
    let brand = registry.by_label("paypal").expect("paypal");
    let original = pages::brand_login_page(brand);
    // Self-contained figure (no pipeline result), so it runs its own
    // analyzer; the four variants below still share its cache.
    let analyzer = squatphi::artifact::PageAnalyzer::new();
    let orig_hash = analyzer.analyze(&original).image_hash;
    let variant_hashes: Vec<_> = (0..4u8)
        .map(|intensity| {
            let profile = PhishingProfile {
                brand: brand.id,
                scam: ScamKind::FakeLogin,
                layout_obfuscation: intensity,
                string_obfuscation: false,
                code_obfuscation: false,
                cloaking: Cloaking::None,
                lifetime: LifetimePattern::Stable,
            };
            let html = pages::phishing_page(brand, &profile, "paypal-cash.com", 8);
            analyzer.analyze(&html).image_hash
        })
        .collect();
    let points: Vec<(String, String)> =
        squatphi::evasion::layout_distances(&variant_hashes, orig_hash, indexed)
            .into_iter()
            .enumerate()
            .map(|(intensity, d)| (format!("intensity {intensity}"), d.to_string()))
            .collect();
    let mut s = series(
        "Figure 8 — image-hash distance of paypal phishing variants to the real page",
        "Variant",
        "pHash distance",
        &points,
    );
    s.push_str("(paper's example distances: 7 / 24 / 38; distance grows with obfuscation)\n");
    s
}

/// Figure 9: mean image-hash distance per brand over ground-truth
/// phishing (paper: most brands around 20+).
fn fig9(result: &PipelineResult) -> String {
    let analyzer = result.extractor.analyzer();
    let mut rows = Vec::new();
    for label in squatphi_feeds::GroundTruthFeed::top8_labels() {
        let Some(brand) = result.registry.by_label(label) else {
            continue;
        };
        let brand_page = result.world.brand_page(brand.id).expect("brand page");
        let bh = analyzer.analyze(brand_page).image_hash;
        let page_hashes: Vec<_> = result
            .feed
            .entries
            .iter()
            .filter(|e| e.brand == brand.id && e.still_phishing)
            .take(60)
            .map(|e| analyzer.analyze(&e.html).image_hash)
            .collect();
        let ds: Vec<f64> =
            squatphi::evasion::layout_distances(&page_hashes, bh, result.phash_index)
                .into_iter()
                .map(f64::from)
                .collect();
        if ds.is_empty() {
            continue;
        }
        let mean = ds.iter().sum::<f64>() / ds.len() as f64;
        let std = (ds.iter().map(|d| (d - mean).powi(2)).sum::<f64>() / ds.len() as f64).sqrt();
        rows.push(vec![
            label.to_string(),
            f2(mean),
            f2(std),
            ds.len().to_string(),
        ]);
    }
    table(
        "Figure 9 — mean image-hash distance to the real page, per brand (paper: ~20+)",
        &["Brand", "Mean distance", "Std", "Pages"],
        &rows,
    )
}

/// Table 6: string/code obfuscation per brand on ground truth (paper:
/// e.g. microsoft 70.2% string, facebook 46.6% code).
fn table6(result: &PipelineResult) -> String {
    let analyzer = result.extractor.analyzer();
    let mut rows = Vec::new();
    for label in squatphi_feeds::GroundTruthFeed::top8_labels() {
        let Some(brand) = result.registry.by_label(label) else {
            continue;
        };
        let brand_page = result.world.brand_page(brand.id).expect("brand page");
        let brand_artifact = analyzer.analyze(brand_page);
        let artifacts: Vec<_> = result
            .feed
            .entries
            .iter()
            .filter(|e| e.brand == brand.id && e.still_phishing)
            .take(80)
            .map(|e| analyzer.analyze(&e.html))
            .collect();
        let ms = squatphi::evasion::measure_corpus(
            artifacts.iter().map(|a| a.as_ref()),
            &brand_artifact,
            label,
            result.phash_index,
        );
        if ms.is_empty() {
            continue;
        }
        let s = squatphi::evasion::EvasionSummary::from_measurements(&ms);
        rows.push(vec![
            label.to_string(),
            format!("{:.1}%", s.string_rate * 100.0),
            format!("{:.1}%", s.code_rate * 100.0),
            ms.len().to_string(),
        ]);
    }
    table(
        "Table 6 — string and code obfuscation in ground-truth phishing pages",
        &["Brand", "String Obfuscated", "Code Obfuscated", "Pages"],
        &rows,
    )
}

/// Table 7: classifier performance (paper: RF 0.03 FP / 0.06 FN /
/// 0.97 AUC / 0.90 ACC; NB 0.50 FP).
fn table7(result: &PipelineResult) -> String {
    let rows: Vec<Vec<String>> = result
        .eval
        .models
        .iter()
        .map(|m| {
            vec![
                m.name.to_string(),
                f2(m.metrics.fpr),
                f2(m.metrics.fnr),
                f2(m.metrics.auc),
                f2(m.metrics.accuracy),
            ]
        })
        .collect();
    let mut s = table(
        "Table 7 — classifier cross-validation (paper: RF 0.03/0.06/0.97/0.90)",
        &[
            "Algorithm",
            "False Positive",
            "False Negative",
            "AUC",
            "ACC",
        ],
        &rows,
    );
    s.push_str(&format!(
        "(training set: {} phishing / {} benign)\n",
        result.eval.train_shape.0, result.eval.train_shape.1
    ));
    s
}

/// Figure 10: ROC curves of the three models.
fn fig10(result: &PipelineResult) -> String {
    let mut out = String::from("== Figure 10 — ROC curves (FPR → TPR) ==\n");
    for m in &result.eval.models {
        out.push_str(&format!("{} (AUC {:.3}):\n", m.name, m.metrics.auc));
        // Downsample the curve to ~12 points for readability.
        let pts = &m.roc.points;
        let step = (pts.len() / 12).max(1);
        for (i, (fpr, tpr)) in pts.iter().enumerate() {
            if i % step == 0 || i == pts.len() - 1 {
                out.push_str(&format!("  fpr={fpr:.3} tpr={tpr:.3}\n"));
            }
        }
    }
    out
}

/// Table 8: in-the-wild detection and confirmation (paper: 1,224 web
/// flagged / 857 confirmed 70.0%; 1,269 mobile / 908 72.0%; 1,175
/// domains / 281 brands).
fn table8(result: &PipelineResult) -> String {
    let web_flagged = result.web_detections.len();
    let web_confirmed = result.confirmed(Device::Web).len();
    let mob_flagged = result.mobile_detections.len();
    let mob_confirmed = result.confirmed(Device::Mobile).len();
    let union_domains = result.confirmed_domains().len();
    let union_flagged: std::collections::HashSet<&str> = result
        .web_detections
        .iter()
        .chain(&result.mobile_detections)
        .map(|d| d.domain.as_str())
        .collect();
    let brands: std::collections::HashSet<usize> = result
        .web_detections
        .iter()
        .chain(&result.mobile_detections)
        .filter(|d| d.confirmed)
        .map(|d| d.brand)
        .collect();
    let web_brands: std::collections::HashSet<usize> = result
        .confirmed(Device::Web)
        .iter()
        .map(|d| d.brand)
        .collect();
    let mob_brands: std::collections::HashSet<usize> = result
        .confirmed(Device::Mobile)
        .iter()
        .map(|d| d.brand)
        .collect();
    let rows = vec![
        vec![
            "Web".to_string(),
            result.scan.total_matches().to_string(),
            web_flagged.to_string(),
            format!("{web_confirmed} ({})", pct(web_confirmed, web_flagged)),
            web_brands.len().to_string(),
        ],
        vec![
            "Mobile".to_string(),
            result.scan.total_matches().to_string(),
            mob_flagged.to_string(),
            format!("{mob_confirmed} ({})", pct(mob_confirmed, mob_flagged)),
            mob_brands.len().to_string(),
        ],
        vec![
            "Union".to_string(),
            result.scan.total_matches().to_string(),
            union_flagged.len().to_string(),
            format!(
                "{union_domains} ({})",
                pct(union_domains, union_flagged.len())
            ),
            brands.len().to_string(),
        ],
    ];
    let mut s = table(
        "Table 8 — detected and confirmed squatting phishing (paper: 857 web / 908 mobile / 1,175 domains)",
        &["Type", "Squatting Domains", "Classified as Phishing", "Manually Confirmed", "Related Brands"],
        &rows,
    );
    // §6.1 cloaking split: paper found 590 both / 318 mobile-only /
    // 267 web-only.
    let (both, mobile_only, web_only) = analysis::cloaking_split(result);
    s.push_str(&format!(
        "(cloaking: {both} domains serve both profiles, {mobile_only} mobile-only, {web_only} web-only; paper: 590 / 318 / 267)\n"
    ));
    s
}

/// Table 9: 15 example brands, predicted vs verified.
fn table9(result: &PipelineResult) -> String {
    let labels = [
        "google",
        "facebook",
        "apple",
        "bitcoin",
        "uber",
        "youtube",
        "paypal",
        "citi",
        "ebay",
        "microsoft",
        "twitter",
        "dropbox",
        "github",
        "adp",
        "santander",
    ];
    let mut rows = Vec::new();
    for label in labels {
        let Some(brand) = result.registry.by_label(label) else {
            continue;
        };
        let pred = |set: &[squatphi::pipeline::Detection]| {
            let mut seen = std::collections::HashSet::new();
            set.iter()
                .filter(|d| d.brand == brand.id && seen.insert(d.domain.as_str()))
                .count()
        };
        let conf = |device: Device| {
            let mut seen = std::collections::HashSet::new();
            result
                .confirmed(device)
                .iter()
                .filter(|d| d.brand == brand.id && seen.insert(d.domain.as_str()))
                .count()
        };
        let (pw, pm) = (
            pred(&result.web_detections),
            pred(&result.mobile_detections),
        );
        let (cw, cm) = (conf(Device::Web), conf(Device::Mobile));
        rows.push(vec![
            label.to_string(),
            result.scan.by_brand[brand.id].to_string(),
            pw.to_string(),
            pm.to_string(),
            format!("{cw} ({})", pct(cw, pw)),
            format!("{cm} ({})", pct(cm, pm)),
        ]);
    }
    table(
        "Table 9 — example brands: predicted vs manually verified phishing pages",
        &[
            "Brand",
            "Squatting Domains",
            "Pred Web",
            "Pred Mobile",
            "Verified Web",
            "Verified Mobile",
        ],
        &rows,
    )
}

/// Figure 11: CDF of verified phishing domains per brand (paper: most
/// brands < 10).
fn fig11(result: &PipelineResult) -> String {
    let per_brand = analysis::confirmed_per_brand(result);
    let counts: Vec<usize> = per_brand.iter().map(|(_, w, m)| *w + *m).collect();
    let thresholds = [1usize, 2, 5, 10, 20, 50, 100];
    let points: Vec<(String, String)> = thresholds
        .iter()
        .map(|&t| {
            let frac =
                counts.iter().filter(|&&c| c <= t).count() as f64 / counts.len().max(1) as f64;
            (format!("<= {t}"), format!("{:.1}%", frac * 100.0))
        })
        .collect();
    series(
        "Figure 11 — CDF of verified phishing domains per targeted brand (paper: most brands < 10)",
        "Domains per brand",
        "CDF of brands",
        &points,
    )
}

/// Figure 12: confirmed squatting phishing per squat type (paper: combo
/// largest, 200+ in homograph/bits/typo).
fn fig12(result: &PipelineResult) -> String {
    let per_type = analysis::confirmed_per_type(result);
    let names = ["Homograph", "Bits", "Typo", "Combo", "WrongTLD"];
    let rows: Vec<Vec<String>> = (0..5)
        .map(|i| {
            vec![
                names[i].to_string(),
                per_type[i].0.to_string(),
                per_type[i].1.to_string(),
            ]
        })
        .collect();
    table(
        "Figure 12 — confirmed squatting phishing domains per type (paper: combo largest)",
        &["Type", "Web", "Mobile"],
        &rows,
    )
}

/// Figure 13: top targeted brands (paper: google first with 194 pages).
fn fig13(result: &PipelineResult) -> String {
    let per_brand = analysis::confirmed_per_brand(result);
    let rows: Vec<Vec<String>> = per_brand
        .iter()
        .take(30)
        .map(|(label, w, m)| {
            vec![
                label.clone(),
                w.to_string(),
                m.to_string(),
                (w + m).to_string(),
            ]
        })
        .collect();
    table(
        "Figure 13 — top brands targeted by squatting phishing (paper: google first, 194 pages)",
        &["Brand", "Web", "Mobile", "Total"],
        &rows,
    )
}

/// Table 10: example confirmed phishing domains for a set of brands.
fn table10(result: &PipelineResult) -> String {
    let labels = [
        "google",
        "facebook",
        "apple",
        "bitcoin",
        "uber",
        "youtube",
        "paypal",
        "citi",
        "ebay",
        "microsoft",
        "twitter",
        "dropbox",
        "adp",
        "santander",
    ];
    let mut rows = Vec::new();
    for label in labels {
        for d in analysis::examples_per_brand(result, label, 3) {
            rows.push(vec![
                label.to_string(),
                d.domain.clone(),
                d.squat_type.to_string(),
            ]);
        }
    }
    table(
        "Table 10 — example confirmed squatting phishing domains",
        &["Brand", "Squatting Phishing Domain", "Squatting Type"],
        &rows,
    )
}

/// Figure 14: case-study screenshots as ASCII art.
fn fig14(result: &PipelineResult) -> String {
    let mut out = String::from("== Figure 14 — case-study phishing page renders ==\n");
    let mut shown = 0;
    for d in result.confirmed(Device::Web) {
        if shown >= 3 {
            break;
        }
        if let squatphi_web::ServeResult::Page(html) = result.world.serve(&d.domain, Device::Web, 0)
        {
            let bmp = result.extractor.analyzer().screenshot(&html);
            out.push_str(&format!("--- {} ---\n", d.domain));
            out.push_str(&ascii::to_ascii(&bmp, 72));
            shown += 1;
        }
    }
    if shown == 0 {
        out.push_str("(no live confirmed phishing pages to render)\n");
    }
    out
}

/// Figure 15: geolocation of phishing IPs (paper: US 494, DE 106, GB 77).
fn fig15(result: &PipelineResult) -> String {
    let geo = analysis::geo_distribution(result);
    let rows: Vec<Vec<String>> = geo
        .iter()
        .take(10)
        .map(|(c, n)| vec![c.to_string(), n.to_string()])
        .collect();
    let mut s = table(
        "Figure 15 — phishing host geolocation (paper: US 494, DE 106, GB 77, FR 44 …)",
        &["Country", "Hosts"],
        &rows,
    );
    s.push_str(&format!("(countries observed: {})\n", geo.len()));
    s
}

/// Figure 16: registration years of phishing domains (paper: mostly the
/// recent 4 years).
fn fig16(result: &PipelineResult) -> String {
    let hist = analysis::registration_histogram(result);
    let rows: Vec<Vec<String>> = hist
        .iter()
        .map(|(y, n)| vec![y.to_string(), n.to_string()])
        .collect();
    table(
        "Figure 16 — registration year of confirmed phishing domains (paper: recent-heavy)",
        &["Year", "Registered Domains"],
        &rows,
    )
}

/// Figure 17: live phishing pages per snapshot (paper: ~80% survive the
/// month). Uses the paper's method — re-crawl the detected set at every
/// snapshot and *re-apply the classifier* — not the world's ground truth.
fn fig17(result: &PipelineResult) -> String {
    let live = squatphi::snapshots::recrawl_and_classify(result, 8);
    let rows: Vec<Vec<String>> = live
        .iter()
        .enumerate()
        .map(|(i, (w, m))| vec![SNAPSHOT_DATES[i].to_string(), w.to_string(), m.to_string()])
        .collect();
    let mut s = table(
        "Figure 17 — live phishing pages per snapshot, re-crawled and re-classified (paper: ~80% survive a month)",
        &["Snapshot", "Web", "Mobile"],
        &rows,
    );
    if live[0].0 + live[0].1 > 0 {
        let survive = (live[3].0 + live[3].1) as f64 / (live[0].0 + live[0].1) as f64;
        s.push_str(&format!(
            "(survival after one month: {:.1}%)\n",
            survive * 100.0
        ));
    }
    s
}

/// Table 11: evasion rates, squatting vs non-squatting phishing (paper:
/// layout 28.4±11.8 vs 21.0±12.3; string 68.1% vs 35.9%; code 34.0% vs
/// 37.5%).
fn table11(result: &PipelineResult) -> String {
    let analyzer = result.extractor.analyzer();
    // Both sets group pages by brand so each brand's corpus goes through
    // one bulk `measure_corpus` call (one index build / one radius query
    // per brand instead of a pairwise loop). BTreeMap keeps brand order —
    // and therefore the measurement order the summary sums over —
    // deterministic and identical with the index on or off.
    let measure_grouped = |pages: Vec<(usize, String)>| {
        let mut by_brand: std::collections::BTreeMap<usize, Vec<String>> =
            std::collections::BTreeMap::new();
        for (brand, html) in pages {
            by_brand.entry(brand).or_default().push(html);
        }
        let mut ms = Vec::new();
        for (brand_id, htmls) in by_brand {
            let Some(brand) = result.registry.get(brand_id) else {
                continue;
            };
            let Some(brand_page) = result.world.brand_page(brand_id) else {
                continue;
            };
            let brand_artifact = analyzer.analyze(brand_page);
            let artifacts: Vec<_> = htmls.iter().map(|h| analyzer.analyze(h)).collect();
            ms.extend(squatphi::evasion::measure_corpus(
                artifacts.iter().map(|a| a.as_ref()),
                &brand_artifact,
                &brand.label,
                result.phash_index,
            ));
        }
        ms
    };

    // Squatting phishing: measure a sample of confirmed live pages.
    let squat_pages: Vec<(usize, String)> = result
        .confirmed(Device::Web)
        .iter()
        .take(200)
        .filter_map(|d| match result.world.serve(&d.domain, Device::Web, 0) {
            squatphi_web::ServeResult::Page(html) => Some((d.brand, html)),
            _ => None,
        })
        .collect();
    let squat = squatphi::evasion::EvasionSummary::from_measurements(&measure_grouped(squat_pages));

    // Non-squatting: the feed's still-phishing, non-squatting entries.
    let ns_pages: Vec<(usize, String)> = result
        .feed
        .entries
        .iter()
        .filter(|e| e.still_phishing && e.squat_type.is_none())
        .take(300)
        .map(|e| (e.brand, e.html.clone()))
        .collect();
    let ns = squatphi::evasion::EvasionSummary::from_measurements(&measure_grouped(ns_pages));

    let row = |name: &str, s: &squatphi::evasion::EvasionSummary| {
        vec![
            name.to_string(),
            format!("{:.1} ± {:.1}", s.layout_mean, s.layout_std),
            format!("{:.1}%", s.string_rate * 100.0),
            format!("{:.1}%", s.code_rate * 100.0),
            s.count.to_string(),
        ]
    };
    table(
        "Table 11 — evasion: squatting vs non-squatting phishing (paper: 28.4±11.8 / 68.1% / 34.0% vs 21.0±12.3 / 35.9% / 37.5%)",
        &["Set", "Layout Obfuscation", "String Obfuscation", "Code Obfuscation", "Pages"],
        &[row("Squatting", &squat), row("Non-Squatting", &ns)],
    )
}

/// Table 12: blacklist coverage one month in (paper: PhishTank 0, VT 100
/// (8.5%), eCrimeX 2, 91.5% undetected).
fn table12(result: &PipelineResult) -> String {
    let (pt, vt, ecx, none) = analysis::blacklist_coverage(result);
    let total = result.confirmed_domains().len();
    let rows = vec![vec![
        format!("{pt} ({})", pct(pt, total)),
        format!("{vt} ({})", pct(vt, total)),
        format!("{ecx} ({})", pct(ecx, total)),
        format!("{none} ({})", pct(none, total)),
    ]];
    table(
        "Table 12 — blacklist coverage after one month (paper: 0 / 100 (8.5%) / 2 / 91.5% undetected)",
        &["PhishTank", "VirusTotal", "eCrimeX", "Not Detected"],
        &rows,
    )
}

/// Table 13: per-domain liveness across the four snapshots, including a
/// comeback domain if one exists (paper: tacebook.ga pattern).
fn table13(result: &PipelineResult) -> String {
    let mut rows = Vec::new();
    // Prefer interesting traces: one stable, takedowns, and a comeback.
    let mut comeback = None;
    let mut takedown = None;
    let mut stable = Vec::new();
    for domain in result.confirmed_domains() {
        if let Some(site) = result.world.site(domain) {
            if let SiteBehavior::Phishing(p) = &site.behavior {
                match p.lifetime {
                    LifetimePattern::Comeback if comeback.is_none() => comeback = Some(domain),
                    LifetimePattern::TakenDown { .. } if takedown.is_none() => {
                        takedown = Some(domain)
                    }
                    LifetimePattern::Stable if stable.len() < 4 => stable.push(domain),
                    _ => {}
                }
            }
        }
    }
    for domain in stable.into_iter().chain(takedown).chain(comeback) {
        let trace = analysis::liveness_trace(result, domain);
        rows.push(vec![
            domain.to_string(),
            trace[0].to_string(),
            trace[1].to_string(),
            trace[2].to_string(),
            trace[3].to_string(),
        ]);
    }
    table(
        "Table 13 — liveness of confirmed phishing pages across snapshots (paper: incl. a comeback domain)",
        &["Domain", SNAPSHOT_DATES[0], SNAPSHOT_DATES[1], SNAPSHOT_DATES[2], SNAPSHOT_DATES[3]],
        &rows,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use squatphi::{RunOptions, SimConfig, SquatPhi};
    use std::sync::OnceLock;

    fn result() -> &'static PipelineResult {
        static R: OnceLock<PipelineResult> = OnceLock::new();
        R.get_or_init(|| {
            SquatPhi::try_run(&SimConfig::tiny(), &RunOptions::default())
                .expect("tiny pipeline runs clean")
        })
    }

    #[test]
    fn every_experiment_runs() {
        let r = result();
        for id in EXPERIMENT_IDS {
            let out = run_experiment(id, r).unwrap_or_else(|| panic!("{id} unknown"));
            assert!(!out.trim().is_empty(), "{id} produced empty output");
        }
    }

    #[test]
    fn unknown_id_is_none() {
        assert!(run_experiment("nope", result()).is_none());
    }

    #[test]
    fn table1_contains_all_five_types() {
        let t = table1();
        for name in ["homograph", "bits", "typo", "combo", "wrongtld"] {
            assert!(t.contains(name), "table1 missing {name}: {t}");
        }
        assert!(t.contains("punycode:"), "table1 missing an IDN example");
    }

    #[test]
    fn fig2_combo_dominates() {
        let out = fig2(result());
        assert!(out.contains("Combo"));
        // Combo must carry the largest measured count.
        let combo = result().scan.count(SquatType::Combo);
        for t in [
            SquatType::Homograph,
            SquatType::Bits,
            SquatType::Typo,
            SquatType::WrongTld,
        ] {
            assert!(combo > result().scan.count(t));
        }
    }

    #[test]
    fn fig8_distances_monotone_overall() {
        let out = fig8(true);
        assert_eq!(out, fig8(false), "index-on and linear fig8 diverged");
        // Parse the distances back out.
        let ds: Vec<u32> = out
            .lines()
            .filter(|l| l.starts_with("intensity"))
            .filter_map(|l| l.split_whitespace().last()?.parse().ok())
            .collect();
        assert_eq!(ds.len(), 4);
        assert!(
            ds[3] > ds[0],
            "intensity 3 ({}) should exceed 0 ({})",
            ds[3],
            ds[0]
        );
    }

    #[test]
    fn table7_has_three_rows() {
        let out = table7(result());
        for name in ["NaiveBayes", "KNN", "RandomForest"] {
            assert!(out.contains(name));
        }
    }

    #[test]
    fn table12_percentages_sane() {
        let (pt, vt, ecx, none) = analysis::blacklist_coverage(result());
        let total = result().confirmed_domains().len();
        assert!(none <= total);
        assert!(
            pt + vt + ecx + none >= total.saturating_sub(3),
            "coverage buckets lost domains"
        );
        assert!(
            none * 10 >= total * 8,
            "squatting phishing should be mostly undetected"
        );
    }
}
