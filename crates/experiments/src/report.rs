//! Plain-text table/series formatting helpers.

/// Renders an aligned text table.
pub fn table(title: &str, headers: &[&str], rows: &[Vec<String>]) -> String {
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            if i < widths.len() {
                widths[i] = widths[i].max(cell.len());
            }
        }
    }
    let mut out = String::new();
    out.push_str(&format!("== {title} ==\n"));
    let mut header_line = String::new();
    for (h, w) in headers.iter().zip(&widths) {
        header_line.push_str(&format!("{h:<w$}  ", w = w));
    }
    out.push_str(header_line.trim_end());
    out.push('\n');
    out.push_str(&"-".repeat(header_line.trim_end().len()));
    out.push('\n');
    for row in rows {
        let mut line = String::new();
        for (c, w) in row.iter().zip(&widths) {
            line.push_str(&format!("{c:<w$}  ", w = w));
        }
        out.push_str(line.trim_end());
        out.push('\n');
    }
    out
}

/// Renders an (x, y) series as aligned columns (our "figure" format).
pub fn series(title: &str, x_label: &str, y_label: &str, points: &[(String, String)]) -> String {
    let rows: Vec<Vec<String>> = points
        .iter()
        .map(|(x, y)| vec![x.clone(), y.clone()])
        .collect();
    table(title, &[x_label, y_label], &rows)
}

/// Percent formatting.
pub fn pct(num: usize, den: usize) -> String {
    if den == 0 {
        "0.0%".to_string()
    } else {
        format!("{:.1}%", num as f64 * 100.0 / den as f64)
    }
}

/// Two-decimal float.
pub fn f2(v: f64) -> String {
    format!("{v:.2}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_aligns_columns() {
        let t = table(
            "Demo",
            &["name", "count"],
            &[
                vec!["a".into(), "1".into()],
                vec!["longer-name".into(), "22".into()],
            ],
        );
        assert!(t.contains("== Demo =="));
        assert!(t.contains("longer-name"));
        let lines: Vec<&str> = t.lines().collect();
        // Header, separator, two rows, plus title.
        assert_eq!(lines.len(), 5);
    }

    #[test]
    fn pct_and_f2() {
        assert_eq!(pct(1, 4), "25.0%");
        assert_eq!(pct(0, 0), "0.0%");
        assert_eq!(f2(0.975), "0.97"); // round-half-even is fine
    }

    #[test]
    fn series_renders() {
        let s = series("Fig", "x", "y", &[("1".into(), "2".into())]);
        assert!(s.contains("Fig"));
        assert!(s.contains('1'));
    }
}
