//! Validated domain names.

use crate::tld::split_suffix;

/// Errors produced when parsing a [`DomainName`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DomainError {
    /// The string was empty or consisted only of dots.
    Empty,
    /// A label was empty (`a..b`), too long (>63 bytes) or the whole name
    /// exceeded 253 bytes.
    BadLength(String),
    /// A label contained a character outside `[a-z0-9-]` (after lowering)
    /// and was not valid UTF-8 IDN material.
    BadCharacter(char),
    /// A label started or ended with a hyphen.
    HyphenEdge(String),
    /// No known public suffix — the name cannot be split into
    /// (prefix, suffix).
    UnknownSuffix(String),
}

impl std::fmt::Display for DomainError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DomainError::Empty => write!(f, "empty domain"),
            DomainError::BadLength(l) => write!(f, "label or name too long: {l:?}"),
            DomainError::BadCharacter(c) => write!(f, "invalid character {c:?}"),
            DomainError::HyphenEdge(l) => write!(f, "label has leading/trailing hyphen: {l:?}"),
            DomainError::UnknownSuffix(d) => write!(f, "no known public suffix in {d:?}"),
        }
    }
}

impl std::error::Error for DomainError {}

/// A validated, lower-cased, fully-qualified domain name.
///
/// The name is stored in its ASCII (possibly punycoded) form. Use
/// [`crate::idna::to_unicode`] for the display form. Squatting analysis
/// operates on the *core label* — the left-most label of the registrable
/// domain — mirroring the paper's rule of ignoring subdomains
/// (`mail.google-app.de` is matched via `google-app`).
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct DomainName {
    full: String,
    /// Byte offset where the public suffix starts (after the final dot).
    suffix_start: usize,
    /// Byte range of the core (registrable) label.
    core_start: usize,
    core_end: usize,
}

impl DomainName {
    /// Parses and validates a domain name.
    ///
    /// Accepts ASCII names (including `xn--` punycode labels); the input is
    /// lower-cased. Unicode input should first go through
    /// [`crate::idna::to_ascii`].
    ///
    /// ```
    /// use squatphi_domain::DomainName;
    /// let d = DomainName::parse("Mail.Google-App.de").unwrap();
    /// assert_eq!(d.as_str(), "mail.google-app.de");
    /// assert_eq!(d.core_label(), "google-app");
    /// assert_eq!(d.suffix(), "de");
    /// ```
    pub fn parse(input: &str) -> Result<Self, DomainError> {
        Self::parse_reuse(input, String::new())
    }

    /// [`parse`](Self::parse), recycling `storage`'s allocation for the
    /// name's backing string. The scan hot loop parses millions of
    /// records; threading one buffer through
    /// [`into_string`](Self::into_string) and back saves a malloc/free
    /// per record. `storage` is cleared first; its contents are ignored.
    pub fn parse_reuse(input: &str, mut storage: String) -> Result<Self, DomainError> {
        // Fast path for the scan hot loop: an input that is already
        // trimmed, lower-case ASCII (the overwhelming majority of zone
        // records) validates in one pass and copies once. Anything with
        // whitespace, uppercase, edge dots or non-ASCII falls through to
        // the normalizing path below; both paths agree byte-for-byte.
        match Self::validate_clean(input) {
            Some(Ok(())) => {
                storage.clear();
                storage.push_str(input);
                return Self::finish(storage);
            }
            Some(Err(e)) => return Err(e),
            None => {}
        }
        storage.clear();
        storage.push_str(input.trim().trim_matches('.'));
        storage.make_ascii_lowercase();
        let lowered = storage;
        if lowered.is_empty() {
            return Err(DomainError::Empty);
        }
        if lowered.len() > 253 {
            return Err(DomainError::BadLength(lowered));
        }
        for label in lowered.split('.') {
            if label.is_empty() || label.len() > 63 {
                return Err(DomainError::BadLength(label.to_string()));
            }
            if label.starts_with('-') || label.ends_with('-') {
                return Err(DomainError::HyphenEdge(label.to_string()));
            }
            for c in label.chars() {
                if !(c.is_ascii_lowercase() || c.is_ascii_digit() || c == '-') {
                    return Err(DomainError::BadCharacter(c));
                }
            }
        }
        Self::finish(lowered)
    }

    /// One-pass validation of an input that needs no trimming or lowering:
    /// `Some(verdict)` when the input consists solely of `[a-z0-9.-]` with
    /// no leading/trailing dot (so normalization would be the identity and
    /// the verdict matches the normalizing path), `None` when the input
    /// needs the full treatment.
    fn validate_clean(input: &str) -> Option<Result<(), DomainError>> {
        let bytes = input.as_bytes();
        if bytes.is_empty() {
            return Some(Err(DomainError::Empty));
        }
        if bytes[0] == b'.' || bytes[bytes.len() - 1] == b'.' {
            return None; // edge dots: let trim_matches('.') decide
        }
        if bytes.len() > 253 {
            // Only a clean over-long name can take this exit; a dirty one
            // must be normalized first so the reported string matches.
            if !bytes
                .iter()
                .all(|&b| b.is_ascii_lowercase() || b.is_ascii_digit() || b == b'-' || b == b'.')
            {
                return None;
            }
            return Some(Err(DomainError::BadLength(input.to_string())));
        }
        // Validate label-by-label in the same order as the normalizing
        // path: length, hyphen edges, then characters.
        let mut start = 0usize;
        for i in 0..=bytes.len() {
            if i < bytes.len() && bytes[i] != b'.' {
                continue;
            }
            let label = &bytes[start..i];
            // Any byte outside the clean set (uppercase, whitespace,
            // non-ASCII) defers to the normalizing path, so every error
            // reported here carries the same payload it would there.
            for &b in label {
                if !(b.is_ascii_lowercase() || b.is_ascii_digit() || b == b'-') {
                    return None;
                }
            }
            if label.is_empty() || label.len() > 63 {
                return Some(Err(DomainError::BadLength(
                    String::from_utf8_lossy(label).into_owned(),
                )));
            }
            if label[0] == b'-' || label[label.len() - 1] == b'-' {
                return Some(Err(DomainError::HyphenEdge(
                    String::from_utf8_lossy(label).into_owned(),
                )));
            }
            start = i + 1;
        }
        Some(Ok(()))
    }

    /// Shared tail of both parse paths: suffix split and offset layout
    /// over an already-validated, normalized name.
    fn finish(lowered: String) -> Result<Self, DomainError> {
        let (prefix, suffix) =
            split_suffix(&lowered).ok_or_else(|| DomainError::UnknownSuffix(lowered.clone()))?;
        let suffix_start = lowered.len() - suffix.len();
        // Core label: the last label of the prefix.
        let core_start = match prefix.rfind('.') {
            Some(p) => p + 1,
            None => 0,
        };
        let core_end = prefix.len();
        Ok(DomainName {
            full: lowered,
            suffix_start,
            core_start,
            core_end,
        })
    }

    /// The full lower-cased ASCII name, e.g. `mail.google-app.de`.
    pub fn as_str(&self) -> &str {
        &self.full
    }

    /// Consumes the name, returning its backing string (for buffer
    /// recycling with [`parse_reuse`](Self::parse_reuse)).
    pub fn into_string(self) -> String {
        self.full
    }

    /// The public suffix, e.g. `de` or `com.ua`.
    pub fn suffix(&self) -> &str {
        &self.full[self.suffix_start..]
    }

    /// The core (registrable) label used for squatting analysis,
    /// e.g. `google-app` for `mail.google-app.de`.
    pub fn core_label(&self) -> &str {
        &self.full[self.core_start..self.core_end]
    }

    /// The registrable domain (`core_label.suffix`),
    /// e.g. `google-app.de` for `mail.google-app.de`.
    pub fn registrable(&self) -> String {
        format!("{}.{}", self.core_label(), self.suffix())
    }

    /// Whether the name has labels left of the registrable domain.
    pub fn has_subdomain(&self) -> bool {
        self.core_start > 0
    }

    /// Whether the core label is an IDN (punycode) label.
    pub fn is_idn(&self) -> bool {
        self.core_label().starts_with("xn--")
    }

    /// Builds a registrable domain from a core label and suffix without
    /// re-validating the suffix membership (used by generators that iterate
    /// over known suffixes).
    pub fn from_parts(core: &str, suffix: &str) -> Result<Self, DomainError> {
        Self::parse(&format!("{core}.{suffix}"))
    }
}

impl std::fmt::Display for DomainName {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        // `pad` (not `write_str`) so `{:<40}` column layouts in report
        // output actually align.
        f.pad(&self.full)
    }
}

impl std::str::FromStr for DomainName {
    type Err = DomainError;
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        Self::parse(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_simple() {
        let d = DomainName::parse("facebook.com").unwrap();
        assert_eq!(d.core_label(), "facebook");
        assert_eq!(d.suffix(), "com");
        assert_eq!(d.registrable(), "facebook.com");
        assert!(!d.has_subdomain());
    }

    #[test]
    fn parses_multi_suffix() {
        let d = DomainName::parse("goofle.com.ua").unwrap();
        assert_eq!(d.core_label(), "goofle");
        assert_eq!(d.suffix(), "com.ua");
    }

    #[test]
    fn subdomains_are_ignored_for_core() {
        let d = DomainName::parse("mail.google-app.de").unwrap();
        assert_eq!(d.core_label(), "google-app");
        assert!(d.has_subdomain());
        assert_eq!(d.registrable(), "google-app.de");
    }

    #[test]
    fn lowercases_and_trims() {
        let d = DomainName::parse(" FaceBook.COM. ").unwrap();
        assert_eq!(d.as_str(), "facebook.com");
    }

    #[test]
    fn idn_detection() {
        let d = DomainName::parse("xn--fcebook-8va.com").unwrap();
        assert!(d.is_idn());
        assert_eq!(d.core_label(), "xn--fcebook-8va");
    }

    #[test]
    fn rejects_bad_inputs() {
        assert!(matches!(DomainName::parse(""), Err(DomainError::Empty)));
        assert!(matches!(DomainName::parse("..."), Err(DomainError::Empty)));
        assert!(matches!(
            DomainName::parse("exa mple.com"),
            Err(DomainError::BadCharacter(' '))
        ));
        assert!(matches!(
            DomainName::parse("-bad.com"),
            Err(DomainError::HyphenEdge(_))
        ));
        assert!(matches!(
            DomainName::parse("bad-.com"),
            Err(DomainError::HyphenEdge(_))
        ));
        assert!(matches!(
            DomainName::parse("noval.notatld"),
            Err(DomainError::UnknownSuffix(_))
        ));
        let long = format!("{}.com", "a".repeat(64));
        assert!(matches!(
            DomainName::parse(&long),
            Err(DomainError::BadLength(_))
        ));
        let too_long = format!("{}.com", ["abcdefgh"; 40].join("."));
        assert!(matches!(
            DomainName::parse(&too_long),
            Err(DomainError::BadLength(_))
        ));
    }

    #[test]
    fn rejects_bare_suffix() {
        assert!(DomainName::parse("com").is_err());
        assert!(DomainName::parse("com.ua").is_err());
    }

    #[test]
    fn ordering_is_lexicographic_on_full_name() {
        let a = DomainName::parse("a.com").unwrap();
        let b = DomainName::parse("b.com").unwrap();
        assert!(a < b);
    }
}
