//! Minimal absolute-URL handling.
//!
//! The crawler and the HTTP client both need to pull hosts out of
//! `Location:` headers and page links; this module is the single owner of
//! that logic (full RFC 3986 parsing is out of scope — phishing URLs in
//! the dataset are plain `http(s)://host[:port]/path?query` shapes).

/// A parsed absolute http/https URL.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Url {
    /// `http` or `https`.
    pub scheme: String,
    /// Host (no port).
    pub host: String,
    /// Port, if one was written.
    pub port: Option<u16>,
    /// Path including the leading `/` (defaults to `/`).
    pub path: String,
}

impl Url {
    /// Parses an absolute http/https URL. Returns `None` for anything
    /// else (relative references, other schemes, empty hosts).
    pub fn parse(input: &str) -> Option<Url> {
        let (scheme, rest) = if let Some(r) = input.strip_prefix("https://") {
            ("https", r)
        } else if let Some(r) = input.strip_prefix("http://") {
            ("http", r)
        } else {
            return None;
        };
        let end = rest.find(['/', '?', '#']).unwrap_or(rest.len());
        let authority = &rest[..end];
        let path_part = &rest[end..];
        let (host, port) = match authority.rsplit_once(':') {
            Some((h, p)) if !p.is_empty() && p.bytes().all(|b| b.is_ascii_digit()) => {
                (h, p.parse::<u16>().ok())
            }
            _ => (authority, None),
        };
        if host.is_empty() {
            return None;
        }
        let path = if path_part.is_empty() || path_part.starts_with(['?', '#']) {
            "/".to_string()
        } else {
            // Strip the fragment, keep the query.
            path_part.split('#').next().unwrap_or("/").to_string()
        };
        Some(Url {
            scheme: scheme.to_string(),
            host: host.to_ascii_lowercase(),
            port,
            path,
        })
    }

    /// Re-serializes the URL.
    pub fn to_string_full(&self) -> String {
        match self.port {
            Some(p) => format!("{}://{}:{}{}", self.scheme, self.host, p, self.path),
            None => format!("{}://{}{}", self.scheme, self.host, self.path),
        }
    }
}

/// Convenience: the host of an absolute http/https URL, if any.
///
/// ```
/// use squatphi_domain::url::host_of;
/// assert_eq!(host_of("https://paypal.com/signin"), Some("paypal.com".to_string()));
/// assert_eq!(host_of("ftp://nope"), None);
/// ```
pub fn host_of(input: &str) -> Option<String> {
    Url::parse(input).map(|u| u.host)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_basic_urls() {
        let u = Url::parse("http://go-uberfreight.com/driver?src=mail#top").expect("valid");
        assert_eq!(u.scheme, "http");
        assert_eq!(u.host, "go-uberfreight.com");
        assert_eq!(u.port, None);
        assert_eq!(u.path, "/driver?src=mail");
    }

    #[test]
    fn parses_ports() {
        let u = Url::parse("http://localhost:8080/x").expect("valid");
        assert_eq!(u.host, "localhost");
        assert_eq!(u.port, Some(8080));
    }

    #[test]
    fn defaults_path_to_root() {
        assert_eq!(Url::parse("https://a.com").expect("valid").path, "/");
        assert_eq!(Url::parse("https://a.com?q=1").expect("valid").path, "/");
    }

    #[test]
    fn lowercases_host() {
        assert_eq!(
            host_of("http://PayPal.COM/x"),
            Some("paypal.com".to_string())
        );
    }

    #[test]
    fn rejects_non_http() {
        assert_eq!(Url::parse("ftp://x.com"), None);
        assert_eq!(Url::parse("//x.com"), None);
        assert_eq!(Url::parse("/relative/path"), None);
        assert_eq!(Url::parse("http://"), None);
        assert_eq!(Url::parse(""), None);
    }

    #[test]
    fn round_trips() {
        for s in ["http://a.com/", "https://b.org:444/p", "http://c.net/x?y=z"] {
            let u = Url::parse(s).expect("valid");
            assert_eq!(Url::parse(&u.to_string_full()), Some(u));
        }
    }

    #[test]
    fn ipv6ish_garbage_does_not_panic() {
        let _ = Url::parse("http://[::1]:80/");
        let _ = Url::parse("http://:::/");
    }
}
