//! Domain-name substrate for the SquatPhi reproduction.
//!
//! This crate owns everything about domain *names* (not DNS records — see
//! `squatphi-dnswire` / `squatphi-dnsdb` for those):
//!
//! * [`DomainName`] — a validated, lower-cased domain with label access and
//!   registrable-domain ("brand label") extraction,
//! * [`tld`] — a built-in registry of legacy TLDs, ccTLDs, multi-label public
//!   suffixes (`com.ua`, `co.uk`, …) and new gTLDs such as `audi`,
//! * [`punycode`] — a from-scratch RFC 3492 encoder/decoder,
//! * [`idna`] — `xn--`-aware conversions between Unicode and ASCII forms,
//! * [`confusables`] — the homoglyph table used by homograph squatting
//!   (Unicode confusables plus multi-character ASCII look-alikes like
//!   `rn` → `m`),
//! * [`distance`] — Levenshtein / Damerau / bit-flip distances used by the
//!   squatting detector.
//!
//! The paper ("Needle in a Haystack", IMC '18, §3.1) builds its squatting
//! search on exactly these primitives; the upstream tools it extends
//! (DNSTwist, URLCrazy) are reimplemented on top of this crate in
//! `squatphi-squat`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod confusables;
pub mod distance;
pub mod idna;
pub mod name;
pub mod punycode;
pub mod tld;
pub mod url;

pub use confusables::ConfusableTable;
pub use distance::{bit_flip_distance, damerau_levenshtein, hamming, levenshtein};
pub use name::{DomainError, DomainName};
pub use tld::{is_known_tld, split_suffix, TLDS};
