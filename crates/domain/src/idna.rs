//! IDNA-style conversions between Unicode and ASCII domain forms.
//!
//! This is a deliberately small IDNA: it handles the `xn--` ACE prefix and
//! per-label punycode, which is all the homograph-squatting pipeline needs
//! (no nameprep/UTS-46 mapping tables — our inputs are already lower-case).

use crate::punycode::{self, PunycodeError};

/// The ASCII-compatible-encoding prefix from RFC 5890.
pub const ACE_PREFIX: &str = "xn--";

/// Converts a (possibly Unicode) dotted domain into its ASCII form, encoding
/// each non-ASCII label with punycode and the `xn--` prefix.
///
/// ```
/// use squatphi_domain::idna::to_ascii;
/// assert_eq!(to_ascii("fàcebook.com").unwrap(), "xn--fcebook-8va.com");
/// assert_eq!(to_ascii("plain.com").unwrap(), "plain.com");
/// ```
pub fn to_ascii(domain: &str) -> Result<String, PunycodeError> {
    let mut out = Vec::new();
    for label in domain.split('.') {
        if label.is_ascii() {
            out.push(label.to_string());
        } else {
            out.push(format!("{ACE_PREFIX}{}", punycode::encode(label)?));
        }
    }
    Ok(out.join("."))
}

/// Converts an ASCII domain into its Unicode display form, decoding each
/// `xn--` label. Labels that fail to decode are kept verbatim (browsers do
/// the same rather than erroring on display).
///
/// ```
/// use squatphi_domain::idna::to_unicode;
/// assert_eq!(to_unicode("xn--fcebook-8va.com"), "fàcebook.com");
/// assert_eq!(to_unicode("plain.com"), "plain.com");
/// ```
pub fn to_unicode(domain: &str) -> String {
    domain
        .split('.')
        .map(|label| match label.strip_prefix(ACE_PREFIX) {
            Some(rest) => punycode::decode(rest).unwrap_or_else(|_| label.to_string()),
            None => label.to_string(),
        })
        .collect::<Vec<_>>()
        .join(".")
}

/// Whether any label of the ASCII domain is an ACE (`xn--`) label.
pub fn is_idn(domain: &str) -> bool {
    domain.split('.').any(|l| l.starts_with(ACE_PREFIX))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_paper_example() {
        let ascii = to_ascii("fàcebook.com").unwrap();
        assert_eq!(ascii, "xn--fcebook-8va.com");
        assert_eq!(to_unicode(&ascii), "fàcebook.com");
    }

    #[test]
    fn ascii_passthrough() {
        assert_eq!(to_ascii("faceb00k.pw").unwrap(), "faceb00k.pw");
        assert!(!is_idn("faceb00k.pw"));
    }

    #[test]
    fn only_affected_labels_are_encoded() {
        let ascii = to_ascii("mail.gооgle.com").unwrap(); // Cyrillic о
        let parts: Vec<&str> = ascii.split('.').collect();
        assert_eq!(parts[0], "mail");
        assert!(parts[1].starts_with(ACE_PREFIX));
        assert_eq!(parts[2], "com");
        assert!(is_idn(&ascii));
        assert_eq!(to_unicode(&ascii), "mail.gооgle.com");
    }

    #[test]
    fn undecodable_ace_label_kept_verbatim() {
        // "xn--" followed by an invalid digit sequence.
        assert_eq!(to_unicode("xn--!!!.com"), "xn--!!!.com");
    }
}
