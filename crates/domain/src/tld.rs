//! Built-in TLD / public-suffix registry.
//!
//! The ActiveDNS snapshot used by the paper covers COM/NET/ORG plus the long
//! tail of ccTLDs and new gTLDs (the paper's wrongTLD examples include
//! `facebook.audi`, and its detection tables mention domains under `.pw`,
//! `.tk`, `.ml`, `.ga`, `.bid`, `.top`, `.mobi`, `com.ua`, `com.uy` …).
//! A full public-suffix list is overkill for the reproduction; this module
//! embeds the suffixes that actually occur in the paper together with a broad
//! set of common TLDs so the generators and the detector have a realistic
//! alphabet to draw from.

/// Single-label TLDs known to the registry, sorted for binary search.
///
/// Mix of legacy gTLDs, ccTLDs seen in the paper's examples, and new gTLDs
/// used by wrongTLD squatting.
pub const TLDS: &[&str] = &[
    "app", "audi", "be", "bid", "biz", "br", "ca", "cc", "ch", "click", "club", "cn", "co", "com",
    "de", "download", "es", "eu", "fr", "ga", "gov", "gq", "icu", "id", "ie", "in", "info", "io",
    "it", "jp", "kr", "link", "live", "ml", "mobi", "net", "nl", "nu", "online", "org", "pl",
    "pro", "pw", "ru", "se", "shop", "site", "store", "tech", "tk", "top", "tv", "ua", "uk", "us",
    "uy", "vip", "win", "xyz",
];

/// Multi-label public suffixes (most-specific first match wins).
pub const MULTI_SUFFIXES: &[&str] = &[
    "co.uk", "org.uk", "com.ua", "com.uy", "com.br", "com.cn", "co.jp", "co.kr", "co.in", "com.au",
    "net.ua", "gov.uk",
];

/// TLDs that are plausible *wrongTLD* substitution targets — the subset an
/// attacker can actually register under cheaply (the paper's Fig 2 finds
/// 39K wrongTLD domains, mostly under new gTLDs and free ccTLDs).
pub const WRONG_TLD_POOL: &[&str] = &[
    "audi", "bid", "click", "club", "download", "ga", "gq", "icu", "link", "live", "ml", "mobi",
    "net", "online", "org", "pw", "shop", "site", "store", "tech", "tk", "top", "vip", "win",
    "xyz",
];

/// Returns `true` if `s` (no dots) is a known single-label TLD.
///
/// A `matches!` rather than `TLDS.binary_search`: the compiler lowers the
/// literal list to a length-switch plus short memcmps, which beats six
/// pointer-chasing string comparisons on the parse hot path. A test pins
/// this list to [`TLDS`].
pub fn is_known_tld(s: &str) -> bool {
    matches!(
        s,
        "app"
            | "audi"
            | "be"
            | "bid"
            | "biz"
            | "br"
            | "ca"
            | "cc"
            | "ch"
            | "click"
            | "club"
            | "cn"
            | "co"
            | "com"
            | "de"
            | "download"
            | "es"
            | "eu"
            | "fr"
            | "ga"
            | "gov"
            | "gq"
            | "icu"
            | "id"
            | "ie"
            | "in"
            | "info"
            | "io"
            | "it"
            | "jp"
            | "kr"
            | "link"
            | "live"
            | "ml"
            | "mobi"
            | "net"
            | "nl"
            | "nu"
            | "online"
            | "org"
            | "pl"
            | "pro"
            | "pw"
            | "ru"
            | "se"
            | "shop"
            | "site"
            | "store"
            | "tech"
            | "tk"
            | "top"
            | "tv"
            | "ua"
            | "uk"
            | "us"
            | "uy"
            | "vip"
            | "win"
            | "xyz"
    )
}

/// Final labels under which a multi-label suffix can occur (kept in sync
/// with [`MULTI_SUFFIXES`] by a test).
fn is_multi_suffix_last_label(s: &str) -> bool {
    matches!(
        s,
        "uk" | "ua" | "uy" | "br" | "cn" | "jp" | "kr" | "in" | "au"
    )
}

/// Splits a dotted, lower-case domain string into `(prefix, suffix)` where
/// `suffix` is the registered public suffix (multi-label suffixes are
/// preferred over single-label ones). Returns `None` when no known suffix
/// matches or nothing precedes the suffix.
///
/// ```
/// use squatphi_domain::tld::split_suffix;
/// assert_eq!(split_suffix("goofle.com.ua"), Some(("goofle", "com.ua")));
/// assert_eq!(split_suffix("mail.google.com"), Some(("mail.google", "com")));
/// assert_eq!(split_suffix("com"), None);
/// ```
pub fn split_suffix(domain: &str) -> Option<(&str, &str)> {
    let dot = domain.rfind('.');
    let last = &domain[dot.map_or(0, |d| d + 1)..];
    // Every multi-label suffix ends in one of a handful of ccTLDs; when
    // the final label is not one of them (the common case), the whole
    // multi-suffix scan — including the bare-suffix rejection — is dead
    // and the single-label split below suffices.
    if is_multi_suffix_last_label(last) {
        // A bare public suffix (e.g. "com.ua") is not a registrable domain.
        if MULTI_SUFFIXES.contains(&domain) {
            return None;
        }
        for suffix in MULTI_SUFFIXES {
            if let Some(prefix) = domain.strip_suffix(suffix) {
                if let Some(prefix) = prefix.strip_suffix('.') {
                    if !prefix.is_empty() {
                        return Some((prefix, suffix));
                    }
                }
            }
        }
    }
    let dot = dot?;
    let (prefix, tld) = (&domain[..dot], &domain[dot + 1..]);
    if prefix.is_empty() || !is_known_tld(tld) {
        return None;
    }
    Some((prefix, tld))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tld_table_is_sorted_and_unique() {
        let mut sorted = TLDS.to_vec();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(
            sorted, TLDS,
            "TLDS must stay sorted/unique for binary search"
        );
    }

    #[test]
    fn is_known_tld_matches_table_exactly() {
        // The `matches!` decision tree and the TLDS table must stay in
        // lock-step: every table entry resolves, and probing each entry's
        // neighbors catches a stray arm that isn't in the table.
        for t in TLDS {
            assert!(is_known_tld(t), "{t} in TLDS but not in is_known_tld");
        }
        for t in TLDS {
            let longer = format!("{t}x");
            assert!(!is_known_tld(&longer), "{longer} wrongly accepted");
        }
    }

    #[test]
    fn known_tlds_resolve() {
        for t in ["com", "audi", "tk", "ua"] {
            assert!(is_known_tld(t), "{t} should be known");
        }
        assert!(!is_known_tld("notatld"));
        assert!(!is_known_tld(""));
    }

    #[test]
    fn multi_suffix_shortcut_covers_every_last_label() {
        for s in MULTI_SUFFIXES {
            let last = s.rsplit('.').next().unwrap();
            assert!(
                is_multi_suffix_last_label(last),
                "{s}: final label {last} missing from the split_suffix shortcut"
            );
        }
    }

    #[test]
    fn multi_label_suffix_preferred() {
        assert_eq!(split_suffix("goofle.com.ua"), Some(("goofle", "com.ua")));
        assert_eq!(split_suffix("gooogle.com.uy"), Some(("gooogle", "com.uy")));
        assert_eq!(split_suffix("bbc.co.uk"), Some(("bbc", "co.uk")));
    }

    #[test]
    fn single_label_suffix() {
        assert_eq!(split_suffix("facebook.audi"), Some(("facebook", "audi")));
        assert_eq!(split_suffix("faceb00k.pw"), Some(("faceb00k", "pw")));
    }

    #[test]
    fn subdomains_stay_in_prefix() {
        assert_eq!(
            split_suffix("mail.google-app.de"),
            Some(("mail.google-app", "de"))
        );
    }

    #[test]
    fn rejects_bare_or_unknown_suffix() {
        assert_eq!(split_suffix("com"), None);
        assert_eq!(split_suffix("com.ua"), None);
        assert_eq!(split_suffix("example.notatld"), None);
        assert_eq!(split_suffix(""), None);
        assert_eq!(split_suffix(".com"), None);
    }

    #[test]
    fn wrong_tld_pool_members_are_known() {
        for t in WRONG_TLD_POOL {
            assert!(is_known_tld(t), "{t} in WRONG_TLD_POOL but not in TLDS");
        }
    }
}
