//! Homoglyph (confusables) table.
//!
//! The paper points out that DNSTwist maps only a fraction of the Unicode
//! confusables (13 of 23 for the letter `a`) and builds a more complete
//! table from the Unicode consortium's `confusablesSummary.txt`. This module
//! embeds a table with the same structure: for each ASCII letter/digit, a
//! set of look-alike *single* Unicode characters plus multi-character ASCII
//! sequences (`rn` → `m`, `vv` → `w`, `cl` → `d` …) and ASCII digit/letter
//! swaps (`0` ↔ `o`, `1` ↔ `l`).

/// Confusable substitutions for one ASCII source character.
#[derive(Debug, Clone)]
pub struct ConfusableEntry {
    /// The ASCII character being imitated.
    pub source: char,
    /// Unicode characters that render like `source`.
    pub unicode: &'static [char],
    /// Pure-ASCII look-alikes (single char), e.g. `0` for `o`.
    pub ascii: &'static [char],
    /// Multi-character ASCII sequences that render like `source`.
    pub sequences: &'static [&'static str],
}

/// The embedded confusables table.
///
/// Unicode variants are drawn from the Latin/Greek/Cyrillic blocks that
/// dominate real-world homograph abuse (the full consortium table also maps
/// exotic scripts; those add recall but not behavior, so a representative
/// subset per letter suffices for the reproduction — importantly *more than
/// one* variant per letter, which is the gap the paper calls out).
pub const CONFUSABLES: &[ConfusableEntry] = &[
    ConfusableEntry {
        source: 'a',
        unicode: &[
            'à', 'á', 'â', 'ã', 'ä', 'å', 'ā', 'ă', 'ą', 'α', 'а', 'ạ', 'ả', 'ǎ', 'ȁ', 'ȃ', 'ḁ',
            'ẚ', 'ɑ', 'ά', 'ӑ', 'ӓ', 'ᾳ',
        ],
        ascii: &[],
        sequences: &[],
    },
    ConfusableEntry {
        source: 'b',
        unicode: &['ƀ', 'ḃ', 'ḅ', 'ḇ', 'Ь', 'ƅ', 'ь'],
        ascii: &[],
        sequences: &["lo"],
    },
    ConfusableEntry {
        source: 'c',
        unicode: &['ç', 'ć', 'ĉ', 'ċ', 'č', 'с', 'ϲ', 'ȼ', 'ḉ'],
        ascii: &[],
        sequences: &[],
    },
    ConfusableEntry {
        source: 'd',
        unicode: &['ď', 'đ', 'ḋ', 'ḍ', 'ḏ', 'ḑ', 'ḓ', 'ɗ'],
        ascii: &[],
        sequences: &["cl"],
    },
    ConfusableEntry {
        source: 'e',
        unicode: &[
            'è', 'é', 'ê', 'ë', 'ē', 'ĕ', 'ė', 'ę', 'ě', 'е', 'ε', 'ѐ', 'ё', 'ḕ', 'ḗ', 'ẹ', 'ẻ',
            'ẽ',
        ],
        ascii: &[],
        sequences: &[],
    },
    ConfusableEntry {
        source: 'f',
        unicode: &['ƒ', 'ḟ', 'ꞙ'],
        ascii: &[],
        sequences: &[],
    },
    ConfusableEntry {
        source: 'g',
        unicode: &['ĝ', 'ğ', 'ġ', 'ģ', 'ǵ', 'ɡ', 'ḡ', 'ԍ'],
        ascii: &['q'],
        sequences: &[],
    },
    ConfusableEntry {
        source: 'h',
        unicode: &['ĥ', 'ħ', 'ḣ', 'ḥ', 'ḧ', 'ḩ', 'һ', 'ɦ'],
        ascii: &[],
        sequences: &[],
    },
    ConfusableEntry {
        source: 'i',
        unicode: &[
            'ì', 'í', 'î', 'ï', 'ĩ', 'ī', 'ĭ', 'į', 'ι', 'і', 'ї', 'ɩ', 'ḭ', 'ḯ', 'ỉ', 'ị',
        ],
        ascii: &['1', 'l'],
        sequences: &[],
    },
    ConfusableEntry {
        source: 'j',
        unicode: &['ĵ', 'ϳ', 'ј', 'ɉ'],
        ascii: &[],
        sequences: &[],
    },
    ConfusableEntry {
        source: 'k',
        unicode: &['ķ', 'ǩ', 'ḱ', 'ḳ', 'ḵ', 'κ', 'к'],
        ascii: &[],
        sequences: &["lc"],
    },
    ConfusableEntry {
        source: 'l',
        unicode: &['ĺ', 'ļ', 'ľ', 'ŀ', 'ł', 'ḷ', 'ḹ', 'ḻ', 'ḽ', 'ǀ', 'ӏ'],
        ascii: &['1', 'i'],
        sequences: &[],
    },
    ConfusableEntry {
        source: 'm',
        unicode: &['ḿ', 'ṁ', 'ṃ', 'м', 'ɱ'],
        ascii: &[],
        sequences: &["rn", "nn"],
    },
    ConfusableEntry {
        source: 'n',
        unicode: &['ñ', 'ń', 'ņ', 'ň', 'ǹ', 'ṅ', 'ṇ', 'ṉ', 'ṋ', 'п', 'η'],
        ascii: &[],
        sequences: &[],
    },
    ConfusableEntry {
        source: 'o',
        unicode: &[
            'ò', 'ó', 'ô', 'õ', 'ö', 'ø', 'ō', 'ŏ', 'ő', 'ο', 'о', 'σ', 'ѳ', 'ṍ', 'ṏ', 'ṑ', 'ṓ',
            'ọ', 'ỏ',
        ],
        ascii: &['0'],
        sequences: &[],
    },
    ConfusableEntry {
        source: 'p',
        unicode: &['ṕ', 'ṗ', 'ρ', 'р', 'ƥ'],
        ascii: &[],
        sequences: &[],
    },
    ConfusableEntry {
        source: 'q',
        unicode: &['ʠ', 'ԛ'],
        ascii: &['g'],
        sequences: &[],
    },
    ConfusableEntry {
        source: 'r',
        unicode: &['ŕ', 'ŗ', 'ř', 'ȑ', 'ȓ', 'ṙ', 'ṛ', 'ṝ', 'ṟ', 'г'],
        ascii: &[],
        sequences: &[],
    },
    ConfusableEntry {
        source: 's',
        unicode: &['ś', 'ŝ', 'ş', 'š', 'ș', 'ṡ', 'ṣ', 'ѕ'],
        ascii: &['5'],
        sequences: &[],
    },
    ConfusableEntry {
        source: 't',
        unicode: &['ţ', 'ť', 'ŧ', 'ț', 'ṫ', 'ṭ', 'ṯ', 'ṱ', 'т', 'τ'],
        ascii: &[],
        sequences: &[],
    },
    ConfusableEntry {
        source: 'u',
        unicode: &[
            'ù', 'ú', 'û', 'ü', 'ũ', 'ū', 'ŭ', 'ů', 'ű', 'ų', 'υ', 'ս', 'ṳ', 'ṵ', 'ṷ', 'ụ', 'ủ',
        ],
        ascii: &['v'],
        sequences: &[],
    },
    ConfusableEntry {
        source: 'v',
        unicode: &['ṽ', 'ṿ', 'ν', 'ѵ', 'ʋ'],
        ascii: &['u'],
        sequences: &[],
    },
    ConfusableEntry {
        source: 'w',
        unicode: &['ŵ', 'ẁ', 'ẃ', 'ẅ', 'ẇ', 'ẉ', 'ω', 'ш', 'ѡ'],
        ascii: &[],
        sequences: &["vv"],
    },
    ConfusableEntry {
        source: 'x',
        unicode: &['ẋ', 'ẍ', 'х', 'χ'],
        ascii: &[],
        sequences: &[],
    },
    ConfusableEntry {
        source: 'y',
        unicode: &['ý', 'ÿ', 'ŷ', 'ȳ', 'ẏ', 'ỳ', 'ỵ', 'ỷ', 'ỹ', 'у', 'γ'],
        ascii: &[],
        sequences: &[],
    },
    ConfusableEntry {
        source: 'z',
        unicode: &['ź', 'ż', 'ž', 'ẑ', 'ẓ', 'ẕ', 'ȥ'],
        ascii: &['2'],
        sequences: &[],
    },
    ConfusableEntry {
        source: '0',
        unicode: &['Ο', 'о'],
        ascii: &['o'],
        sequences: &[],
    },
    ConfusableEntry {
        source: '1',
        unicode: &[],
        ascii: &['l', 'i'],
        sequences: &[],
    },
    ConfusableEntry {
        source: '5',
        unicode: &[],
        ascii: &['s'],
        sequences: &[],
    },
];

/// Lookup-oriented view over [`CONFUSABLES`].
///
/// Provides forward lookup (ASCII char → variants) for generation and a
/// *folding* operation (Unicode string → ASCII skeleton) for detection.
#[derive(Debug, Clone)]
pub struct ConfusableTable {
    // Forward index: ASCII byte -> entry index; 255 = none.
    forward: [u8; 128],
}

impl Default for ConfusableTable {
    fn default() -> Self {
        Self::new()
    }
}

impl ConfusableTable {
    /// Builds the lookup structures from the embedded table.
    pub fn new() -> Self {
        let mut forward = [255u8; 128];
        for (i, e) in CONFUSABLES.iter().enumerate() {
            forward[e.source as usize] = i as u8;
        }
        ConfusableTable { forward }
    }

    /// All confusable variants of an ASCII character: Unicode look-alikes
    /// followed by single-char ASCII look-alikes.
    pub fn variants(&self, c: char) -> impl Iterator<Item = char> + '_ {
        let entry = self.entry(c);
        entry
            .map(|e| e.unicode.iter().chain(e.ascii.iter()).copied())
            .into_iter()
            .flatten()
    }

    /// Multi-character ASCII sequences that imitate `c` (e.g. `rn` for `m`).
    pub fn sequences(&self, c: char) -> &'static [&'static str] {
        self.entry(c).map(|e| e.sequences).unwrap_or(&[])
    }

    /// Number of variants known for `c` (used by coverage tests and the
    /// generator's budget logic).
    pub fn variant_count(&self, c: char) -> usize {
        self.entry(c)
            .map(|e| e.unicode.len() + e.ascii.len())
            .unwrap_or(0)
    }

    fn entry(&self, c: char) -> Option<&'static ConfusableEntry> {
        if !c.is_ascii() {
            return None;
        }
        match self.forward[c as usize] {
            255 => None,
            i => Some(&CONFUSABLES[i as usize]),
        }
    }

    /// The ASCII half of the skeleton fold: digit/letter swaps where the
    /// digit imitates a letter (`0`→`o`, `5`→`s`); every other ASCII byte is
    /// kept as-is. Exposed so callers folding a known-ASCII label can do so
    /// byte-wise into a stack buffer instead of allocating via [`skeleton`].
    ///
    /// [`skeleton`]: Self::skeleton
    #[inline]
    pub fn ascii_fold_byte(b: u8) -> u8 {
        match b {
            b'0' => b'o',
            b'5' => b's',
            _ => b,
        }
    }

    /// The *canonical* ASCII fold: maps every member of a mutually
    /// confusable ASCII glyph class (`{0,o}`, `{5,s}`, `{1,i,l}`, `{g,q}`,
    /// `{u,v}`, `{2,z}`) to a single representative. Two ASCII labels are
    /// single-character-swap homographs of each other **iff** their
    /// canonical folds are byte-equal, which lets the detector resolve any
    /// number of ambiguous swaps (`a11iancebank`, `bloqqer`) — and brands
    /// whose own labels contain confusable glyphs — with one hash probe
    /// against a canonically-keyed index. Unlike [`ascii_fold_byte`] the
    /// output rewrites the letters of each class too, so it is a comparison
    /// key, never a display string.
    ///
    /// [`ascii_fold_byte`]: Self::ascii_fold_byte
    #[inline]
    pub fn canonical_fold_byte(b: u8) -> u8 {
        match b {
            b'0' => b'o',
            b'5' => b's',
            b'1' | b'i' => b'l',
            b'q' => b'g',
            b'v' => b'u',
            b'2' => b'z',
            _ => b,
        }
    }

    /// Folds a (possibly Unicode) label to its ASCII *skeleton*: every
    /// confusable character is replaced by the ASCII character it imitates.
    /// Multi-char sequences are **not** folded here (that is a separate,
    /// quadratic pass done by the detector only for near-miss candidates).
    ///
    /// ```
    /// use squatphi_domain::ConfusableTable;
    /// let t = ConfusableTable::new();
    /// assert_eq!(t.skeleton("fàcebook"), "facebook");
    /// assert_eq!(t.skeleton("faceb00k"), "facebook");
    /// assert_eq!(t.skeleton("plain"), "plain");
    /// ```
    pub fn skeleton(&self, label: &str) -> String {
        let mut out = String::with_capacity(label.len());
        'chars: for c in label.chars() {
            if c.is_ascii() {
                out.push(Self::ascii_fold_byte(c as u8) as char);
                continue;
            }
            for e in CONFUSABLES {
                if e.unicode.contains(&c) {
                    out.push(e.source);
                    continue 'chars;
                }
            }
            out.push(c); // unknown non-ASCII: keep, detector will reject
        }
        out
    }

    /// Whether the label contains at least one non-source character that
    /// folds back to ASCII (i.e. the label is a *candidate* homograph).
    pub fn has_confusable(&self, label: &str) -> bool {
        label
            .chars()
            .any(|c| !c.is_ascii() && CONFUSABLES.iter().any(|e| e.unicode.contains(&c)))
            || label.contains('0')
            || label.contains('5')
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn a_has_at_least_23_unicode_variants() {
        // The paper: "there are 23 different unicode characters that look
        // similar to the letter a, but DNSTwist only catches 13 of them."
        let t = ConfusableTable::new();
        let count = CONFUSABLES[0].unicode.len();
        assert_eq!(CONFUSABLES[0].source, 'a');
        assert!(count >= 23, "need >= 23 variants for 'a', have {count}");
        assert!(t.variant_count('a') >= 23);
    }

    #[test]
    fn every_letter_has_variants() {
        let t = ConfusableTable::new();
        for c in 'a'..='z' {
            assert!(
                t.variant_count(c) + t.sequences(c).len() > 0,
                "letter {c} has no confusables"
            );
        }
    }

    #[test]
    fn skeleton_folds_paper_examples() {
        let t = ConfusableTable::new();
        assert_eq!(t.skeleton("fàcebook"), "facebook");
        assert_eq!(t.skeleton("faceb00k"), "facebook");
        assert_eq!(t.skeleton("facebooκ"), "facebook");
        assert_eq!(t.skeleton("gооgle"), "google"); // Cyrillic о
        assert_eq!(t.skeleton(&"paypaI".to_ascii_lowercase()), "paypai"); // I->i handled by lowering
    }

    #[test]
    fn sequences_cover_rn_for_m() {
        let t = ConfusableTable::new();
        assert!(t.sequences('m').contains(&"rn"));
        assert!(t.sequences('w').contains(&"vv"));
    }

    #[test]
    fn skeleton_keeps_unknown_chars() {
        let t = ConfusableTable::new();
        assert_eq!(t.skeleton("漢字"), "漢字");
    }

    #[test]
    fn has_confusable_detects_candidates() {
        let t = ConfusableTable::new();
        assert!(t.has_confusable("fàcebook"));
        assert!(t.has_confusable("faceb00k"));
        assert!(!t.has_confusable("facebook"));
    }

    #[test]
    fn variants_iterator_matches_count() {
        let t = ConfusableTable::new();
        for c in 'a'..='z' {
            assert_eq!(t.variants(c).count(), t.variant_count(c));
        }
    }

    #[test]
    fn canonical_fold_is_idempotent_and_unifies_classes() {
        for b in 0u8..128 {
            let once = ConfusableTable::canonical_fold_byte(b);
            assert_eq!(once, ConfusableTable::canonical_fold_byte(once));
        }
        // Every mutually-confusable class collapses to one representative.
        for class in [&b"0o"[..], b"5s", b"1il", b"qg", b"uv", b"2z"] {
            let rep = ConfusableTable::canonical_fold_byte(class[0]);
            for &b in class {
                assert_eq!(ConfusableTable::canonical_fold_byte(b), rep);
            }
        }
    }

    #[test]
    fn no_source_appears_in_own_variants() {
        for e in CONFUSABLES {
            assert!(!e.unicode.contains(&e.source));
            assert!(!e.ascii.contains(&e.source));
        }
    }
}
