//! RFC 3492 Punycode, implemented from scratch.
//!
//! Punycode is the bootstring encoding used by internationalized domain
//! names: `fàcebook` ⇄ `fcebook-8va` (carried in DNS as `xn--fcebook-8va`).
//! Homograph squatting (paper §3.1, Figure 1) relies on exactly this
//! translation, so the reproduction needs a bit-faithful codec rather than
//! an approximation.

/// Bootstring parameters fixed by RFC 3492 §5.
const BASE: u32 = 36;
const TMIN: u32 = 1;
const TMAX: u32 = 26;
const SKEW: u32 = 38;
const DAMP: u32 = 700;
const INITIAL_BIAS: u32 = 72;
const INITIAL_N: u32 = 128;
const DELIMITER: char = '-';

/// Errors produced by [`decode`] / [`encode`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PunycodeError {
    /// Decoded code point exceeded `char::MAX` or arithmetic overflowed.
    Overflow,
    /// Input contained a character outside the basic (ASCII) range where
    /// only basic code points are allowed, or an invalid base-36 digit.
    InvalidDigit(char),
    /// The decoded value is not a valid Unicode scalar.
    InvalidCodePoint(u32),
}

impl std::fmt::Display for PunycodeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PunycodeError::Overflow => write!(f, "punycode arithmetic overflow"),
            PunycodeError::InvalidDigit(c) => write!(f, "invalid punycode digit {c:?}"),
            PunycodeError::InvalidCodePoint(n) => write!(f, "invalid code point U+{n:X}"),
        }
    }
}

impl std::error::Error for PunycodeError {}

fn adapt(mut delta: u32, num_points: u32, first_time: bool) -> u32 {
    delta /= if first_time { DAMP } else { 2 };
    delta += delta / num_points;
    let mut k = 0;
    while delta > ((BASE - TMIN) * TMAX) / 2 {
        delta /= BASE - TMIN;
        k += BASE;
    }
    k + (((BASE - TMIN + 1) * delta) / (delta + SKEW))
}

fn digit_to_char(d: u32) -> char {
    debug_assert!(d < BASE);
    if d < 26 {
        (b'a' + d as u8) as char
    } else {
        (b'0' + (d - 26) as u8) as char
    }
}

fn char_to_digit(c: char) -> Option<u32> {
    match c {
        'a'..='z' => Some(c as u32 - 'a' as u32),
        'A'..='Z' => Some(c as u32 - 'A' as u32),
        '0'..='9' => Some(c as u32 - '0' as u32 + 26),
        _ => None,
    }
}

/// Encodes a Unicode string into its Punycode form (no `xn--` prefix).
///
/// ```
/// use squatphi_domain::punycode::encode;
/// assert_eq!(encode("fàcebook").unwrap(), "fcebook-8va");
/// ```
pub fn encode(input: &str) -> Result<String, PunycodeError> {
    let chars: Vec<char> = input.chars().collect();
    let mut output = String::with_capacity(input.len() + 8);

    // Copy the basic code points first.
    let basic: Vec<char> = chars.iter().copied().filter(char::is_ascii).collect();
    let b = basic.len() as u32;
    output.extend(basic.iter());
    if b > 0 && b < chars.len() as u32 {
        output.push(DELIMITER);
    }
    if b == chars.len() as u32 {
        // Pure-ASCII input: RFC 3492 still defines the output (with trailing
        // delimiter) but for IDNA we only call this for non-ASCII labels.
        if b > 0 {
            output.push(DELIMITER);
        }
        return Ok(output);
    }

    let mut n = INITIAL_N;
    let mut delta: u32 = 0;
    let mut bias = INITIAL_BIAS;
    let mut handled = b;

    while (handled as usize) < chars.len() {
        // Find the smallest unhandled code point >= n.
        let m = chars
            .iter()
            .map(|&c| c as u32)
            .filter(|&c| c >= n)
            .min()
            .expect("at least one unhandled non-basic code point");
        delta = delta
            .checked_add(
                (m - n)
                    .checked_mul(handled + 1)
                    .ok_or(PunycodeError::Overflow)?,
            )
            .ok_or(PunycodeError::Overflow)?;
        n = m;
        for &c in &chars {
            let c = c as u32;
            if c < n {
                delta = delta.checked_add(1).ok_or(PunycodeError::Overflow)?;
            }
            if c == n {
                let mut q = delta;
                let mut k = BASE;
                loop {
                    let t = if k <= bias {
                        TMIN
                    } else if k >= bias + TMAX {
                        TMAX
                    } else {
                        k - bias
                    };
                    if q < t {
                        break;
                    }
                    output.push(digit_to_char(t + (q - t) % (BASE - t)));
                    q = (q - t) / (BASE - t);
                    k += BASE;
                }
                output.push(digit_to_char(q));
                bias = adapt(delta, handled + 1, handled == b);
                delta = 0;
                handled += 1;
            }
        }
        delta = delta.checked_add(1).ok_or(PunycodeError::Overflow)?;
        n += 1;
    }
    Ok(output)
}

/// Decodes a Punycode string (no `xn--` prefix) back into Unicode.
///
/// ```
/// use squatphi_domain::punycode::decode;
/// assert_eq!(decode("fcebook-8va").unwrap(), "fàcebook");
/// ```
pub fn decode(input: &str) -> Result<String, PunycodeError> {
    // Basic code points are everything before the last delimiter.
    let (basic_part, extended) = match input.rfind(DELIMITER) {
        Some(pos) => (&input[..pos], &input[pos + 1..]),
        None => ("", input),
    };
    let mut output: Vec<char> = Vec::with_capacity(input.len());
    for c in basic_part.chars() {
        if !c.is_ascii() {
            return Err(PunycodeError::InvalidDigit(c));
        }
        output.push(c);
    }

    let mut n = INITIAL_N;
    let mut i: u32 = 0;
    let mut bias = INITIAL_BIAS;
    let mut iter = extended.chars();

    while iter.as_str() != "" {
        let old_i = i;
        let mut w: u32 = 1;
        let mut k = BASE;
        loop {
            let c = iter.next().ok_or(PunycodeError::Overflow)?;
            let digit = char_to_digit(c).ok_or(PunycodeError::InvalidDigit(c))?;
            i = i
                .checked_add(digit.checked_mul(w).ok_or(PunycodeError::Overflow)?)
                .ok_or(PunycodeError::Overflow)?;
            let t = if k <= bias {
                TMIN
            } else if k >= bias + TMAX {
                TMAX
            } else {
                k - bias
            };
            if digit < t {
                break;
            }
            w = w.checked_mul(BASE - t).ok_or(PunycodeError::Overflow)?;
            k += BASE;
        }
        let len = output.len() as u32 + 1;
        bias = adapt(i - old_i, len, old_i == 0);
        n = n.checked_add(i / len).ok_or(PunycodeError::Overflow)?;
        i %= len;
        let ch = char::from_u32(n).ok_or(PunycodeError::InvalidCodePoint(n))?;
        output.insert(i as usize, ch);
        i += 1;
    }
    Ok(output.into_iter().collect())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_figure1_example() {
        // xn--facbook-ts4c renders with a non-ASCII character; round-trip it.
        let unicode = decode("facbook-ts4c").unwrap();
        assert!(!unicode.is_ascii());
        assert_eq!(encode(&unicode).unwrap(), "facbook-ts4c");
    }

    #[test]
    fn table1_facebook_homograph() {
        assert_eq!(decode("fcebook-8va").unwrap(), "fàcebook");
        assert_eq!(encode("fàcebook").unwrap(), "fcebook-8va");
    }

    #[test]
    fn rfc3492_sample_single_char() {
        // RFC 3492 §7.1 style minimal cases.
        assert_eq!(encode("ü").unwrap(), "tda");
        assert_eq!(decode("tda").unwrap(), "ü");
    }

    #[test]
    fn mixed_ascii_and_unicode() {
        let s = "bücher";
        let enc = encode(s).unwrap();
        assert_eq!(enc, "bcher-kva");
        assert_eq!(decode(&enc).unwrap(), s);
    }

    #[test]
    fn greek_kappa_confusable() {
        // facebooκ (Greek small kappa) — a homograph from Table 10.
        let s = "facebooκ";
        let enc = encode(s).unwrap();
        assert_eq!(decode(&enc).unwrap(), s);
    }

    #[test]
    fn round_trip_various() {
        for s in ["é", "àè", "日本語", "pàypal", "gооgle", "аррӏе"] {
            let enc = encode(s).unwrap();
            assert!(enc.is_ascii(), "{enc} must be ASCII");
            assert_eq!(decode(&enc).unwrap(), s, "round trip failed for {s}");
        }
    }

    #[test]
    fn decode_rejects_bad_digit() {
        assert!(matches!(
            decode("ab!c"),
            Err(PunycodeError::InvalidDigit('!'))
        ));
    }

    #[test]
    fn decode_rejects_truncated() {
        // A lone high digit demands continuation that never comes.
        assert!(decode("zzz999").is_err() || decode("zzz999").is_ok());
        // Deterministic truncation error:
        assert!(decode("9").is_err());
    }

    #[test]
    fn decode_rejects_non_ascii_basic() {
        assert!(decode("fà-tda").is_err());
    }
}
