//! String distances used by squatting detection.

/// Classic Levenshtein edit distance (insert / delete / substitute, unit
/// cost) over Unicode scalars, O(|a|·|b|) time, O(min) space.
///
/// ```
/// use squatphi_domain::distance::levenshtein;
/// assert_eq!(levenshtein("facebook", "facebok"), 1);
/// assert_eq!(levenshtein("kitten", "sitting"), 3);
/// ```
pub fn levenshtein(a: &str, b: &str) -> usize {
    let a: Vec<char> = a.chars().collect();
    let b: Vec<char> = b.chars().collect();
    if a.is_empty() {
        return b.len();
    }
    if b.is_empty() {
        return a.len();
    }
    let mut prev: Vec<usize> = (0..=b.len()).collect();
    let mut cur = vec![0usize; b.len() + 1];
    for (i, &ca) in a.iter().enumerate() {
        cur[0] = i + 1;
        for (j, &cb) in b.iter().enumerate() {
            let cost = usize::from(ca != cb);
            cur[j + 1] = (prev[j] + cost).min(prev[j + 1] + 1).min(cur[j] + 1);
        }
        std::mem::swap(&mut prev, &mut cur);
    }
    prev[b.len()]
}

/// Damerau–Levenshtein distance (restricted: adjacent transposition counts
/// as one edit). Typo squatting's *vowel swap / reorder* operation is one
/// Damerau edit but two Levenshtein edits, so the detector uses this.
///
/// ```
/// use squatphi_domain::distance::damerau_levenshtein;
/// assert_eq!(damerau_levenshtein("fcaebook", "facebook"), 1);
/// assert_eq!(damerau_levenshtein("facebook", "facebook"), 0);
/// ```
pub fn damerau_levenshtein(a: &str, b: &str) -> usize {
    let a: Vec<char> = a.chars().collect();
    let b: Vec<char> = b.chars().collect();
    let (n, m) = (a.len(), b.len());
    if n == 0 {
        return m;
    }
    if m == 0 {
        return n;
    }
    let mut d = vec![vec![0usize; m + 1]; n + 1];
    for (i, row) in d.iter_mut().enumerate() {
        row[0] = i;
    }
    for (j, cell) in d[0].iter_mut().enumerate() {
        *cell = j;
    }
    for i in 1..=n {
        for j in 1..=m {
            let cost = usize::from(a[i - 1] != b[j - 1]);
            let mut best = (d[i - 1][j] + 1)
                .min(d[i][j - 1] + 1)
                .min(d[i - 1][j - 1] + cost);
            if i > 1 && j > 1 && a[i - 1] == b[j - 2] && a[i - 2] == b[j - 1] {
                best = best.min(d[i - 2][j - 2] + 1);
            }
            d[i][j] = best;
        }
    }
    d[n][m]
}

/// Hamming distance between equal-length **ASCII** strings; `None` if the
/// lengths differ or either input contains a non-ASCII byte.
///
/// The comparison is byte-wise, which only equals the per-character
/// distance for ASCII: on multibyte UTF-8 a single differing *character*
/// spans several differing *bytes*, so rather than return a misleading
/// count the function rejects non-ASCII input outright. Callers comparing
/// IDN labels must compare their punycode (`xn--…`) wire forms, which are
/// ASCII by construction.
///
/// ```
/// use squatphi_domain::distance::hamming;
/// assert_eq!(hamming("abc", "abd"), Some(1));
/// assert_eq!(hamming("fàce", "face"), None); // non-ASCII is rejected
/// ```
pub fn hamming(a: &str, b: &str) -> Option<usize> {
    if a.len() != b.len() || !a.is_ascii() || !b.is_ascii() {
        return None;
    }
    Some(a.bytes().zip(b.bytes()).filter(|(x, y)| x != y).count())
}

/// Bit-flip distance for bitsquatting: if `a` and `b` have equal length and
/// differ in exactly one byte, returns the number of differing *bits* in
/// that byte when it equals 1 — i.e. `Some(1)` exactly when `b` is a single
/// one-bit corruption of `a`. Returns `Some(0)` for identical strings and
/// `None` otherwise.
///
/// Like [`hamming`], the contract is **ASCII-only**: bitsquatting models a
/// memory corruption of the ASCII wire form of a label, so non-ASCII input
/// is rejected rather than compared byte-wise (a flipped bit inside a
/// UTF-8 continuation byte is not a DNS-label corruption). IDN labels must
/// be compared in their punycode (`xn--…`) wire form.
///
/// ```
/// use squatphi_domain::distance::bit_flip_distance;
/// // 'o' (0x6f) vs 'n' (0x6e) differ in exactly one bit.
/// assert_eq!(bit_flip_distance("facebook", "facebnok"), Some(1));
/// // 'e' (0x65) vs 'w' (0x77) differ in two bits: not a bitsquat.
/// assert_eq!(bit_flip_distance("google", "googlw"), None);
/// // Non-ASCII input is rejected even when byte lengths happen to match.
/// assert_eq!(bit_flip_distance("fàce", "fàcé"), None);
/// ```
pub fn bit_flip_distance(a: &str, b: &str) -> Option<usize> {
    if a.len() != b.len() || !a.is_ascii() || !b.is_ascii() {
        return None;
    }
    let mut diff_pos = None;
    for (i, (x, y)) in a.bytes().zip(b.bytes()).enumerate() {
        if x != y {
            if diff_pos.is_some() {
                return None; // more than one differing byte
            }
            diff_pos = Some(i);
        }
    }
    match diff_pos {
        None => Some(0),
        Some(i) => {
            let x = a.as_bytes()[i];
            let y = b.as_bytes()[i];
            let bits = (x ^ y).count_ones() as usize;
            if bits == 1 {
                Some(1)
            } else {
                None
            }
        }
    }
}

/// Whether `b` is exactly one one-bit flip away from `a` (both valid-label
/// ASCII, same length).
pub fn is_one_bit_flip(a: &str, b: &str) -> bool {
    bit_flip_distance(a, b) == Some(1)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn levenshtein_basics() {
        assert_eq!(levenshtein("", ""), 0);
        assert_eq!(levenshtein("abc", ""), 3);
        assert_eq!(levenshtein("", "abc"), 3);
        assert_eq!(levenshtein("abc", "abc"), 0);
        assert_eq!(levenshtein("facebook", "facebok"), 1); // omission
        assert_eq!(levenshtein("facebook", "faceboook"), 1); // repetition
        assert_eq!(levenshtein("facebook", "facebo0ok"), 1); // insertion
        assert_eq!(levenshtein("kitten", "sitting"), 3);
    }

    #[test]
    fn levenshtein_is_symmetric() {
        assert_eq!(
            levenshtein("paypal", "paypals"),
            levenshtein("paypals", "paypal")
        );
    }

    #[test]
    fn damerau_counts_swap_as_one() {
        assert_eq!(damerau_levenshtein("fcaebook", "facebook"), 1);
        assert_eq!(levenshtein("fcaebook", "facebook"), 2);
        assert_eq!(damerau_levenshtein("ab", "ba"), 1);
        assert_eq!(damerau_levenshtein("abc", "cab"), 2);
    }

    #[test]
    fn hamming_basics() {
        assert_eq!(hamming("abc", "abd"), Some(1));
        assert_eq!(hamming("abc", "abcd"), None);
        assert_eq!(hamming("", ""), Some(0));
    }

    #[test]
    fn hamming_rejects_non_ascii() {
        // Same byte length (5), one differing character — a byte-wise count
        // would report 2 ('à' vs 'á' differ in both UTF-8 bytes' tails).
        assert_eq!(hamming("fàce", "fáce"), None);
        // Mixed ASCII / non-ASCII operands are rejected on either side.
        assert_eq!(hamming("fàce", "facee"), None);
        assert_eq!(hamming("facee", "fàce"), None);
        // Equal non-ASCII strings are still rejected: the contract is
        // ASCII-only, not "lenient when the answer happens to be 0".
        assert_eq!(hamming("fàce", "fàce"), None);
    }

    #[test]
    fn bit_flip_rejects_non_ascii() {
        // 'à' (C3 A0) vs 'á' (C3 A1): one differing byte, one differing
        // bit — but a continuation-byte flip is not a label corruption.
        assert_eq!(bit_flip_distance("fàce", "fáce"), None);
        assert_eq!(bit_flip_distance("fàce", "fàce"), None);
        assert!(!is_one_bit_flip("fàce", "fáce"));
    }

    #[test]
    fn bit_flip_detects_paper_example() {
        // facebnok: 'o' -> 'n' — 0x6f ^ 0x6e = 0x01, one bit.
        assert!(is_one_bit_flip("facebook", "facebnok"));
        // goofle: 'g' -> 'f'? paper says goofle is bits for google:
        // 'g'(0x67) ^ 'f'(0x66) = 0x01 — one bit.
        assert!(is_one_bit_flip("google", "goofle"));
        // googlw: 'e'(0x65) -> 'w'(0x77) = 0x12, two bits — NOT bitsquat.
        assert!(!is_one_bit_flip("google", "googlw"));
    }

    #[test]
    fn bit_flip_rejects_multi_byte_diff() {
        assert_eq!(bit_flip_distance("facebook", "facebnnk"), None);
        assert_eq!(bit_flip_distance("abc", "abcd"), None);
        assert_eq!(bit_flip_distance("same", "same"), Some(0));
    }
}
