//! Determinism gates for the NN index: identical inputs must leave
//! byte-identical `phash.index.*` telemetry behind, on both query paths.
//! Counter totals are part of the index's observable contract (the
//! conformance oracle audits them), so bucket traversal order, fallback
//! decisions and probe accounting may not depend on anything but the
//! insert/query sequence.

use squatphi_imghash::index::HashIndex;
use squatphi_imghash::ImageHash;

/// A seeded corpus mixing the MIH fast path (well-spread hashes) with a
/// bucket-flooding run of duplicates that forces the BK-tree fallback.
fn corpus() -> Vec<ImageHash> {
    let mut out: Vec<ImageHash> = (0..600u64)
        .map(|i| ImageHash(i.wrapping_mul(0x9E37_79B9_7F4A_7C15)))
        .collect();
    out.extend(std::iter::repeat_n(ImageHash(0xDEAD_BEEF), 400));
    out
}

/// One full insert + query workload; returns the rendered snapshot.
fn run_workload() -> String {
    let index = HashIndex::from_hashes(corpus());
    for i in 0..50u64 {
        let q = ImageHash(i.wrapping_mul(0x2545_F491_4F6C_DD1D));
        index.within(&q, (i % 17) as u32);
        index.nearest(&q, (i % 7) as usize);
    }
    index.within(&ImageHash(0xDEAD_BEEF), 2); // BK fallback
    index.telemetry().snapshot().render()
}

#[test]
fn telemetry_snapshot_is_byte_identical_across_runs() {
    let a = run_workload();
    let b = run_workload();
    assert_eq!(a, b, "two identical workloads rendered different telemetry");
    // The render must actually carry the index scope (not compare two
    // vacuously empty snapshots). Renders are nested JSON, so check the
    // scope keys and every leaf counter name.
    for key in [
        "\"phash\"",
        "\"index\"",
        "\"inserts\"",
        "\"queries\"",
        "\"probes\"",
        "\"bucket_hits\"",
        "\"verified\"",
        "\"pruned\"",
        "\"fallbacks\"",
    ] {
        assert!(a.contains(key), "snapshot render missing {key}:\n{a}");
    }
}

#[test]
fn workload_counters_reconcile() {
    let index = HashIndex::from_hashes(corpus());
    for i in 0..20u64 {
        index.within(&ImageHash(i * 3), (i % 9) as u32);
    }
    let snap = index.telemetry().snapshot();
    assert_eq!(
        snap.u64_or_zero("phash.index.probes"),
        snap.u64_or_zero("phash.index.verified") + snap.u64_or_zero("phash.index.pruned"),
        "probe ledger out of balance"
    );
    assert_eq!(snap.u64_or_zero("phash.index.inserts"), 1000);
    assert_eq!(snap.u64_or_zero("phash.index.queries"), 20);
}
