//! Property-based tests for the Hamming-space NN index ([`squatphi_imghash::index`]).
//!
//! Three families: metric axioms on the one shared distance path
//! ([`hamming64`]), insert/query round-trips on [`HashIndex`], and the
//! index-vs-linear differential that pins every lookup to the preserved
//! [`linear`] oracle (the conformance `phash-index` oracle covers the same
//! contract at scale; this suite covers it under shrunk random inputs).

use proptest::prelude::*;
use squatphi_imghash::index::{linear, HashIndex};
use squatphi_imghash::{hamming64, ImageHash};

/// The checked-in `properties.proptest-regressions` must actually be found
/// and parsed by the runner — a silently-missing regression file would
/// quietly stop replaying known-bad inputs.
#[test]
fn regression_file_is_loaded() {
    let seeds = proptest::regressions::load_for_source(file!(), env!("CARGO_MANIFEST_DIR"));
    assert!(
        !seeds.is_empty(),
        "crates/imghash/tests/properties.proptest-regressions exists but no seeds were loaded"
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(160))]

    // ---- metric axioms -----------------------------------------------------

    #[test]
    fn hamming_is_a_metric(a in any::<u64>(), b in any::<u64>(), c in any::<u64>()) {
        prop_assert_eq!(hamming64(a, b), hamming64(b, a), "symmetry");
        prop_assert_eq!(hamming64(a, a), 0, "identity");
        if a != b {
            prop_assert!(hamming64(a, b) > 0, "distinct hashes at distance 0");
        }
        prop_assert!(hamming64(a, b) <= 64, "distance exceeds word width");
        prop_assert!(
            hamming64(a, c) <= hamming64(a, b) + hamming64(b, c),
            "triangle inequality violated"
        );
    }

    #[test]
    fn image_hash_distance_is_the_shared_path(a in any::<u64>(), b in any::<u64>()) {
        // `ImageHash::distance`, `from_bits`/`to_bits` and the free function
        // must all agree — there is exactly one distance implementation.
        let (ha, hb) = (ImageHash::from_bits(a), ImageHash::from_bits(b));
        prop_assert_eq!(ha.distance(&hb), hamming64(a, b));
        prop_assert_eq!(ha.to_bits(), a);
    }

    // ---- insert/query round-trip -------------------------------------------

    #[test]
    fn insert_query_round_trips(bits in proptest::collection::vec(any::<u64>(), 1..40)) {
        let mut index = HashIndex::new();
        let ids: Vec<u32> = bits.iter().map(|&b| index.insert(ImageHash(b))).collect();
        prop_assert_eq!(index.len(), bits.len());
        for (i, (&b, &id)) in bits.iter().zip(&ids).enumerate() {
            prop_assert_eq!(id, i as u32, "ids are dense insertion order");
            prop_assert_eq!(index.get(id), Some(ImageHash(b)));
            // A radius-0 query for a stored hash finds that insert (and only
            // entries carrying the identical hash, all at distance 0).
            let hits = index.within(&ImageHash(b), 0);
            prop_assert!(hits.iter().any(|n| n.id == id), "insert {id} lost");
            for n in &hits {
                prop_assert_eq!(n.hash, ImageHash(b));
                prop_assert_eq!(n.distance, 0);
            }
        }
    }

    // ---- radius monotonicity -----------------------------------------------

    #[test]
    fn radius_growth_only_adds_results(
        bits in proptest::collection::vec(any::<u64>(), 0..48),
        query in any::<u64>(),
        radius in 0u32..64,
    ) {
        let index = HashIndex::from_hashes(bits.iter().copied().map(ImageHash));
        let q = ImageHash(query);
        let smaller = index.within(&q, radius);
        let larger = index.within(&q, radius + 1);
        prop_assert!(smaller.len() <= larger.len());
        // Both lists are ascending by insertion id, so the subset check is a
        // single merge walk.
        let mut it = larger.iter();
        for n in &smaller {
            prop_assert!(n.distance <= radius, "neighbor outside the radius");
            prop_assert!(
                it.any(|m| m == n),
                "within({radius}) result missing from within({})", radius + 1
            );
        }
    }

    // ---- differential vs the linear oracle ---------------------------------

    #[test]
    fn within_matches_linear(
        bits in proptest::collection::vec(any::<u64>(), 0..60),
        query in any::<u64>(),
        radius in 0u32..65,
    ) {
        let corpus: Vec<ImageHash> = bits.iter().copied().map(ImageHash).collect();
        let index = HashIndex::from_hashes(corpus.iter().copied());
        let q = ImageHash(query);
        prop_assert_eq!(index.within(&q, radius), linear::within(&corpus, &q, radius));
    }

    #[test]
    fn nearest_matches_linear(
        bits in proptest::collection::vec(any::<u64>(), 0..60),
        query in any::<u64>(),
        k in 0usize..12,
    ) {
        let corpus: Vec<ImageHash> = bits.iter().copied().map(ImageHash).collect();
        let index = HashIndex::from_hashes(corpus.iter().copied());
        let q = ImageHash(query);
        prop_assert_eq!(index.nearest(&q, k), linear::nearest(&corpus, &q, k));
    }

    #[test]
    fn duplicate_heavy_corpora_stay_exact(
        // Hashes drawn from an 8-value alphabet: floods MIH buckets and
        // forces the BK-tree fallback, which must not change any answer.
        picks in proptest::collection::vec(0u64..8, 1..80),
        query in 0u64..8,
        radius in 0u32..10,
    ) {
        let corpus: Vec<ImageHash> = picks.iter().map(|&p| ImageHash(p)).collect();
        let index = HashIndex::from_hashes(corpus.iter().copied());
        let q = ImageHash(query);
        prop_assert_eq!(index.within(&q, radius), linear::within(&corpus, &q, radius));
        prop_assert_eq!(index.nearest(&q, 5), linear::nearest(&corpus, &q, 5));
        // Conservation must hold no matter which path answered.
        let snap = index.telemetry().snapshot();
        prop_assert_eq!(
            snap.u64_or_zero("phash.index.probes"),
            snap.u64_or_zero("phash.index.verified") + snap.u64_or_zero("phash.index.pruned")
        );
    }
}
