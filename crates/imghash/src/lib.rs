//! Perceptual image hashing (paper §4.2 "Layout Obfuscation").
//!
//! The paper measures layout obfuscation as the Hamming distance between
//! perceptual hashes of the phishing screenshot and the brand's real page
//! (Figures 8-9). This crate implements the three classic hashes from
//! scratch on our [`squatphi_render::Bitmap`]:
//!
//! * [`average_hash`] — 8×8 mean-threshold (64-bit),
//! * [`difference_hash`] — 9×8 horizontal-gradient (64-bit),
//! * [`perceptual_hash`] — 32×32 2-D DCT, top-left 8×8 low-frequency
//!   block thresholded at its median (64-bit).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod index;

use squatphi_render::Bitmap;

/// A 64-bit perceptual hash.
///
/// Ordering is plain `u64` ordering of the raw bits; the index uses it only
/// for deterministic tie-breaking, never as a similarity measure.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ImageHash(pub u64);

/// Hamming distance between two raw 64-bit hash words (0..=64).
///
/// The one shared distance path: [`ImageHash::distance`], [`phash_distance`],
/// the [`index::HashIndex`] verifier and the [`index::linear`] oracle all
/// delegate here, so production and oracle cannot diverge.
pub fn hamming64(a: u64, b: u64) -> u32 {
    (a ^ b).count_ones()
}

impl ImageHash {
    /// Construct a hash from its raw 64-bit word.
    pub fn from_bits(bits: u64) -> ImageHash {
        ImageHash(bits)
    }

    /// The raw 64-bit word.
    pub fn to_bits(self) -> u64 {
        self.0
    }

    /// Hamming distance to another hash (0..=64).
    pub fn distance(&self, other: &ImageHash) -> u32 {
        hamming64(self.0, other.0)
    }
}

impl std::fmt::Display for ImageHash {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{:016x}", self.0)
    }
}

/// 8×8 average hash: each bit is 1 when the cell exceeds the mean.
pub fn average_hash(bmp: &Bitmap) -> ImageHash {
    let small = bmp.resample(8, 8);
    let mean = small.mean();
    let mut bits = 0u64;
    for y in 0..8 {
        for x in 0..8 {
            if small.get(x, y) as f64 > mean {
                bits |= 1 << (y * 8 + x);
            }
        }
    }
    ImageHash(bits)
}

/// 9×8 difference hash: each bit is 1 when a cell is brighter than its
/// right neighbor.
pub fn difference_hash(bmp: &Bitmap) -> ImageHash {
    let small = bmp.resample(9, 8);
    let mut bits = 0u64;
    for y in 0..8 {
        for x in 0..8 {
            if small.get(x, y) > small.get(x + 1, y) {
                bits |= 1 << (y * 8 + x);
            }
        }
    }
    ImageHash(bits)
}

/// 2-D DCT-II of an n×n matrix (naive O(n³), fine for n = 32).
fn dct2d(input: &[f64], n: usize) -> Vec<f64> {
    // Separable: rows then columns.
    let mut rows = vec![0.0; n * n];
    for y in 0..n {
        for u in 0..n {
            let mut sum = 0.0;
            for x in 0..n {
                sum += input[y * n + x]
                    * ((std::f64::consts::PI / n as f64) * (x as f64 + 0.5) * u as f64).cos();
            }
            rows[y * n + u] = sum;
        }
    }
    let mut out = vec![0.0; n * n];
    for u in 0..n {
        for v in 0..n {
            let mut sum = 0.0;
            for y in 0..n {
                sum += rows[y * n + u]
                    * ((std::f64::consts::PI / n as f64) * (y as f64 + 0.5) * v as f64).cos();
            }
            out[v * n + u] = sum;
        }
    }
    out
}

/// 32×32 DCT perceptual hash. Robust to small translations/rescaling;
/// the paper's distances (7 / 24 / 38 for increasingly obfuscated pages)
/// are produced by this family of hashes.
pub fn perceptual_hash(bmp: &Bitmap) -> ImageHash {
    const N: usize = 32;
    let small = bmp.resample(N, N);
    let input: Vec<f64> = small.pixels().iter().map(|&p| p as f64).collect();
    let coeffs = dct2d(&input, N);
    // Top-left 8×8 block, skipping the DC coefficient for the median.
    let mut block = [0.0f64; 64];
    for y in 0..8 {
        for x in 0..8 {
            block[y * 8 + x] = coeffs[y * N + x];
        }
    }
    let mut sorted: Vec<f64> = block[1..].to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("finite DCT coefficients"));
    let median = sorted[sorted.len() / 2];
    let mut bits = 0u64;
    for (i, &c) in block.iter().enumerate() {
        if c > median {
            bits |= 1 << i;
        }
    }
    ImageHash(bits)
}

/// Convenience: pHash distance between two bitmaps.
pub fn phash_distance(a: &Bitmap, b: &Bitmap) -> u32 {
    perceptual_hash(a).distance(&perceptual_hash(b))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn textured(seed: u8) -> Bitmap {
        let mut b = Bitmap::new(64, 64);
        for y in 0..64 {
            for x in 0..64 {
                let v = ((x * 7 + y * 13 + seed as usize * 31) % 256) as u8;
                b.put(x, y, v);
            }
        }
        b
    }

    #[test]
    fn identical_images_distance_zero() {
        let a = textured(1);
        for h in [average_hash(&a), difference_hash(&a), perceptual_hash(&a)] {
            assert_eq!(h.distance(&h), 0);
        }
    }

    #[test]
    fn small_perturbation_small_distance() {
        let a = textured(1);
        let mut b = a.clone();
        b.fill_rect(0, 0, 4, 4, 255); // tiny blotch
        let d = phash_distance(&a, &b);
        assert!(d <= 10, "tiny change moved hash by {d}");
    }

    #[test]
    fn different_textures_large_distance() {
        let mut a = Bitmap::new(64, 64);
        a.fill_rect(0, 0, 32, 64, 255); // left half dark
        let mut b = Bitmap::new(64, 64);
        b.fill_rect(0, 0, 64, 32, 255); // top half dark
        let d = phash_distance(&a, &b);
        assert!(d >= 12, "structurally different images only {d} apart");
    }

    #[test]
    fn phash_robust_to_rescale() {
        let a = textured(3);
        let bigger = a.resample(128, 128);
        let d = perceptual_hash(&a).distance(&perceptual_hash(&bigger));
        assert!(d <= 6, "rescale moved pHash by {d}");
    }

    #[test]
    fn ahash_and_dhash_disagree_with_phash_sometimes() {
        // Not a correctness property, just ensures the three functions are
        // actually distinct computations.
        let a = textured(5);
        let h1 = average_hash(&a).0;
        let h2 = difference_hash(&a).0;
        let h3 = perceptual_hash(&a).0;
        assert!(h1 != h2 || h2 != h3);
    }

    #[test]
    fn display_is_hex() {
        let s = ImageHash(0xDEAD_BEEF).to_string();
        assert_eq!(s, "00000000deadbeef");
    }

    #[test]
    fn from_bits_round_trips_and_orders_by_raw_word() {
        let a = ImageHash::from_bits(0x1);
        let b = ImageHash::from_bits(0x2);
        assert_eq!(a.to_bits(), 0x1);
        assert!(a < b);
        assert_eq!(a.distance(&b), hamming64(0x1, 0x2));
    }

    #[test]
    fn distance_is_symmetric_and_bounded() {
        let a = perceptual_hash(&textured(1));
        let b = perceptual_hash(&textured(9));
        assert_eq!(a.distance(&b), b.distance(&a));
        assert!(a.distance(&b) <= 64);
    }
}
