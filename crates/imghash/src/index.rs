//! Hamming-space nearest-neighbor index over 64-bit perceptual hashes.
//!
//! The paper's visual-similarity defense compares every candidate page
//! against every brand screenshot; done pairwise that is quadratic in the
//! corpus. [`HashIndex`] makes radius and k-NN lookups sub-linear with
//! **multi-index hashing** (Norouzi et al.): each 64-bit hash is split into
//! `m = 4` disjoint 16-bit substrings and inserted into one exact-match
//! bucket table per substring. By the pigeonhole principle, any hash within
//! Hamming distance `r` of a query must agree with the query on at least one
//! substring up to that table's flip *allowance*, for any allowances
//! `a_0..a_3` with `sum(a_t + 1) > r` — so probing each table for every
//! substring value within its allowance of the query's substring yields a
//! complete candidate set, and a full-distance check (through the one
//! shared [`crate::hamming64`] path) filters it exactly. Allowances are
//! distributed unevenly (front-loaded) because `sum(a_t) = r + 1 - m` beats
//! `a_t = floor(r/m)` everywhere: radius 8 probes 188 buckets, not 548.
//!
//! Adversarial corpora (e.g. every hash identical) collapse the bucket
//! tables; when the probed buckets' combined size would rival a linear scan,
//! queries fall back to a **BK-tree** that stores one node per *distinct*
//! hash value (duplicate inserts append to the node's id list), which
//! handles exactly the degenerate distributions that flood MIH buckets.
//!
//! Tie-breaking is deterministic and insertion-order-stable:
//! [`HashIndex::within`] returns neighbors sorted by ascending insertion id,
//! and [`HashIndex::nearest`] sorts by `(distance, insertion id)` before
//! truncating to `k`. The pre-index linear scan is preserved as the
//! [`linear`] oracle — the conformance `phash-index` oracle and the property
//! suite pin the index to it bit-for-bit.

use crate::{hamming64, ImageHash};
use squatphi_telemetry::{Counter, Registry};

/// Number of substrings each hash is split into.
pub const CHUNKS: usize = 4;
/// Bits per substring (`64 / CHUNKS`).
pub const CHUNK_BITS: u32 = 64 / CHUNKS as u32;
const BUCKETS_PER_TABLE: usize = 1 << CHUNK_BITS;

/// A lookup result: the stored hash, its insertion id and its distance to
/// the query. Insertion ids are assigned densely from 0 in [`HashIndex::insert`]
/// order, which is what every tie-break rule keys on.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Neighbor {
    /// Dense insertion id (the value `insert` returned).
    pub id: u32,
    /// The stored hash.
    pub hash: ImageHash,
    /// Hamming distance to the query (0..=64).
    pub distance: u32,
}

/// `phash.index.*` counters, registered in a telemetry [`Registry`] so the
/// `probes == verified + pruned` conservation identity is auditable.
struct IndexCounters {
    inserts: Counter,
    queries: Counter,
    probes: Counter,
    bucket_hits: Counter,
    verified: Counter,
    pruned: Counter,
    fallbacks: Counter,
}

impl IndexCounters {
    fn in_registry(registry: &Registry) -> IndexCounters {
        let scope = registry.scope("phash").scope("index");
        IndexCounters {
            inserts: scope.counter("inserts"),
            queries: scope.counter("queries"),
            probes: scope.counter("probes"),
            bucket_hits: scope.counter("bucket_hits"),
            verified: scope.counter("verified"),
            pruned: scope.counter("pruned"),
            fallbacks: scope.counter("fallbacks"),
        }
    }
}

/// One BK-tree node: a distinct hash value, every insertion id that carries
/// it (ascending, because inserts append), and children keyed by distance.
struct BkNode {
    hash: u64,
    ids: Vec<u32>,
    /// `(distance to this node, child node index)`, in first-seen order.
    /// First-seen order is a function of the insert sequence alone, so
    /// traversal order — and every counter it bumps — is deterministic.
    children: Vec<(u32, u32)>,
}

/// BK-tree over distinct hash values. Kept small on purpose: it exists for
/// the bucket-flooding corpora, not as a general-purpose structure.
#[derive(Default)]
struct BkTree {
    nodes: Vec<BkNode>,
}

impl BkTree {
    fn insert(&mut self, id: u32, hash: u64) {
        if self.nodes.is_empty() {
            self.nodes.push(BkNode {
                hash,
                ids: vec![id],
                children: Vec::new(),
            });
            return;
        }
        let mut at = 0usize;
        loop {
            let d = hamming64(hash, self.nodes[at].hash);
            if d == 0 {
                self.nodes[at].ids.push(id);
                return;
            }
            match self.nodes[at].children.iter().find(|(cd, _)| *cd == d) {
                Some(&(_, child)) => at = child as usize,
                None => {
                    let child = self.nodes.len() as u32;
                    self.nodes.push(BkNode {
                        hash,
                        ids: vec![id],
                        children: Vec::new(),
                    });
                    self.nodes[at].children.push((d, child));
                    return;
                }
            }
        }
    }

    /// All `(id, distance)` pairs within `radius` of `query`, in tree order.
    /// `visit` is called once per node with that node's entry count, so the
    /// caller can account every stored hash as probed exactly once.
    fn within(&self, query: u64, radius: u32, mut visit: impl FnMut(u64, bool)) -> Vec<(u32, u32)> {
        let mut out = Vec::new();
        if self.nodes.is_empty() {
            return out;
        }
        let mut stack = vec![0u32];
        while let Some(at) = stack.pop() {
            let node = &self.nodes[at as usize];
            let d = hamming64(query, node.hash);
            let hit = d <= radius;
            visit(node.ids.len() as u64, hit);
            if hit {
                out.extend(node.ids.iter().map(|&id| (id, d)));
            }
            // Triangle inequality: only children whose edge distance lies in
            // [d - radius, d + radius] can contain results.
            let lo = d.saturating_sub(radius);
            let hi = d + radius;
            for &(cd, child) in node.children.iter().rev() {
                if (lo..=hi).contains(&cd) {
                    stack.push(child);
                }
            }
        }
        out
    }
}

/// Multi-index-hashing nearest-neighbor index with a BK-tree fallback.
///
/// See the [module docs](self) for the layout and tie-break rules. Every
/// query path verifies candidates through [`crate::hamming64`], and results
/// are always set-identical to the [`linear`] oracle.
pub struct HashIndex {
    hashes: Vec<u64>,
    /// `CHUNKS` tables of `2^CHUNK_BITS` buckets, flattened; bucket
    /// `table * BUCKETS_PER_TABLE + substring` holds `(insertion id, hash)`
    /// for every entry whose hash has that exact substring value. Hashes are
    /// stored inline so verification reads each probed bucket sequentially
    /// instead of chasing ids into `hashes` at random.
    buckets: Vec<Vec<(u32, u64)>>,
    bk: BkTree,
    counters: IndexCounters,
    registry: Registry,
}

impl Default for HashIndex {
    fn default() -> HashIndex {
        HashIndex::new()
    }
}

impl std::fmt::Debug for HashIndex {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("HashIndex")
            .field("len", &self.hashes.len())
            .field("bk_nodes", &self.bk.nodes.len())
            .finish()
    }
}

fn chunk_of(hash: u64, table: usize) -> usize {
    ((hash >> (table as u32 * CHUNK_BITS)) & (BUCKETS_PER_TABLE as u64 - 1)) as usize
}

/// Per-table flip allowances for a query radius. The pigeonhole argument
/// only needs the allowances to satisfy `sum(a_t) >= radius + 1 - CHUNKS`:
/// if every table's substring distance exceeded its allowance, the total
/// distance would be at least `sum(a_t + 1) >= radius + 1`. Distributing
/// the slack unevenly (rather than `radius / CHUNKS` everywhere) shrinks
/// the probe set sharply — radius 8 probes 188 buckets instead of 548.
fn allowances(radius: u32) -> [u32; CHUNKS] {
    let base = (radius + 1).saturating_sub(CHUNKS as u32);
    let mut out = [base / CHUNKS as u32; CHUNKS];
    for (t, a) in out.iter_mut().enumerate() {
        if (t as u32) < base % CHUNKS as u32 {
            *a += 1;
        }
    }
    out
}

/// Enumerate every `CHUNK_BITS`-bit value within `flips` bit flips of
/// `base`, in a deterministic order (by flip count, then lexicographic flip
/// positions). Calls `emit` for each value, `base` included.
fn for_each_chunk_within(base: usize, flips: u32, emit: &mut impl FnMut(usize)) {
    fn go(value: usize, start: u32, flips_left: u32, emit: &mut impl FnMut(usize)) {
        emit(value);
        if flips_left == 0 {
            return;
        }
        for bit in start..CHUNK_BITS {
            go(value ^ (1 << bit), bit + 1, flips_left - 1, emit);
        }
    }
    // Enumerating by recursion emits each value exactly once: flip positions
    // are strictly increasing, so no pattern repeats.
    go(base, 0, flips, emit);
}

impl HashIndex {
    /// An index with a private telemetry registry (see [`Self::in_registry`]).
    pub fn new() -> HashIndex {
        HashIndex::in_registry(&Registry::new())
    }

    /// An index whose `phash.index.*` counters live in `registry`, so a
    /// pipeline-wide snapshot carries them alongside every other scope.
    pub fn in_registry(registry: &Registry) -> HashIndex {
        HashIndex {
            hashes: Vec::new(),
            buckets: vec![Vec::new(); CHUNKS * BUCKETS_PER_TABLE],
            bk: BkTree::default(),
            counters: IndexCounters::in_registry(registry),
            registry: registry.clone(),
        }
    }

    /// Build an index over `corpus` in iteration order (ids `0..len`).
    pub fn from_hashes<I: IntoIterator<Item = ImageHash>>(corpus: I) -> HashIndex {
        let mut index = HashIndex::new();
        for hash in corpus {
            index.insert(hash);
        }
        index
    }

    /// The registry holding this index's `phash.index.*` counters.
    pub fn telemetry(&self) -> &Registry {
        &self.registry
    }

    /// Number of stored hashes (duplicates included).
    pub fn len(&self) -> usize {
        self.hashes.len()
    }

    /// True when nothing has been inserted.
    pub fn is_empty(&self) -> bool {
        self.hashes.is_empty()
    }

    /// The hash stored under insertion id `id`.
    pub fn get(&self, id: u32) -> Option<ImageHash> {
        self.hashes.get(id as usize).copied().map(ImageHash)
    }

    /// Insert a hash; returns its dense insertion id. Duplicates are kept —
    /// each insert gets its own id, exactly like pushing onto a `Vec`.
    pub fn insert(&mut self, hash: ImageHash) -> u32 {
        let id = u32::try_from(self.hashes.len()).expect("HashIndex capped at u32 ids");
        self.hashes.push(hash.0);
        for table in 0..CHUNKS {
            self.buckets[table * BUCKETS_PER_TABLE + chunk_of(hash.0, table)].push((id, hash.0));
        }
        self.bk.insert(id, hash.0);
        self.counters.inserts.inc();
        id
    }

    /// The buckets MIH would probe for this query/radius, flattened.
    /// Table order is preserved (all of table 0's patterns, then table
    /// 1's, …) — the first-match attribution in `mih_within` depends on it.
    fn probe_plan(&self, query: u64, allow: &[u32; CHUNKS]) -> Vec<u32> {
        let mut plan = Vec::new();
        for (table, &flips) in allow.iter().enumerate() {
            let base = chunk_of(query, table);
            let offset = table * BUCKETS_PER_TABLE;
            for_each_chunk_within(base, flips, &mut |value| {
                plan.push((offset + value) as u32);
            });
        }
        plan
    }

    /// All stored hashes within Hamming `radius` of `query`, sorted by
    /// ascending insertion id (the documented tie-break for equal hashes).
    pub fn within(&self, query: &ImageHash, radius: u32) -> Vec<Neighbor> {
        self.counters.queries.inc();
        if self.hashes.is_empty() {
            return Vec::new();
        }
        // Radii this wide make MIH unselective (the first table alone
        // would enumerate most of its 2^16 patterns) — skip straight to
        // the BK-tree rather than materialize a near-exhaustive plan.
        if radius >= 2 * CHUNK_BITS {
            self.counters.fallbacks.inc();
            return self.bk_within(query.0, radius);
        }
        let allow = allowances(radius);
        let plan = self.probe_plan(query.0, &allow);
        // Candidate estimate: if the probed buckets collectively rival a
        // linear scan (duplicates flooding one bucket, or a huge radius),
        // the BK-tree's distinct-hash nodes win — take the fallback.
        let estimate: usize = plan
            .iter()
            .map(|&b| self.buckets[b as usize].len())
            .sum::<usize>();
        if estimate >= self.hashes.len() / 2 {
            self.counters.fallbacks.inc();
            return self.bk_within(query.0, radius);
        }
        self.mih_within(query.0, radius, &allow, &plan)
    }

    fn mih_within(
        &self,
        query: u64,
        radius: u32,
        allow: &[u32; CHUNKS],
        plan: &[u32],
    ) -> Vec<Neighbor> {
        // First-match attribution instead of a seen-bitmap: an entry is
        // charged to the *earliest* table whose substring lies within that
        // table's allowance, and skipped (via a cheap substring popcount)
        // everywhere later — so each candidate is verified exactly once and
        // hits need no dedup, only the final sort back to insertion order.
        let mut out = Vec::new();
        let mut bucket_hits = 0u64;
        let mut probes = 0u64;
        let mut verified = 0u64;
        for &bucket in plan {
            let table = bucket as usize / BUCKETS_PER_TABLE;
            let entries = &self.buckets[bucket as usize];
            if !entries.is_empty() {
                bucket_hits += 1;
            }
            'entry: for &(id, hash) in entries {
                for (t, &a) in allow.iter().enumerate().take(table) {
                    let d = (chunk_of(hash, t) ^ chunk_of(query, t)).count_ones();
                    if d <= a {
                        continue 'entry; // already charged to table t
                    }
                }
                probes += 1;
                let distance = hamming64(query, hash);
                if distance <= radius {
                    verified += 1;
                    out.push(Neighbor {
                        id,
                        hash: ImageHash(hash),
                        distance,
                    });
                }
            }
        }
        self.counters.bucket_hits.add(bucket_hits);
        self.counters.probes.add(probes);
        self.counters.verified.add(verified);
        self.counters.pruned.add(probes - verified);
        out.sort_unstable_by_key(|n| n.id);
        out
    }

    fn bk_within(&self, query: u64, radius: u32) -> Vec<Neighbor> {
        let (mut probes, mut verified) = (0u64, 0u64);
        let mut pairs = self.bk.within(query, radius, |entries, hit| {
            probes += entries;
            if hit {
                verified += entries;
            }
        });
        self.counters.probes.add(probes);
        self.counters.verified.add(verified);
        self.counters.pruned.add(probes - verified);
        pairs.sort_unstable_by_key(|&(id, _)| id);
        pairs
            .into_iter()
            .map(|(id, distance)| Neighbor {
                id,
                hash: ImageHash(self.hashes[id as usize]),
                distance,
            })
            .collect()
    }

    /// The `k` nearest stored hashes, sorted by `(distance, insertion id)` —
    /// equal-distance ties always resolve to the earlier insert. Exact: built
    /// on expanding-radius [`Self::within`] calls, never approximate.
    pub fn nearest(&self, query: &ImageHash, k: usize) -> Vec<Neighbor> {
        if k == 0 || self.hashes.is_empty() {
            return Vec::new();
        }
        // Radii land just under each chunk-radius step-up (3, 7, 11, ...),
        // so each expansion buys a strictly larger probe set.
        let mut radius = 0u32;
        loop {
            let mut found = self.within(query, radius);
            if found.len() >= k || radius >= 64 {
                found.sort_unstable_by_key(|n| (n.distance, n.id));
                found.truncate(k);
                return found;
            }
            radius = (radius + CHUNKS as u32).min(64);
        }
    }
}

/// The preserved pre-index linear scan, kept as the differential oracle.
///
/// Shapes match [`HashIndex`] exactly — same [`Neighbor`] type, same
/// tie-break rules — so the conformance oracle compares results verbatim.
pub mod linear {
    use super::Neighbor;
    use crate::{hamming64, ImageHash};

    /// All corpus entries within `radius` of `query`; ids are corpus
    /// positions, output is ascending-id (scan order).
    pub fn within(corpus: &[ImageHash], query: &ImageHash, radius: u32) -> Vec<Neighbor> {
        corpus
            .iter()
            .enumerate()
            .filter_map(|(id, hash)| {
                let distance = hamming64(query.0, hash.0);
                (distance <= radius).then_some(Neighbor {
                    id: id as u32,
                    hash: *hash,
                    distance,
                })
            })
            .collect()
    }

    /// The `k` nearest corpus entries, sorted by `(distance, id)`.
    pub fn nearest(corpus: &[ImageHash], query: &ImageHash, k: usize) -> Vec<Neighbor> {
        let mut all: Vec<Neighbor> = corpus
            .iter()
            .enumerate()
            .map(|(id, hash)| Neighbor {
                id: id as u32,
                hash: *hash,
                distance: hamming64(query.0, hash.0),
            })
            .collect();
        all.sort_by_key(|n| (n.distance, n.id));
        all.truncate(k);
        all
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hashes(bits: &[u64]) -> Vec<ImageHash> {
        bits.iter().copied().map(ImageHash).collect()
    }

    #[test]
    fn within_matches_linear_on_small_corpus() {
        let corpus = hashes(&[0x0, 0x1, 0x3, 0xFF, u64::MAX, 0x8000_0000_0000_0001]);
        let index = HashIndex::from_hashes(corpus.iter().copied());
        for query in &corpus {
            for radius in [0, 1, 2, 8, 33, 64] {
                assert_eq!(
                    index.within(query, radius),
                    linear::within(&corpus, query, radius),
                    "query {query} radius {radius}"
                );
            }
        }
    }

    #[test]
    fn nearest_matches_linear_and_breaks_ties_by_id() {
        // Two entries at identical distance from the query: the earlier
        // insert must win.
        let corpus = hashes(&[0b1000, 0b0001, 0b0010, 0b1111]);
        let index = HashIndex::from_hashes(corpus.iter().copied());
        let query = ImageHash(0);
        for k in 0..=corpus.len() + 1 {
            let got = index.nearest(&query, k);
            assert_eq!(got, linear::nearest(&corpus, &query, k), "k = {k}");
        }
        let top2 = index.nearest(&query, 2);
        assert_eq!(
            (top2[0].id, top2[1].id),
            (0, 1),
            "equal-distance ties must resolve to the earlier insertion id"
        );
    }

    #[test]
    fn duplicate_heavy_corpus_takes_bk_fallback_and_stays_exact() {
        let corpus = vec![ImageHash(0xABCD); 500];
        let index = HashIndex::from_hashes(corpus.iter().copied());
        let got = index.within(&ImageHash(0xABCD), 0);
        assert_eq!(got, linear::within(&corpus, &ImageHash(0xABCD), 0));
        assert_eq!(got.len(), 500);
        let snap = index.telemetry().snapshot();
        assert!(snap.u64_or_zero("phash.index.fallbacks") >= 1);
        // The BK-tree stores one node for all 500 duplicates.
        assert_eq!(index.bk.nodes.len(), 1);
    }

    #[test]
    fn probe_conservation_holds_on_both_paths() {
        let mut index = HashIndex::new();
        for i in 0..300u64 {
            index.insert(ImageHash(i.wrapping_mul(0x9E37_79B9_7F4A_7C15)));
        }
        for _ in 0..400 {
            index.insert(ImageHash(0)); // flood one bucket -> BK path at r=0
        }
        index.within(&ImageHash(0), 0); // BK fallback
        index.within(&ImageHash(0x1234), 6); // MIH path
        let snap = index.telemetry().snapshot();
        assert_eq!(
            snap.u64_or_zero("phash.index.probes"),
            snap.u64_or_zero("phash.index.verified") + snap.u64_or_zero("phash.index.pruned")
        );
        assert_eq!(snap.u64_or_zero("phash.index.inserts"), 700);
    }

    #[test]
    fn empty_index_returns_nothing() {
        let index = HashIndex::new();
        assert!(index.is_empty());
        assert!(index.within(&ImageHash(7), 64).is_empty());
        assert!(index.nearest(&ImageHash(7), 3).is_empty());
    }

    #[test]
    fn chunk_enumeration_counts_match_binomials() {
        let mut count = 0usize;
        for_each_chunk_within(0x55AA, 2, &mut |_| count += 1);
        // C(16,0) + C(16,1) + C(16,2) = 1 + 16 + 120
        assert_eq!(count, 137);
        let mut values = Vec::new();
        for_each_chunk_within(0x55AA, 2, &mut |v| values.push(v));
        let mut dedup = values.clone();
        dedup.sort_unstable();
        dedup.dedup();
        assert_eq!(dedup.len(), values.len(), "no chunk value emitted twice");
    }

    #[test]
    fn get_returns_inserted_hash() {
        let mut index = HashIndex::new();
        let id = index.insert(ImageHash(42));
        assert_eq!(index.get(id), Some(ImageHash(42)));
        assert_eq!(index.get(id + 1), None);
    }
}
