//! HTTP client with redirect following.

use crate::codec::{Request, Response, Status};
use std::net::SocketAddr;
use tokio::io::{AsyncReadExt, AsyncWriteExt};
use tokio::net::TcpStream;

/// Client errors.
#[derive(Debug)]
pub enum FetchError {
    /// Socket-level failure.
    Io(std::io::Error),
    /// The server's bytes did not parse as HTTP.
    BadResponse,
}

impl std::fmt::Display for FetchError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FetchError::Io(e) => write!(f, "io error: {e}"),
            FetchError::BadResponse => write!(f, "malformed HTTP response"),
        }
    }
}

impl std::error::Error for FetchError {}

impl From<std::io::Error> for FetchError {
    fn from(e: std::io::Error) -> Self {
        FetchError::Io(e)
    }
}

/// Terminal outcome of a fetch (after following redirects).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FetchOutcome {
    /// Landed on a page.
    Page {
        /// Final host after redirects.
        final_host: String,
        /// HTML body.
        body: String,
        /// Hosts visited via redirects (excluding the start host).
        redirects: Vec<String>,
    },
    /// 404 / dead.
    Unreachable,
    /// Redirect loop or budget exceeded.
    TooManyRedirects,
}

/// Fetches `http://host/` via the world server at `addr`, following up to
/// `max_redirects` redirects. Every redirect target is re-requested from
/// the same server (it hosts all domains, virtual-host style); targets
/// outside the world 404 and surface as `Unreachable`... unless a page was
/// already collected, which mirrors how the paper's crawler records the
/// destination URL of each redirect chain.
pub async fn fetch(
    addr: SocketAddr,
    host: &str,
    user_agent: &str,
    max_redirects: usize,
) -> Result<FetchOutcome, FetchError> {
    let mut current = host.to_string();
    let mut redirects = Vec::new();
    for _ in 0..=max_redirects {
        let resp = fetch_once(addr, &current, user_agent).await?;
        match resp.status {
            Status::Ok => {
                return Ok(FetchOutcome::Page {
                    final_host: current,
                    body: resp.body,
                    redirects,
                })
            }
            Status::Found => {
                let Some(loc) = resp.location else {
                    return Err(FetchError::BadResponse);
                };
                let next = host_of(&loc).unwrap_or(loc);
                redirects.push(next.clone());
                current = next;
            }
            Status::NotFound | Status::BadRequest => {
                // A redirect that led off-world still records the chain.
                if redirects.is_empty() {
                    return Ok(FetchOutcome::Unreachable);
                }
                return Ok(FetchOutcome::Page {
                    final_host: current,
                    body: String::new(),
                    redirects,
                });
            }
        }
    }
    Ok(FetchOutcome::TooManyRedirects)
}

async fn fetch_once(
    addr: SocketAddr,
    host: &str,
    user_agent: &str,
) -> Result<Response, FetchError> {
    let mut stream = TcpStream::connect(addr).await?;
    let req = Request::get(host, "/", user_agent);
    stream.write_all(&req.encode()).await?;
    let mut buf = Vec::with_capacity(4096);
    stream.read_to_end(&mut buf).await?;
    Response::parse(&buf).ok_or(FetchError::BadResponse)
}

/// Extracts the host portion of an absolute URL (shared impl).
pub use squatphi_domain::url::host_of;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn host_of_parses_urls() {
        assert_eq!(host_of("https://paypal.com/"), Some("paypal.com".into()));
        assert_eq!(host_of("http://a.b.c/path?q=1"), Some("a.b.c".into()));
        assert_eq!(host_of("http://h:8080/x"), Some("h".into()));
        assert_eq!(host_of("ftp://nope"), None);
        assert_eq!(host_of("http://"), None);
    }
}
