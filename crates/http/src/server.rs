//! Virtual-host HTTP server fronting a [`WebWorld`].

use crate::codec::{find_head_end, Request, Response};
use squatphi_web::{Device, ServeResult, WebWorld};
use std::net::SocketAddr;
use std::sync::Arc;
use tokio::io::{AsyncReadExt, AsyncWriteExt};
use tokio::net::{TcpListener, TcpStream};
use tokio::sync::watch;

/// A running world server.
pub struct WorldServer {
    addr: SocketAddr,
    shutdown: watch::Sender<bool>,
    task: tokio::task::JoinHandle<()>,
}

impl WorldServer {
    /// Spawns the server on an ephemeral localhost port. The server keys
    /// every request on its `Host` header and the user-agent's device
    /// profile; `snapshot` fixes the point in time being served.
    pub async fn spawn(world: Arc<WebWorld>, snapshot: u8) -> std::io::Result<WorldServer> {
        let listener = TcpListener::bind(("127.0.0.1", 0)).await?;
        let addr = listener.local_addr()?;
        let (tx, rx) = watch::channel(false);
        let task = tokio::spawn(async move {
            loop {
                let mut rx_accept = rx.clone();
                tokio::select! {
                    _ = rx_accept.changed() => break,
                    accepted = listener.accept() => {
                        let Ok((stream, _)) = accepted else { continue };
                        let world = world.clone();
                        tokio::spawn(async move {
                            let _ = handle_connection(stream, &world, snapshot).await;
                        });
                    }
                }
            }
        });
        Ok(WorldServer {
            addr,
            shutdown: tx,
            task,
        })
    }

    /// The bound address.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stops accepting and waits for the accept loop to end.
    pub async fn shutdown(self) {
        let _ = self.shutdown.send(true);
        let _ = self.task.await;
    }
}

async fn handle_connection(
    mut stream: TcpStream,
    world: &WebWorld,
    snapshot: u8,
) -> std::io::Result<()> {
    let mut buf = Vec::with_capacity(1024);
    let mut chunk = [0u8; 1024];
    let head_end = loop {
        let n = stream.read(&mut chunk).await?;
        if n == 0 {
            return Ok(());
        }
        buf.extend_from_slice(&chunk[..n]);
        if let Some(e) = find_head_end(&buf) {
            break e;
        }
        if buf.len() > 16 * 1024 {
            return Ok(()); // header flood, drop
        }
    };
    let head = match std::str::from_utf8(&buf[..head_end]) {
        Ok(h) => h,
        Err(_) => return Ok(()),
    };
    let response = match Request::parse(head) {
        Some(req) => {
            let device = if req.user_agent.contains("iPhone") || req.user_agent.contains("Mobile") {
                Device::Mobile
            } else {
                Device::Web
            };
            match world.serve(&req.host, device, snapshot) {
                ServeResult::Page(html) => Response::ok(html),
                ServeResult::Redirect(url) => Response::redirect(url),
                ServeResult::Unreachable => Response::not_found(),
            }
        }
        None => Response {
            status: crate::codec::Status::BadRequest,
            location: None,
            body: String::new(),
        },
    };
    stream.write_all(&response.encode()).await?;
    stream.shutdown().await.ok();
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::client::{fetch, FetchOutcome};
    use crate::ua;
    use squatphi_squat::{BrandRegistry, SquatType};
    use squatphi_web::WorldConfig;
    use std::net::Ipv4Addr;

    fn world() -> Arc<WebWorld> {
        let registry = BrandRegistry::with_size(10);
        let squats = vec![
            (
                "paypal-cash.com".to_string(),
                0,
                SquatType::Combo,
                Ipv4Addr::new(1, 1, 1, 1),
            ),
            (
                "faceb00k.pw".to_string(),
                1,
                SquatType::Homograph,
                Ipv4Addr::new(1, 1, 1, 2),
            ),
        ];
        let cfg = WorldConfig {
            phishing_domains: 2,
            seed: 3,
            ..WorldConfig::default()
        };
        Arc::new(WebWorld::build(&squats, &registry, &cfg))
    }

    #[tokio::test]
    async fn serves_phishing_page_over_tcp() {
        let server = WorldServer::spawn(world(), 0).await.unwrap();
        let out = fetch(server.addr(), "paypal-cash.com", ua::WEB, 5)
            .await
            .unwrap();
        match out {
            FetchOutcome::Page { body, .. } => assert!(body.contains("form")),
            other => panic!("expected page, got {other:?}"),
        }
        server.shutdown().await;
    }

    #[tokio::test]
    async fn unknown_host_404s() {
        let server = WorldServer::spawn(world(), 0).await.unwrap();
        let out = fetch(server.addr(), "nosuchhost.example", ua::WEB, 5)
            .await
            .unwrap();
        assert!(matches!(out, FetchOutcome::Unreachable));
        server.shutdown().await;
    }

    #[tokio::test]
    async fn brand_sites_served() {
        let server = WorldServer::spawn(world(), 0).await.unwrap();
        let out = fetch(server.addr(), "paypal.com", ua::MOBILE, 5)
            .await
            .unwrap();
        match out {
            FetchOutcome::Page { body, .. } => assert!(body.contains("paypal")),
            other => panic!("expected page, got {other:?}"),
        }
        server.shutdown().await;
    }

    #[tokio::test]
    async fn parallel_requests_served() {
        let server = WorldServer::spawn(world(), 0).await.unwrap();
        let addr = server.addr();
        let mut handles = Vec::new();
        for i in 0..50 {
            let host = if i % 2 == 0 {
                "paypal-cash.com"
            } else {
                "faceb00k.pw"
            };
            handles.push(tokio::spawn(
                async move { fetch(addr, host, ua::WEB, 5).await },
            ));
        }
        for h in handles {
            assert!(h.await.unwrap().is_ok());
        }
        server.shutdown().await;
    }
}
