//! Minimal HTTP/1.1 substrate over tokio TCP.
//!
//! The paper's crawler drives headless Chrome over real HTTP; our
//! reproduction keeps a real-socket path so the crawl exercises genuine
//! networking (connection handling, redirects, user agents) while the
//! content comes from the [`squatphi_web::WebWorld`]. One server process
//! hosts *every* domain of the world, virtual-host style, keyed by the
//! `Host` header — exactly how a test lab would stub the internet.
//!
//! Scope: request line + headers (no bodies on requests, fixed-length
//! bodies on responses), `GET` only, keep-alive off for simplicity.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod client;
pub mod codec;
pub mod server;

pub use client::{fetch, FetchError, FetchOutcome};
pub use codec::{Request, Response, Status};
pub use server::WorldServer;

/// The paper's two crawl user agents (§3.2).
pub mod ua {
    /// Desktop Chrome 65 (the "web" profile).
    pub const WEB: &str =
        "Mozilla/5.0 (X11; Linux x86_64) AppleWebKit/537.36 (KHTML, like Gecko) Chrome/65.0.3325.181 Safari/537.36";
    /// iPhone 6 (the "mobile" profile).
    pub const MOBILE: &str =
        "Mozilla/5.0 (iPhone; CPU iPhone OS 11_0 like Mac OS X) AppleWebKit/604.1.38 (KHTML, like Gecko) Version/11.0 Mobile/15A372 Safari/604.1";
}
