//! HTTP/1.1 request/response types and wire codec (GET-only subset).

use bytes::{BufMut, BytesMut};

/// A parsed GET request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Request {
    /// Request path (starts with `/`).
    pub path: String,
    /// `Host` header value (virtual-host key).
    pub host: String,
    /// `User-Agent` header value.
    pub user_agent: String,
}

impl Request {
    /// Builds a GET request for `host` + `path` with `user_agent`.
    pub fn get(host: &str, path: &str, user_agent: &str) -> Self {
        Request {
            path: if path.starts_with('/') {
                path.to_string()
            } else {
                format!("/{path}")
            },
            host: host.to_string(),
            user_agent: user_agent.to_string(),
        }
    }

    /// Encodes to wire bytes.
    pub fn encode(&self) -> Vec<u8> {
        let mut buf = BytesMut::with_capacity(256);
        buf.put_slice(b"GET ");
        buf.put_slice(self.path.as_bytes());
        buf.put_slice(b" HTTP/1.1\r\nHost: ");
        buf.put_slice(self.host.as_bytes());
        buf.put_slice(b"\r\nUser-Agent: ");
        buf.put_slice(self.user_agent.as_bytes());
        buf.put_slice(b"\r\nAccept: text/html\r\nConnection: close\r\n\r\n");
        buf.to_vec()
    }

    /// Parses a request head (everything up to the blank line).
    pub fn parse(head: &str) -> Option<Request> {
        let mut lines = head.split("\r\n");
        let request_line = lines.next()?;
        let mut parts = request_line.split_whitespace();
        let method = parts.next()?;
        if !method.eq_ignore_ascii_case("GET") {
            return None;
        }
        let path = parts.next()?.to_string();
        let mut host = String::new();
        let mut user_agent = String::new();
        for line in lines {
            if let Some((name, value)) = line.split_once(':') {
                let value = value.trim();
                if name.eq_ignore_ascii_case("host") {
                    // Strip a :port suffix.
                    host = value.split(':').next().unwrap_or(value).to_string();
                } else if name.eq_ignore_ascii_case("user-agent") {
                    user_agent = value.to_string();
                }
            }
        }
        Some(Request {
            path,
            host,
            user_agent,
        })
    }
}

/// Response status subset.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Status {
    /// 200.
    Ok,
    /// 302.
    Found,
    /// 404.
    NotFound,
    /// 400.
    BadRequest,
}

impl Status {
    /// Numeric code.
    pub fn code(self) -> u16 {
        match self {
            Status::Ok => 200,
            Status::Found => 302,
            Status::NotFound => 404,
            Status::BadRequest => 400,
        }
    }

    /// Reason phrase.
    pub fn reason(self) -> &'static str {
        match self {
            Status::Ok => "OK",
            Status::Found => "Found",
            Status::NotFound => "Not Found",
            Status::BadRequest => "Bad Request",
        }
    }
}

/// An HTTP response.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Response {
    /// Status.
    pub status: Status,
    /// `Location` header (for redirects).
    pub location: Option<String>,
    /// Body bytes (HTML).
    pub body: String,
}

impl Response {
    /// 200 with an HTML body.
    pub fn ok(body: String) -> Self {
        Response {
            status: Status::Ok,
            location: None,
            body,
        }
    }

    /// 302 to `location`.
    pub fn redirect(location: String) -> Self {
        Response {
            status: Status::Found,
            location: Some(location),
            body: String::new(),
        }
    }

    /// 404.
    pub fn not_found() -> Self {
        Response {
            status: Status::NotFound,
            location: None,
            body: String::new(),
        }
    }

    /// Encodes to wire bytes.
    pub fn encode(&self) -> Vec<u8> {
        let mut buf = BytesMut::with_capacity(self.body.len() + 128);
        buf.put_slice(
            format!(
                "HTTP/1.1 {} {}\r\n",
                self.status.code(),
                self.status.reason()
            )
            .as_bytes(),
        );
        if let Some(loc) = &self.location {
            buf.put_slice(format!("Location: {loc}\r\n").as_bytes());
        }
        buf.put_slice(b"Content-Type: text/html; charset=utf-8\r\n");
        buf.put_slice(format!("Content-Length: {}\r\n", self.body.len()).as_bytes());
        buf.put_slice(b"Connection: close\r\n\r\n");
        buf.put_slice(self.body.as_bytes());
        buf.to_vec()
    }

    /// Parses a full response (head + body). `None` on malformed input.
    pub fn parse(raw: &[u8]) -> Option<Response> {
        let head_end = find_head_end(raw)?;
        let head = std::str::from_utf8(&raw[..head_end]).ok()?;
        let mut lines = head.split("\r\n");
        let status_line = lines.next()?;
        let code: u16 = status_line.split_whitespace().nth(1)?.parse().ok()?;
        let status = match code {
            200 => Status::Ok,
            302 | 301 | 303 | 307 | 308 => Status::Found,
            404 => Status::NotFound,
            _ => Status::BadRequest,
        };
        let mut location = None;
        let mut content_length = None;
        for line in lines {
            if let Some((name, value)) = line.split_once(':') {
                let value = value.trim();
                if name.eq_ignore_ascii_case("location") {
                    location = Some(value.to_string());
                } else if name.eq_ignore_ascii_case("content-length") {
                    content_length = value.parse::<usize>().ok();
                }
            }
        }
        let body_start = head_end + 4;
        let body_bytes = raw.get(body_start..)?;
        let body = match content_length {
            Some(n) => String::from_utf8_lossy(body_bytes.get(..n)?).into_owned(),
            None => String::from_utf8_lossy(body_bytes).into_owned(),
        };
        Some(Response {
            status,
            location,
            body,
        })
    }
}

/// Offset of the `\r\n\r\n` separator, if present.
pub fn find_head_end(raw: &[u8]) -> Option<usize> {
    raw.windows(4).position(|w| w == b"\r\n\r\n")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn request_round_trips() {
        let req = Request::get("faceb00k.pw", "/", crate::ua::WEB);
        let wire = req.encode();
        let head_end = find_head_end(&wire).unwrap();
        let parsed = Request::parse(std::str::from_utf8(&wire[..head_end]).unwrap()).unwrap();
        assert_eq!(parsed, req);
    }

    #[test]
    fn request_host_port_stripped() {
        let head = "GET / HTTP/1.1\r\nHost: example.com:8080\r\nUser-Agent: x";
        let req = Request::parse(head).unwrap();
        assert_eq!(req.host, "example.com");
    }

    #[test]
    fn non_get_rejected() {
        assert!(Request::parse("POST / HTTP/1.1\r\nHost: x").is_none());
    }

    #[test]
    fn response_round_trips() {
        let r = Response::ok("<html>hi</html>".into());
        let parsed = Response::parse(&r.encode()).unwrap();
        assert_eq!(parsed, r);
    }

    #[test]
    fn redirect_round_trips() {
        let r = Response::redirect("https://paypal.com/".into());
        let parsed = Response::parse(&r.encode()).unwrap();
        assert_eq!(parsed.status, Status::Found);
        assert_eq!(parsed.location.as_deref(), Some("https://paypal.com/"));
    }

    #[test]
    fn not_found_round_trips() {
        let parsed = Response::parse(&Response::not_found().encode()).unwrap();
        assert_eq!(parsed.status, Status::NotFound);
        assert!(parsed.body.is_empty());
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!(Response::parse(b"not http at all").is_none());
        assert!(Response::parse(b"").is_none());
        assert!(Request::parse("GARBAGE").is_none());
    }

    #[test]
    fn body_respects_content_length() {
        let mut wire = Response::ok("abcdef".into()).encode();
        wire.extend_from_slice(b"trailing junk");
        let parsed = Response::parse(&wire).unwrap();
        assert_eq!(parsed.body, "abcdef");
    }
}
