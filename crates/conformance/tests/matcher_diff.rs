//! Property tests pinning the fingerprint-indexed [`SquatDetector`]
//! byte-identical to the legacy probe-based [`LegacyDetector`] (the PR 6
//! scan rebuild's compatibility contract):
//!
//! * exhaustively on every `generate_all` candidate (with the answer also
//!   checked against the independent [`justify`] ground-truth predicates),
//! * on proptest-generated random labels, including brand-mutation
//!   properties that concentrate on the deletion/confusable neighborhoods
//!   where the fingerprint index actually does its work,
//! * on the `probes` / `allocations_avoided` counters, which both
//!   implementations maintain at the same counting sites.
//!
//! [`SquatDetector`]: squatphi_squat::SquatDetector
//! [`LegacyDetector`]: squatphi_squat::legacy::LegacyDetector

use proptest::prelude::*;
use squatphi_conformance::justify::justified;
use squatphi_domain::confusables::ConfusableTable;
use squatphi_domain::DomainName;
use squatphi_squat::gen::{generate_all, GenBudget};
use squatphi_squat::legacy::LegacyDetector;
use squatphi_squat::{BrandRegistry, ClassifyStats, SquatDetector};
use std::sync::OnceLock;

const TLDS: [&str; 6] = ["com", "net", "org", "com.ua", "top", "pw"];

/// One registry + detector pair shared across all properties (building
/// the fingerprint index per generated case would swamp the runtime).
fn detectors() -> &'static (BrandRegistry, SquatDetector, LegacyDetector) {
    static CELL: OnceLock<(BrandRegistry, SquatDetector, LegacyDetector)> = OnceLock::new();
    CELL.get_or_init(|| {
        let reg = BrandRegistry::with_size(40);
        let new = SquatDetector::new(&reg);
        let old = LegacyDetector::new(&reg);
        (reg, new, old)
    })
}

/// Full agreement (answer + counters) on one domain, as a property result.
fn agreement(
    new: &SquatDetector,
    old: &LegacyDetector,
    domain: &DomainName,
) -> Result<(), TestCaseError> {
    let mut sn = ClassifyStats::default();
    let mut so = ClassifyStats::default();
    let a = new.classify_with_stats(domain, &mut sn);
    let b = old.classify_with_stats(domain, &mut so);
    prop_assert_eq!(a, b, "answers diverged on {}", domain);
    prop_assert_eq!(
        sn.probes,
        so.probes,
        "probe counters diverged on {}",
        domain
    );
    prop_assert_eq!(
        sn.allocations_avoided,
        so.allocations_avoided,
        "allocation counters diverged on {}",
        domain
    );
    // The legacy detector consults a real hash map on every probe; the
    // fingerprint detector can only consult its map for a subset.
    prop_assert_eq!(so.deep_probes, so.probes, "legacy deep_probes invariant");
    prop_assert!(sn.deep_probes <= sn.probes, "filter cannot add probes");
    Ok(())
}

#[test]
fn every_generated_candidate_agrees_and_justifies() {
    let (reg, new, old) = detectors();
    let table = ConfusableTable::new();
    let budget = GenBudget {
        homograph: 30,
        bits: 20,
        typo: 30,
        combo: 30,
        wrong_tld: 8,
    };
    let mut cases = 0u64;
    for brand in reg.brands() {
        for cand in generate_all(brand, budget) {
            cases += 1;
            agreement(new, old, &cand.domain).unwrap_or_else(|e| panic!("{e}"));
            // Agreement alone could mean "identically wrong"; any hit must
            // also survive the independent ground-truth predicates.
            if let Some(m) = new.classify(&cand.domain) {
                assert!(
                    justified(reg, &table, &cand.domain, &m),
                    "unjustified agreed answer on {}",
                    cand.domain
                );
            }
        }
    }
    assert!(
        cases > 3000,
        "generator produced too few candidates: {cases}"
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    #[test]
    fn random_labels_agree(label in "[a-z0-9][a-z0-9-]{0,20}[a-z0-9]", tld_i in 0..6usize) {
        let (_reg, new, old) = detectors();
        if let Ok(domain) = DomainName::from_parts(&label, TLDS[tld_i]) {
            agreement(new, old, &domain)?;
        }
    }

    #[test]
    fn hyphenated_combos_agree(
        a in "[a-z0-9][a-z0-9]{0,11}",
        b in "[a-z0-9][a-z0-9]{0,11}",
        tld_i in 0..6usize,
    ) {
        let (_reg, new, old) = detectors();
        if let Ok(domain) = DomainName::from_parts(&format!("{a}-{b}"), TLDS[tld_i]) {
            agreement(new, old, &domain)?;
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(768))]

    #[test]
    fn mutated_brand_labels_agree(
        brand_i in 0..40usize,
        edits in proptest::collection::vec((any::<u16>(), any::<u8>()), 1..4),
        tld_i in 0..6usize,
    ) {
        let (reg, new, old) = detectors();
        // Mutate 1–3 positions of a brand label toward confusables, random
        // letters, deletions, insertions or adjacent swaps — the edit
        // neighborhoods the fingerprint index probes.
        let mut chars: Vec<char> = reg.brands()[brand_i % reg.len()].label.chars().collect();
        for (pos, kind) in edits {
            if chars.len() < 2 {
                break;
            }
            let i = pos as usize % chars.len();
            match kind % 5 {
                0 => chars[i] = ['0', '1', '5', 'q', 'v', 'w'][kind as usize % 6],
                1 => chars[i] = (b'a' + kind % 26) as char,
                2 => {
                    chars.remove(i);
                }
                3 => chars.insert(i, (b'a' + kind % 26) as char),
                _ => {
                    if i + 1 < chars.len() {
                        chars.swap(i, i + 1);
                    }
                }
            }
        }
        let label: String = chars.into_iter().collect();
        if let Ok(domain) = DomainName::from_parts(&label, TLDS[tld_i]) {
            agreement(new, old, &domain)?;
        }
    }
}
