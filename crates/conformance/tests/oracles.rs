//! CI entry point for the conformance harness: one full `ci`-budget run
//! must be violation-free, cover all five squatting types in the
//! differential oracle, and produce byte-identical JSON across runs.

use squatphi_conformance::{run, Budget, ConformanceConfig, RFC3492_VECTORS};
use squatphi_domain::punycode;
use squatphi_squat::SquatType;

const CONFIG: ConformanceConfig = ConformanceConfig {
    seed: 1,
    budget: Budget::Ci,
};

#[test]
fn ci_budget_run_is_violation_free() {
    let report = run(&CONFIG);
    assert_eq!(
        report.total_violations(),
        0,
        "conformance violations:\n{}",
        report.render_text(false)
    );
    assert!(
        report.total_cases() > 10_000,
        "suspiciously small run: {} cases",
        report.total_cases()
    );
    // Every oracle actually ran.
    let names: Vec<&str> = report.oracles.iter().map(|o| o.name).collect();
    for expected in [
        "differential",
        "negative",
        "punycode-roundtrip",
        "idna-roundtrip",
        "dnswire-roundtrip",
        "dnswire-fuzz",
        "html-fuzz",
        "supervision",
        "scan-diff",
        "phash-index",
    ] {
        assert!(names.contains(&expected), "oracle {expected} missing");
        let o = report.oracles.iter().find(|o| o.name == expected).unwrap();
        assert!(o.cases > 0, "oracle {expected} ran zero cases");
    }
}

#[test]
fn differential_oracle_covers_all_five_types() {
    let report = run(&CONFIG);
    for (ty, n) in SquatType::ALL.iter().zip(report.type_coverage.iter()) {
        assert!(*n > 0, "type {ty} never reached the differential oracle");
    }
}

#[test]
fn report_json_is_deterministic() {
    let a = run(&CONFIG).to_json(false);
    let b = run(&CONFIG).to_json(false);
    assert_eq!(a, b, "two identical runs must serialize identically");
    // A different seed changes the run (the negative/fuzz halves are
    // seeded) but must not change the report *shape*.
    let c = run(&ConformanceConfig {
        seed: 2,
        budget: Budget::Ci,
    })
    .to_json(false);
    assert_ne!(a, c, "seed must reach the randomized oracles");
    assert_eq!(a.lines().count(), c.lines().count());
}

#[test]
fn rfc3492_sample_strings_verbatim() {
    assert_eq!(RFC3492_VECTORS.len(), 19, "all RFC 3492 §7.1 samples");
    for &(name, unicode, encoded) in RFC3492_VECTORS {
        assert_eq!(
            punycode::encode(unicode).expect("encode"),
            encoded,
            "{name}: encode mismatch"
        );
        assert_eq!(
            punycode::decode(encoded).expect("decode"),
            unicode,
            "{name}: decode mismatch"
        );
    }
}
