//! Durability oracle: exhaustive single-byte damage over a real
//! two-generation [`DurableStore`].
//!
//! Contract under test, per seeded body:
//!
//! * damaging the newest generation at *any* byte — one flipped bit or a
//!   truncation at any length — never panics the reader, and every such
//!   load recovers the previous generation's exact body,
//! * damaging both generations yields [`LoadOutcome::Unrecoverable`]
//!   (never a silently wrong `Valid`/`Recovered` value),
//! * a config-hash mismatch classifies as [`LoadOutcome::Stale`] and an
//!   empty store as [`LoadOutcome::Missing`],
//! * after every load the store's [`DurabilityStats`] ledger reconciles
//!   (`reads == valid + recovered + recomputed + unrecoverable`).
//!
//! Damage is injected by rewriting generation files through
//! [`RealVfs`] — the same write path the store itself uses — and every
//! case restores the pristine bytes afterwards, so cases are independent.
//!
//! [`DurabilityStats`]: squatphi_durability::DurabilityStats

use crate::{Params, Violation};
use squatphi_durability::{DurableStore, LoadOutcome, RealVfs, StoreError, Vfs};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};

/// Concurrent harness invocations must not share a store directory.
static INVOCATION: AtomicU64 = AtomicU64::new(0);

/// SplitMix64 — the oracle's only randomness, a pure function of the seed.
fn mix(mut x: u64) -> u64 {
    x ^= x >> 30;
    x = x.wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x ^= x >> 27;
    x = x.wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

/// A seeded printable body; varied lengths exercise torn-length edges.
fn body_for(seed: u64, index: usize, gen: u64) -> String {
    let mut h = mix(seed ^ (index as u64) << 8 ^ gen);
    let len = 24 + (h % 48) as usize;
    let mut s = String::with_capacity(len);
    for _ in 0..len {
        h = mix(h);
        s.push(char::from(b'!' + (h % 94) as u8));
    }
    s
}

/// One fresh open + load, reporting the outcome and whether the ledger
/// reconciled. A fresh store per case keeps the per-case stats isolated.
fn load_once(dir: &Path, config: u64) -> Result<(LoadOutcome<String>, bool), StoreError> {
    let store = DurableStore::open_real(dir, config)?;
    let outcome = store.load_with("state", |b| Some(b.to_string()))?;
    Ok((outcome, store.stats().reconciles()))
}

/// Runs `case`, converting panics and unexpected outcomes to violations.
fn check(
    violations: &mut Vec<Violation>,
    input: String,
    dir: &Path,
    config: u64,
    expect: impl Fn(&LoadOutcome<String>) -> Option<String>,
) {
    match catch_unwind(AssertUnwindSafe(|| load_once(dir, config))) {
        Err(_) => violations.push(Violation {
            oracle: "durability",
            input,
            detail: "panic escaped the store reader".into(),
        }),
        Ok(Err(e)) => violations.push(Violation {
            oracle: "durability",
            input,
            detail: format!("store error instead of a classification: {e}"),
        }),
        Ok(Ok((outcome, reconciles))) => {
            if let Some(detail) = expect(&outcome) {
                violations.push(Violation {
                    oracle: "durability",
                    input,
                    detail,
                });
            }
            if !reconciles {
                violations.push(Violation {
                    oracle: "durability",
                    input: "ledger".into(),
                    detail: "durability counters do not reconcile after the load".into(),
                });
            }
        }
    }
}

/// Expectation: recovered the older generation's exact body.
fn expect_recovered(old_body: &str) -> impl Fn(&LoadOutcome<String>) -> Option<String> + '_ {
    move |outcome| match outcome {
        LoadOutcome::Recovered { value, .. } if value == old_body => None,
        LoadOutcome::Recovered { .. } => {
            Some("recovered a different body than the older generation held".into())
        }
        other => Some(format!(
            "expected recovery from the older generation, got {}",
            outcome_name(other)
        )),
    }
}

fn outcome_name(outcome: &LoadOutcome<String>) -> &'static str {
    match outcome {
        LoadOutcome::Missing => "Missing",
        LoadOutcome::Valid(_) => "Valid",
        LoadOutcome::Recovered { .. } => "Recovered",
        LoadOutcome::Stale { .. } => "Stale",
        LoadOutcome::Unrecoverable { .. } => "Unrecoverable",
    }
}

pub(crate) fn run_durability(seed: u64, params: &Params) -> (u64, Vec<Violation>) {
    let mut cases = 0u64;
    let mut violations = Vec::new();
    for index in 0..params.durability_bodies {
        cases += run_body(seed, index, &mut violations);
    }
    (cases, violations)
}

/// One seeded body: builds the two-generation store, then sweeps damage.
fn run_body(seed: u64, index: usize, violations: &mut Vec<Violation>) -> u64 {
    let invocation = INVOCATION.fetch_add(1, Ordering::Relaxed);
    let dir: PathBuf = std::env::temp_dir().join(format!(
        "squatphi-conformance-durability-{}-{seed}-{invocation}",
        std::process::id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    let config = mix(seed ^ 0xd04a_b111 ^ index as u64);
    let old_body = body_for(seed, index, 1);
    let new_body = body_for(seed, index, 2);
    let mut cases = 0u64;

    let setup = (|| -> Result<(Vec<u8>, Vec<u8>), String> {
        let store = DurableStore::open_real(&dir, config).map_err(|e| e.to_string())?;
        store.save("state", &old_body).map_err(|e| e.to_string())?;
        store.save("state", &new_body).map_err(|e| e.to_string())?;
        let g1 = RealVfs
            .read(&dir.join("state.g1.ckpt"))
            .map_err(|e| e.to_string())?;
        let g2 = RealVfs
            .read(&dir.join("state.g2.ckpt"))
            .map_err(|e| e.to_string())?;
        Ok((g1, g2))
    })();
    let (pristine_g1, pristine_g2) = match setup {
        Ok(files) => files,
        Err(e) => {
            violations.push(Violation {
                oracle: "durability",
                input: format!("body {index}: setup"),
                detail: format!("could not build the two-generation store: {e}"),
            });
            let _ = std::fs::remove_dir_all(&dir);
            return 1;
        }
    };
    let g2_path = dir.join("state.g2.ckpt");
    let g1_path = dir.join("state.g1.ckpt");

    // Baseline: the pristine store loads the newest body.
    cases += 1;
    check(
        violations,
        format!("body {index}: pristine"),
        &dir,
        config,
        |outcome| match outcome {
            LoadOutcome::Valid(v) if v == &new_body => None,
            other => Some(format!(
                "pristine store did not load the newest body ({})",
                outcome_name(other)
            )),
        },
    );

    // Sweep 1 — flip one seeded bit at every byte of the newest
    // generation: the reader must classify the damage and fall back to
    // the older generation, byte-exactly.
    for pos in 0..pristine_g2.len() {
        cases += 1;
        let mut damaged = pristine_g2.clone();
        damaged[pos] ^= 1u8 << (mix(seed ^ pos as u64) % 8);
        RealVfs.write(&g2_path, &damaged).expect("inject bitflip");
        check(
            violations,
            format!("body {index}: bitflip g2@{pos}"),
            &dir,
            config,
            expect_recovered(&old_body),
        );
    }

    // Sweep 2 — truncate the newest generation at every length
    // (a torn tail of any size), same recovery contract.
    for len in 0..pristine_g2.len() {
        cases += 1;
        RealVfs
            .write(&g2_path, &pristine_g2[..len])
            .expect("inject truncation");
        check(
            violations,
            format!("body {index}: torn g2 at {len}"),
            &dir,
            config,
            expect_recovered(&old_body),
        );
    }
    RealVfs.write(&g2_path, &pristine_g2).expect("restore g2");

    // Sweep 3 — with the newest generation held damaged, damage the
    // older one at every byte: no generation verifies, so every load
    // must classify Unrecoverable (and never hand back a wrong body).
    let mut g2_damaged = pristine_g2.clone();
    g2_damaged[pristine_g2.len() / 2] ^= 0x10;
    RealVfs.write(&g2_path, &g2_damaged).expect("damage g2");
    for pos in 0..pristine_g1.len() {
        cases += 1;
        let mut damaged = pristine_g1.clone();
        damaged[pos] ^= 1u8 << (mix(seed ^ 0x9e37 ^ pos as u64) % 8);
        RealVfs.write(&g1_path, &damaged).expect("inject bitflip");
        check(
            violations,
            format!("body {index}: bitflip g1@{pos} with g2 damaged"),
            &dir,
            config,
            |outcome| match outcome {
                LoadOutcome::Unrecoverable { .. } => None,
                other => Some(format!(
                    "both generations damaged but load resolved {}",
                    outcome_name(other)
                )),
            },
        );
    }
    RealVfs.write(&g1_path, &pristine_g1).expect("restore g1");
    RealVfs.write(&g2_path, &pristine_g2).expect("restore g2");

    // Config mismatch on the intact store: Stale, not damage.
    cases += 1;
    check(
        violations,
        format!("body {index}: stale config"),
        &dir,
        !config,
        |outcome| match outcome {
            LoadOutcome::Stale { .. } => None,
            other => Some(format!(
                "config mismatch classified {} instead of Stale",
                outcome_name(other)
            )),
        },
    );

    // Empty store: an honest cold start.
    cases += 1;
    RealVfs.remove(&g1_path).expect("clear g1");
    RealVfs.remove(&g2_path).expect("clear g2");
    check(
        violations,
        format!("body {index}: empty store"),
        &dir,
        config,
        |outcome| match outcome {
            LoadOutcome::Missing => None,
            other => Some(format!(
                "empty store classified {} instead of Missing",
                outcome_name(other)
            )),
        },
    );

    let _ = std::fs::remove_dir_all(&dir);
    cases
}
