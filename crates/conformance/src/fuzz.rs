//! Never-panic fuzzers: `Message::decode` over byte-level mutations of
//! valid packets, and `html::parse`/`tokenize` over structure-aware
//! mutations of realistic documents. Both replay the on-disk corpus
//! (`corpus/`, compiled in with `include_str!` so the CLI works from any
//! working directory) before exploring seeded mutants. The only property
//! checked is *totality*: the decoder/parser may reject anything, but it
//! must return, not panic or hang.

use crate::report::Violation;
use crate::shrink::{minimize_bytes, minimize_str};
use crate::Params;
use rand::prelude::*;
use squatphi_dnswire::{Message, Rcode, RecordType, ResourceRecord};
use std::panic::{catch_unwind, AssertUnwindSafe};

/// The DNS corpus: hex dumps, `#` comment lines ignored.
const DNS_CORPUS: &[(&str, &str)] = &[
    ("query_a.hex", include_str!("../corpus/dns/query_a.hex")),
    (
        "pointer_self_cycle.hex",
        include_str!("../corpus/dns/pointer_self_cycle.hex"),
    ),
    (
        "truncated_header.hex",
        include_str!("../corpus/dns/truncated_header.hex"),
    ),
];

/// The HTML corpus, replayed verbatim and used as mutation seeds.
const HTML_CORPUS: &[(&str, &str)] = &[
    (
        "login_form.html",
        include_str!("../corpus/html/login_form.html"),
    ),
    (
        "broken_nesting.html",
        include_str!("../corpus/html/broken_nesting.html"),
    ),
    (
        "evasive_entities.html",
        include_str!("../corpus/html/evasive_entities.html"),
    ),
];

/// Parses a corpus hex dump (whitespace and `#` comments ignored).
pub(crate) fn parse_hex(contents: &str) -> Vec<u8> {
    let digits: Vec<u8> = contents
        .lines()
        .filter(|l| !l.trim_start().starts_with('#'))
        .flat_map(|l| l.bytes())
        .filter(u8::is_ascii_hexdigit)
        .collect();
    digits
        .chunks(2)
        .filter(|c| c.len() == 2)
        .map(|c| {
            let hi = (c[0] as char).to_digit(16).unwrap() as u8;
            let lo = (c[1] as char).to_digit(16).unwrap() as u8;
            (hi << 4) | lo
        })
        .collect()
}

fn hex_string(bytes: &[u8]) -> String {
    bytes.iter().map(|b| format!("{b:02x}")).collect()
}

fn decode_panics(bytes: &[u8]) -> bool {
    catch_unwind(AssertUnwindSafe(|| {
        let _ = Message::decode(bytes);
    }))
    .is_err()
}

/// Valid seed packets whose mutants the fuzzer explores.
fn seed_packets() -> Vec<Vec<u8>> {
    let q = Message::query(0xBEEF, "mail.paypal-secure.com.ua", RecordType::Mx);
    let mut r = Message::response_to(&q, Rcode::NoError);
    r.answers.push(ResourceRecord {
        name: "mail.paypal-secure.com.ua".into(),
        ttl: 300,
        rdata: squatphi_dnswire::RData::Mx {
            preference: 10,
            exchange: "mx1.paypal-secure.com.ua".into(),
        },
    });
    r.authority.push(ResourceRecord {
        name: "com.ua".into(),
        ttl: 3600,
        rdata: squatphi_dnswire::RData::Soa {
            mname: "ns1.com.ua".into(),
            rname: "hostmaster.com.ua".into(),
            serial: 2024,
        },
    });
    vec![
        q.encode().expect("query encodes"),
        r.encode().expect("response encodes"),
    ]
}

fn mutate_bytes(rng: &mut StdRng, base: &[u8]) -> Vec<u8> {
    let mut out = base.to_vec();
    for _ in 0..rng.gen_range(1..=4usize) {
        if out.is_empty() {
            out.push(rng.gen::<u8>());
            continue;
        }
        match rng.gen_range(0..6u8) {
            // Bit flip.
            0 => {
                let i = rng.gen_range(0..out.len());
                out[i] ^= 1 << rng.gen_range(0..8u8);
            }
            // Byte overwrite.
            1 => {
                let i = rng.gen_range(0..out.len());
                out[i] = rng.gen::<u8>();
            }
            // Truncate.
            2 => out.truncate(rng.gen_range(0..=out.len())),
            // Insert random bytes.
            3 => {
                let i = rng.gen_range(0..=out.len());
                for _ in 0..rng.gen_range(1..=8usize) {
                    out.insert(i, rng.gen::<u8>());
                }
            }
            // Plant a compression pointer at a random offset.
            4 => {
                let i = rng.gen_range(0..out.len());
                out[i] = 0xC0 | rng.gen_range(0..4u8);
                if i + 1 < out.len() {
                    out[i + 1] = rng.gen::<u8>();
                }
            }
            // Inflate a section count.
            _ => {
                if out.len() >= 12 {
                    let off = [4usize, 6, 8][rng.gen_range(0..3usize)];
                    out[off] = rng.gen::<u8>();
                    out[off + 1] = 0xFF;
                }
            }
        }
    }
    out
}

/// Corpus replay + seeded byte mutations through `Message::decode`.
pub(crate) fn run_dnswire(seed: u64, params: &Params) -> (u64, Vec<Violation>) {
    let mut cases = 0u64;
    let mut violations = Vec::new();
    let check = |bytes: &[u8], origin: &str, violations: &mut Vec<Violation>| {
        if decode_panics(bytes) {
            let shrunk = minimize_bytes(bytes, decode_panics);
            violations.push(Violation {
                oracle: "dnswire-fuzz",
                input: hex_string(&shrunk),
                detail: format!("Message::decode panicked ({origin})"),
            });
        }
    };

    for (name, contents) in DNS_CORPUS {
        cases += 1;
        check(
            &parse_hex(contents),
            &format!("corpus {name}"),
            &mut violations,
        );
    }

    let seeds = seed_packets();
    let mut rng = StdRng::seed_from_u64(seed ^ 0x646e_735f_6675_7a7a); // "dns_fuzz"
    for i in 0..params.dns_fuzz_cases {
        let base = &seeds[i % seeds.len()];
        let mutant = mutate_bytes(&mut rng, base);
        cases += 1;
        check(&mutant, "mutant", &mut violations);
    }
    (cases, violations)
}

fn html_panics(input: &str) -> bool {
    catch_unwind(AssertUnwindSafe(|| {
        let _ = squatphi_html::tokenize(input);
        let _ = squatphi_html::parse(input);
    }))
    .is_err()
}

/// Fragments the HTML mutator splices in: the structures most likely to
/// confuse a tokenizer state machine.
const FRAGMENTS: &[&str] = &[
    "<",
    ">",
    "<<",
    "</",
    "<!",
    "<!--",
    "-->",
    "<div",
    "</div>",
    "<script>",
    "</script>",
    "<input type=\"",
    "='",
    "&#x",
    "&#",
    "&amp",
    "\"",
    "'",
    "<form action=",
    "]]>",
    "<![CDATA[",
    "<p/>",
    "< p>",
    "\0",
];

fn mutate_html(rng: &mut StdRng, base: &str) -> String {
    let mut out: Vec<u8> = base.bytes().collect();
    for _ in 0..rng.gen_range(1..=5usize) {
        match rng.gen_range(0..4u8) {
            // Splice in a fragment.
            0 => {
                let frag = FRAGMENTS[rng.gen_range(0..FRAGMENTS.len())];
                let i = rng.gen_range(0..=out.len());
                out.splice(i..i, frag.bytes());
            }
            // Duplicate a random region.
            1 if !out.is_empty() => {
                let a = rng.gen_range(0..out.len());
                let b = (a + rng.gen_range(1..=32usize)).min(out.len());
                let region: Vec<u8> = out[a..b].to_vec();
                let i = rng.gen_range(0..=out.len());
                out.splice(i..i, region);
            }
            // Delete a random region.
            2 if !out.is_empty() => {
                let a = rng.gen_range(0..out.len());
                let b = (a + rng.gen_range(1..=32usize)).min(out.len());
                out.drain(a..b);
            }
            // Truncate (mid-tag truncation is the classic parser killer).
            _ => out.truncate(rng.gen_range(0..=out.len())),
        }
    }
    // Mutations operate on bytes; corpus seeds are ASCII so this is
    // lossless, but be safe about spliced multi-byte boundaries.
    String::from_utf8_lossy(&out).into_owned()
}

/// Corpus replay + structure-aware mutations through the HTML pipeline.
pub(crate) fn run_html(seed: u64, params: &Params) -> (u64, Vec<Violation>) {
    let mut cases = 0u64;
    let mut violations = Vec::new();
    let check = |input: &str, origin: &str, violations: &mut Vec<Violation>| {
        if html_panics(input) {
            let shrunk = minimize_str(input, html_panics);
            violations.push(Violation {
                oracle: "html-fuzz",
                input: shrunk,
                detail: format!("html parse/tokenize panicked ({origin})"),
            });
        }
    };

    for (name, contents) in HTML_CORPUS {
        cases += 1;
        check(contents, &format!("corpus {name}"), &mut violations);
    }

    let mut rng = StdRng::seed_from_u64(seed ^ 0x6874_6d6c_6675_7a7a); // "htmlfuzz"
    for i in 0..params.html_fuzz_cases {
        let base = HTML_CORPUS[i % HTML_CORPUS.len()].1;
        let mutant = mutate_html(&mut rng, base);
        cases += 1;
        check(&mutant, "mutant", &mut violations);
    }
    (cases, violations)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Budget;

    #[test]
    fn corpus_hex_parses() {
        let q = parse_hex(DNS_CORPUS[0].1);
        assert!(Message::decode(&q).is_ok(), "query_a corpus must be valid");
        assert!(Message::decode(&parse_hex(DNS_CORPUS[1].1)).is_err());
        assert!(Message::decode(&parse_hex(DNS_CORPUS[2].1)).is_err());
    }

    #[test]
    fn corpus_html_is_nonempty() {
        for (name, contents) in HTML_CORPUS {
            assert!(!contents.trim().is_empty(), "{name} empty");
        }
    }

    #[test]
    fn fuzzers_are_clean_and_deterministic() {
        let mut p = Budget::Ci.params();
        p.dns_fuzz_cases = 250;
        p.html_fuzz_cases = 120;
        let (c1, v1) = run_dnswire(11, &p);
        let (c2, v2) = run_dnswire(11, &p);
        assert_eq!((c1, &v1), (c2, &v2));
        assert!(v1.is_empty(), "{v1:#?}");
        let (c3, v3) = run_html(11, &p);
        let (c4, v4) = run_html(11, &p);
        assert_eq!((c3, &v3), (c4, &v4));
        assert!(v3.is_empty(), "{v3:#?}");
    }

    #[test]
    fn hex_helpers_round_trip() {
        assert_eq!(parse_hex("# c\n12ab\nCD"), vec![0x12, 0xAB, 0xCD]);
        assert_eq!(hex_string(&[0x12, 0xAB, 0xCD]), "12abcd");
    }
}
