//! Round-trip oracles: punycode, IDNA, and DNS wire encoding.

use crate::report::Violation;
use crate::shrink::minimize_str;
use crate::Params;
use rand::prelude::*;
use squatphi_dnswire::{Message, RData, Rcode, RecordType, ResourceRecord};
use squatphi_domain::{idna, punycode};
use std::net::{Ipv4Addr, Ipv6Addr};

/// The RFC 3492 §7.1 sample strings, `(description, unicode, punycode)`.
///
/// The Unicode column is the exact code-point sequence the RFC lists; the
/// encoded column is the RFC's published output. Sample (I) incorporates
/// RFC erratum 423: the mixed-case annotation put an uppercase `D` in the
/// published string, but the Russian input has no uppercase letters, so
/// the correct encoding is all-lowercase.
pub const RFC3492_VECTORS: &[(&str, &str, &str)] = &[
    (
        "(A) Arabic (Egyptian)",
        "ليهمابتكلموشعربي؟",
        "egbpdaj6bu4bxfgehfvwxn",
    ),
    (
        "(B) Chinese (simplified)",
        "他们为什么不说中文",
        "ihqwcrb4cv8a8dqg056pqjye",
    ),
    (
        "(C) Chinese (traditional)",
        "他們爲什麽不說中文",
        "ihqwctvzc91f659drss3x8bo0yb",
    ),
    (
        "(D) Czech",
        "Pročprostěnemluvíčesky",
        "Proprostnemluvesky-uyb24dma41a",
    ),
    (
        "(E) Hebrew",
        "למההםפשוטלאמדבריםעברית",
        "4dbcagdahymbxekheh6e0a7fei0b",
    ),
    (
        "(F) Hindi (Devanagari)",
        "यहलोगहिन्दीक्योंनहींबोलसकतेहैं",
        "i1baa7eci9glrd9b2ae1bj0hfcgg6iyaf8o0a1dig0cd",
    ),
    (
        "(G) Japanese (kanji and hiragana)",
        "なぜみんな日本語を話してくれないのか",
        "n8jok5ay5dzabd5bym9f0cm5685rrjetr6pdxa",
    ),
    (
        "(H) Korean (Hangul syllables)",
        "세계의모든사람들이한국어를이해한다면얼마나좋을까",
        "989aomsvi5e83db1d2a355cv1e0vak1dwrv93d5xbh15a0dt30a5jpsd879ccm6fea98c",
    ),
    (
        "(I) Russian (Cyrillic)",
        "почемужеонинеговорятпорусски",
        "b1abfaaepdrnnbgefbadotcwatmq2g4l",
    ),
    (
        "(J) Spanish",
        "PorquénopuedensimplementehablarenEspañol",
        "PorqunopuedensimplementehablarenEspaol-fmd56a",
    ),
    (
        "(K) Vietnamese",
        "TạisaohọkhôngthểchỉnóitiếngViệt",
        "TisaohkhngthchnitingVit-kjcr8268qyxafd2f1b9g",
    ),
    (
        "(L) 3<nen>B<gumi><kinpachi><sensei>",
        "3年B組金八先生",
        "3B-ww4c5e180e575a65lsy2b",
    ),
    (
        "(M) <amuro><namie>-with-SUPER-MONKEYS",
        "安室奈美恵-with-SUPER-MONKEYS",
        "-with-SUPER-MONKEYS-pc58ag80a8qai00g7n9n",
    ),
    (
        "(N) Hello-Another-Way-<sorezore><no><basho>",
        "Hello-Another-Way-それぞれの場所",
        "Hello-Another-Way--fc4qua05auwb3674vfr0b",
    ),
    (
        "(O) <hitotsu><yane><no><shita>2",
        "ひとつ屋根の下2",
        "2-u9tlzr9756bt3uc0v",
    ),
    (
        "(P) Maji<de>Koi<suru>5<byou><mae>",
        "MajiでKoiする5秒前",
        "MajiKoi5-783gue6qz075azm5e",
    ),
    (
        "(Q) <pafii>de<runba>",
        "パフィーdeルンバ",
        "de-jg4avhby1noc0d",
    ),
    (
        "(R) <sono><supiido><de>",
        "そのスピードで",
        "d9juau41awczczp",
    ),
    ("(S) -> $1.00 <-", "-> $1.00 <-", "-> $1.00 <--"),
];

/// Character pools for seeded Unicode string generation: ASCII, Latin
/// accents, Greek, Cyrillic and CJK — the scripts the homograph pipeline
/// actually meets.
const POOLS: &[&[char]] = &[
    &['a', 'b', 'c', 'k', 'x', 'y', 'z', '0', '9', '-'],
    &['à', 'é', 'ï', 'ö', 'ü', 'ñ', 'ç', 'ø'],
    &['α', 'β', 'γ', 'δ', 'κ', 'π', 'ρ'],
    &['а', 'е', 'о', 'р', 'с', 'х', 'і'],
    &['日', '本', '語', '金', '先', '生', '下'],
];

fn random_string(rng: &mut StdRng, max_len: usize) -> String {
    let len = rng.gen_range(0..=max_len);
    (0..len)
        .map(|_| {
            let pool = POOLS[rng.gen_range(0..POOLS.len())];
            pool[rng.gen_range(0..pool.len())]
        })
        .collect()
}

fn puny_violation(input: &str, detail: String) -> Violation {
    let shrunk = minimize_str(input, |s| match punycode::encode(s) {
        Ok(enc) => punycode::decode(&enc).map(|d| d != s).unwrap_or(true),
        Err(_) => false,
    });
    Violation {
        oracle: "punycode-roundtrip",
        input: shrunk,
        detail,
    }
}

/// RFC 3492 fixed vectors + seeded random encode/decode round trips.
pub(crate) fn run_punycode(seed: u64, params: &Params) -> (u64, Vec<Violation>) {
    let mut cases = 0u64;
    let mut violations = Vec::new();

    for &(name, unicode, encoded) in RFC3492_VECTORS {
        cases += 1;
        match punycode::encode(unicode) {
            Ok(got) if got == encoded => {}
            Ok(got) => violations.push(Violation {
                oracle: "punycode-roundtrip",
                input: unicode.to_string(),
                detail: format!("RFC 3492 {name}: encoded to {got:?}, RFC says {encoded:?}"),
            }),
            Err(e) => violations.push(Violation {
                oracle: "punycode-roundtrip",
                input: unicode.to_string(),
                detail: format!("RFC 3492 {name}: encode failed: {e}"),
            }),
        }
        cases += 1;
        match punycode::decode(encoded) {
            Ok(got) if got == unicode => {}
            Ok(got) => violations.push(Violation {
                oracle: "punycode-roundtrip",
                input: encoded.to_string(),
                detail: format!("RFC 3492 {name}: decoded to {got:?}"),
            }),
            Err(e) => violations.push(Violation {
                oracle: "punycode-roundtrip",
                input: encoded.to_string(),
                detail: format!("RFC 3492 {name}: decode failed: {e}"),
            }),
        }
    }

    let mut rng = StdRng::seed_from_u64(seed ^ 0x7075_6e79_636f_6465); // "punycode"
    for _ in 0..params.punycode_cases {
        let s = random_string(&mut rng, 12);
        cases += 1;
        match punycode::encode(&s) {
            Ok(enc) => {
                if !enc.is_ascii() {
                    violations.push(puny_violation(&s, format!("non-ASCII encoding {enc:?}")));
                    continue;
                }
                match punycode::decode(&enc) {
                    Ok(back) if back == s => {}
                    Ok(back) => violations.push(puny_violation(
                        &s,
                        format!("round trip {s:?} → {enc:?} → {back:?}"),
                    )),
                    Err(e) => violations.push(puny_violation(
                        &s,
                        format!("decode of own encoding {enc:?} failed: {e}"),
                    )),
                }
            }
            // Encode may legitimately overflow on pathological inputs;
            // our pools cannot trigger that, so treat it as a violation.
            Err(e) => violations.push(puny_violation(&s, format!("encode failed: {e}"))),
        }
    }
    (cases, violations)
}

/// Seeded Unicode domains through `to_ascii` → `to_unicode`.
pub(crate) fn run_idna(seed: u64, params: &Params) -> (u64, Vec<Violation>) {
    let mut rng = StdRng::seed_from_u64(seed ^ 0x6964_6e61); // "idna"
    let mut cases = 0u64;
    let mut violations = Vec::new();

    for _ in 0..params.idna_cases {
        let labels = rng.gen_range(1..=3usize);
        let domain = (0..labels)
            .map(|_| {
                let mut l = random_string(&mut rng, 8);
                if l.is_empty() || l.starts_with("xn--") || l.starts_with('-') {
                    // Keep labels plausible: non-empty, not accidentally
                    // ACE-prefixed (to_unicode would try to decode them).
                    l.insert(0, 'a');
                }
                l
            })
            .collect::<Vec<_>>()
            .join(".");
        cases += 1;
        let fail = |d: &str| match idna::to_ascii(d) {
            Ok(ascii) => !ascii.is_ascii() || idna::to_unicode(&ascii) != d,
            Err(_) => true,
        };
        if fail(&domain) {
            let shrunk = minimize_str(&domain, |s| fail(s));
            let detail = match idna::to_ascii(&shrunk) {
                Ok(ascii) => format!(
                    "round trip {shrunk:?} → {ascii:?} → {:?}",
                    idna::to_unicode(&ascii)
                ),
                Err(e) => format!("to_ascii failed: {e}"),
            };
            violations.push(Violation {
                oracle: "idna-roundtrip",
                input: shrunk,
                detail,
            });
        }
    }
    (cases, violations)
}

fn random_name(rng: &mut StdRng) -> String {
    let labels = rng.gen_range(1..=3usize);
    let mut parts: Vec<String> = (0..labels)
        .map(|_| {
            let len = rng.gen_range(1..=10usize);
            (0..len)
                .map(|_| {
                    let c = rng.gen_range(0..36u8);
                    if c < 26 {
                        (b'a' + c) as char
                    } else {
                        (b'0' + c - 26) as char
                    }
                })
                .collect()
        })
        .collect();
    parts.push(["com", "net", "org", "ua"][rng.gen_range(0..4usize)].to_string());
    parts.join(".")
}

fn random_rdata(rng: &mut StdRng) -> RData {
    match rng.gen_range(0..7u8) {
        0 => RData::A(Ipv4Addr::from(rng.gen::<u32>())),
        1 => RData::Aaaa(Ipv6Addr::from(
            ((rng.gen::<u64>() as u128) << 64) | rng.gen::<u64>() as u128,
        )),
        2 => RData::Ns(random_name(rng)),
        3 => RData::Cname(random_name(rng)),
        4 => RData::Mx {
            preference: rng.gen::<u16>(),
            exchange: random_name(rng),
        },
        5 => {
            let len = rng.gen_range(0..=40usize);
            RData::Txt(
                (0..len)
                    .map(|_| (b' ' + rng.gen_range(0..95u8)) as char)
                    .collect(),
            )
        }
        _ => RData::Soa {
            mname: random_name(rng),
            rname: random_name(rng),
            serial: rng.gen::<u32>(),
        },
    }
}

fn random_message(rng: &mut StdRng) -> Message {
    let q = Message::query(rng.gen::<u16>(), &random_name(rng), RecordType::A);
    if rng.gen_bool(0.3) {
        return q;
    }
    let mut r = Message::response_to(&q, Rcode::NoError);
    for _ in 0..rng.gen_range(0..=3usize) {
        r.answers.push(ResourceRecord {
            name: random_name(rng),
            ttl: rng.gen::<u32>() & 0xFFFF,
            rdata: random_rdata(rng),
        });
    }
    if rng.gen_bool(0.4) {
        r.authority.push(ResourceRecord {
            name: random_name(rng),
            ttl: 3600,
            rdata: random_rdata(rng),
        });
    }
    r
}

/// Seeded messages through `encode` → `decode`, compared structurally.
/// Failing messages are shrunk by dropping records while the mismatch
/// persists.
pub(crate) fn run_dnswire(seed: u64, params: &Params) -> (u64, Vec<Violation>) {
    let mut rng = StdRng::seed_from_u64(seed ^ 0x646e_7377_6972_6531); // "dnswire1"
    let mut cases = 0u64;
    let mut violations = Vec::new();

    let fails = |m: &Message| match m.encode() {
        Ok(wire) => Message::decode(&wire).map(|d| d != *m).unwrap_or(true),
        Err(_) => false, // unencodable (name too long) is out of scope
    };
    for _ in 0..params.dns_roundtrip_cases {
        let msg = random_message(&mut rng);
        cases += 1;
        if fails(&msg) {
            // Structural shrink: drop one record at a time while the
            // round trip keeps failing.
            let mut small = msg.clone();
            loop {
                let mut reduced = false;
                for i in 0..small.answers.len() {
                    let mut cand = small.clone();
                    cand.answers.remove(i);
                    if fails(&cand) {
                        small = cand;
                        reduced = true;
                        break;
                    }
                }
                for i in 0..small.authority.len() {
                    let mut cand = small.clone();
                    cand.authority.remove(i);
                    if fails(&cand) {
                        small = cand;
                        reduced = true;
                        break;
                    }
                }
                if !reduced {
                    break;
                }
            }
            let detail = match small.encode() {
                Ok(wire) => match Message::decode(&wire) {
                    Ok(back) => format!("decoded form differs: {back:?}"),
                    Err(e) => format!("decode of own encoding failed: {e:?}"),
                },
                Err(e) => format!("encode failed after shrink: {e:?}"),
            };
            violations.push(Violation {
                oracle: "dnswire-roundtrip",
                input: format!("{small:?}"),
                detail,
            });
        }
    }
    (cases, violations)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Budget;

    #[test]
    fn rfc3492_vectors_pass_verbatim() {
        for &(name, unicode, encoded) in RFC3492_VECTORS {
            assert_eq!(punycode::encode(unicode).unwrap(), encoded, "{name} encode");
            assert_eq!(punycode::decode(encoded).unwrap(), unicode, "{name} decode");
        }
    }

    #[test]
    fn random_oracles_are_clean_and_deterministic() {
        let mut p = Budget::Ci.params();
        p.punycode_cases = 150;
        p.idna_cases = 100;
        p.dns_roundtrip_cases = 100;
        let (c1, v1) = run_punycode(3, &p);
        let (c2, v2) = run_punycode(3, &p);
        assert_eq!((c1, &v1), (c2, &v2));
        assert!(v1.is_empty(), "{v1:#?}");
        let (_, vi) = run_idna(3, &p);
        assert!(vi.is_empty(), "{vi:#?}");
        let (_, vd) = run_dnswire(3, &p);
        assert!(vd.is_empty(), "{vd:#?}");
    }

    #[test]
    fn random_messages_have_varied_shapes() {
        let mut rng = StdRng::seed_from_u64(5);
        let mut with_answers = 0;
        for _ in 0..50 {
            if !random_message(&mut rng).answers.is_empty() {
                with_answers += 1;
            }
        }
        assert!(with_answers > 5, "answer sections never populated");
    }
}
