//! The generator↔detector differential oracle.
//!
//! Positive half: every candidate the forward generators emit for every
//! brand in the registry is indexed by [`PregeneratedDetector`] and then
//! streamed through the probing [`SquatDetector`]. The detector must hit,
//! and when its `(brand, type)` differs from the table's, the answer must
//! survive the independent [`justify`] predicates.
//!
//! Negative half: seeded random domains — overwhelmingly non-squatting —
//! go through both detectors; any hit must be justifiable and a
//! table-only hit (pregenerated yes, probing no) is a miss.
//!
//! [`PregeneratedDetector`]: squatphi_squat::pregen::PregeneratedDetector
//! [`SquatDetector`]: squatphi_squat::SquatDetector

use crate::justify::{justified, type_index};
use crate::report::Violation;
use crate::shrink::minimize_str;
use crate::Params;
use rand::prelude::*;
use squatphi_domain::confusables::ConfusableTable;
use squatphi_domain::DomainName;
use squatphi_squat::gen::generate_all;
use squatphi_squat::pregen::PregeneratedDetector;
use squatphi_squat::{BrandRegistry, SquatDetector};

fn registry(params: &Params) -> BrandRegistry {
    match params.registry_size {
        Some(n) => BrandRegistry::with_size(n),
        None => BrandRegistry::paper(),
    }
}

/// Streams every generated candidate through both strategies.
pub(crate) fn run_positive(params: &Params, coverage: &mut [u64; 5]) -> (u64, Vec<Violation>) {
    let reg = registry(params);
    let table = ConfusableTable::new();
    let detector = SquatDetector::new(&reg);
    let pregen = PregeneratedDetector::build(&reg, params.gen);
    let mut cases = 0u64;
    let mut violations = Vec::new();

    for brand in reg.brands() {
        for cand in generate_all(brand, params.gen) {
            // Candidates colliding with some brand's own registrable
            // domain are indexed by neither strategy.
            let Some(expected) = pregen.classify(&cand.domain) else {
                continue;
            };
            cases += 1;
            coverage[type_index(cand.squat_type)] += 1;
            match detector.classify(&cand.domain) {
                Some(got)
                    if (got.brand == expected.brand && got.squat_type == expected.squat_type)
                        || justified(&reg, &table, &cand.domain, &got) => {}
                Some(got) => {
                    let got_brand = reg
                        .get(got.brand)
                        .map(|b| b.label.as_str())
                        .unwrap_or("<invalid>");
                    violations.push(disagreement(
                        &reg,
                        &table,
                        &detector,
                        cand.domain.as_str(),
                        format!(
                            "unjustified answer ({got_brand}, {}); table says ({}, {})",
                            got.squat_type,
                            reg.get(expected.brand)
                                .map(|b| b.label.as_str())
                                .unwrap_or("?"),
                            expected.squat_type,
                        ),
                    ));
                }
                None => {
                    violations.push(disagreement(
                        &reg,
                        &table,
                        &detector,
                        cand.domain.as_str(),
                        format!(
                            "detector missed a generated ({}, {}) candidate",
                            reg.get(expected.brand)
                                .map(|b| b.label.as_str())
                                .unwrap_or("?"),
                            expected.squat_type,
                        ),
                    ));
                }
            }
        }
    }
    (cases, violations)
}

/// Seeded random domains through both detectors: hits must be justified.
pub(crate) fn run_negative(seed: u64, params: &Params) -> (u64, Vec<Violation>) {
    let reg = registry(params);
    let table = ConfusableTable::new();
    let detector = SquatDetector::new(&reg);
    let pregen = PregeneratedDetector::build(&reg, params.gen);
    let mut rng = StdRng::seed_from_u64(seed ^ 0x6e65_6761_7469_7665); // "negative"
    let tlds = ["com", "net", "org", "com.ua", "top", "pw"];
    let mut cases = 0u64;
    let mut violations = Vec::new();

    for _ in 0..params.negatives {
        let len = rng.gen_range(6..=14usize);
        let label: String = (0..len)
            .map(|_| (b'a' + rng.gen_range(0..26u8)) as char)
            .collect();
        let tld = tlds[rng.gen_range(0..tlds.len())];
        let Ok(domain) = DomainName::from_parts(&label, tld) else {
            continue;
        };
        cases += 1;
        let table_hit = pregen.classify(&domain);
        match detector.classify(&domain) {
            Some(got) if justified(&reg, &table, &domain, &got) => {}
            Some(got) => {
                violations.push(disagreement(
                    &reg,
                    &table,
                    &detector,
                    domain.as_str(),
                    format!(
                        "random domain claimed as ({}, {}) without justification",
                        reg.get(got.brand).map(|b| b.label.as_str()).unwrap_or("?"),
                        got.squat_type,
                    ),
                ));
            }
            None => {
                if let Some(expected) = table_hit {
                    violations.push(disagreement(
                        &reg,
                        &table,
                        &detector,
                        domain.as_str(),
                        format!(
                            "pregenerated table hit ({}, {}) but detector missed",
                            reg.get(expected.brand)
                                .map(|b| b.label.as_str())
                                .unwrap_or("?"),
                            expected.squat_type,
                        ),
                    ));
                }
            }
        }
    }
    (cases, violations)
}

/// Builds a violation, shrinking the domain to the smallest string on
/// which the detector still answers un-justifiably (or misses a domain
/// that still parses and justifies against some brand).
fn disagreement(
    reg: &BrandRegistry,
    table: &ConfusableTable,
    detector: &SquatDetector,
    domain: &str,
    detail: String,
) -> Violation {
    let shrunk = minimize_str(domain, |s| {
        let Ok(d) = DomainName::parse(s) else {
            return false;
        };
        match detector.classify(&d) {
            Some(m) => !justified(reg, table, &d, &m),
            // A miss only still "fails" if the shrunk domain remains a
            // plausible squat by *some* ground-truth reading; a random
            // non-matching string is not a counterexample.
            None => reg.brands().iter().any(|b| {
                use squatphi_squat::detect::SquatMatch;
                use squatphi_squat::SquatType;
                SquatType::ALL.iter().any(|&ty| {
                    justified(
                        reg,
                        table,
                        &d,
                        &SquatMatch {
                            brand: b.id,
                            squat_type: ty,
                        },
                    )
                })
            }),
        }
    });
    Violation {
        oracle: "differential",
        input: shrunk,
        detail,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Budget;

    fn tiny_params() -> Params {
        let mut p = Budget::Ci.params();
        p.registry_size = Some(20);
        p.gen = squatphi_squat::GenBudget {
            homograph: 10,
            bits: 8,
            typo: 10,
            combo: 12,
            wrong_tld: 4,
        };
        p.negatives = 120;
        p
    }

    #[test]
    fn positive_oracle_is_clean_and_covers_every_type() {
        let mut coverage = [0u64; 5];
        let (cases, violations) = run_positive(&tiny_params(), &mut coverage);
        assert!(cases > 500, "too few cases: {cases}");
        assert!(violations.is_empty(), "violations: {violations:#?}");
        for (i, n) in coverage.iter().enumerate() {
            assert!(*n > 0, "type {i} not covered");
        }
    }

    #[test]
    fn negative_oracle_is_clean_and_deterministic() {
        let p = tiny_params();
        let (cases_a, va) = run_negative(9, &p);
        let (cases_b, vb) = run_negative(9, &p);
        assert_eq!(cases_a, cases_b);
        assert_eq!(va, vb);
        assert!(va.is_empty(), "violations: {va:#?}");
        assert!(cases_a > 0);
    }
}
