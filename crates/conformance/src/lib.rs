//! Seeded conformance harness for the SquatPhi workspace.
//!
//! Three oracle families, all deterministic given a seed and a budget:
//!
//! * **Differential** — every candidate the forward generators emit
//!   ([`squatphi_squat::gen::generate_all`], indexed by the DNSTwist-style
//!   [`PregeneratedDetector`]) is streamed through the reverse probing
//!   [`SquatDetector`]. The two strategies must agree on match, brand and
//!   [`SquatType`]; a disagreement is arbitrated against independent
//!   ground-truth predicates ([`justify`]) and only an *unjustifiable*
//!   answer (or an outright miss) counts as a violation. A negative
//!   oracle feeds seeded random non-squatting domains through both and
//!   rejects unjustifiable hits.
//! * **Round-trip** — `punycode::encode`/`decode` (pinned to the RFC 3492
//!   §7.1 sample strings plus seeded random Unicode), `idna::to_ascii`/
//!   `to_unicode`, and `Message::encode`/`decode` over seeded random DNS
//!   messages.
//! * **Never-panic fuzzing** — `Message::decode` over seeded byte-level
//!   mutations of valid packets and `html::parse`/`tokenize` over seeded
//!   structure-aware mutations, each replaying a small on-disk corpus
//!   first. Any panic (caught with `catch_unwind`) is a violation.
//! * **Supervision** — seeded fault plans (injected analyzer panics,
//!   poisoned HTML, truncated crawl records) through the full supervised
//!   pipeline (`SquatPhi::try_run` on a micro config): no escaped panic,
//!   every completed run's report reconciles, and an interrupted +
//!   resumed checkpointed run fingerprints identically to an
//!   uninterrupted one with no partial checkpoint files.
//! * **Durability** — exhaustive single-byte damage (bitflips and
//!   truncations at every offset) over a real two-generation
//!   `DurableStore`: the reader never panics, any single damaged
//!   generation recovers the older body byte-exactly, both-damaged
//!   stores classify `Unrecoverable`, and the read ledger reconciles
//!   after every load.
//! * **pHash index** — seeded hash corpora (uniform, clustered, and
//!   bucket-flooding degenerate distributions) through
//!   `imghash::index::HashIndex` vs the preserved linear oracle:
//!   set-identical `within` results at radii 0..=16, identical k-NN
//!   under the insertion-order tie-break, and an exactly-reconciling
//!   probe ledger.
//!
//! Violating inputs are minimized by a greedy delta-debugging loop
//! ([`shrink`]) before they are reported, so a red run hands you the
//! smallest reproducing input, not a 300-byte blob.
//!
//! The harness runs three ways: `squatphi conformance` (CLI, `--json`
//! summary in the `ScanMetrics` style), `cargo test -p
//! squatphi-conformance` (CI-sized budget), and programmatically via
//! [`run`].
//!
//! [`PregeneratedDetector`]: squatphi_squat::pregen::PregeneratedDetector
//! [`SquatDetector`]: squatphi_squat::SquatDetector
//! [`SquatType`]: squatphi_squat::SquatType

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod differential;
mod durability;
mod fuzz;
pub mod justify;
mod phash_index;
mod report;
mod roundtrip;
mod scan_diff;
pub mod shrink;
mod supervision;

pub use report::{ConformanceReport, OracleOutcome, Violation};
pub use roundtrip::RFC3492_VECTORS;

use squatphi_squat::gen::GenBudget;

/// How much work each oracle does. Both presets are deterministic; `Full`
/// streams the complete 702-brand registry and is meant for release gates,
/// `Ci` is sized so `cargo test` stays fast.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Budget {
    /// CI-sized: a 150-brand registry slice and a few hundred cases per
    /// oracle (a couple of seconds in debug builds).
    Ci,
    /// The full paper registry and the default generation budget.
    Full,
}

impl Budget {
    /// Parses a budget name (`ci` | `full`).
    pub fn parse(s: &str) -> Option<Budget> {
        match s {
            "ci" => Some(Budget::Ci),
            "full" => Some(Budget::Full),
            _ => None,
        }
    }

    /// The budget's canonical name.
    pub fn name(&self) -> &'static str {
        match self {
            Budget::Ci => "ci",
            Budget::Full => "full",
        }
    }

    pub(crate) fn params(&self) -> Params {
        match self {
            Budget::Ci => Params {
                registry_size: Some(150),
                gen: GenBudget {
                    homograph: 60,
                    bits: 40,
                    typo: 80,
                    combo: 100,
                    wrong_tld: 10,
                },
                negatives: 800,
                punycode_cases: 400,
                idna_cases: 300,
                dns_roundtrip_cases: 300,
                dns_fuzz_cases: 700,
                html_fuzz_cases: 300,
                supervision_plans: 2,
                durability_bodies: 2,
                scan_diff_negatives: 1500,
                phash_corpus: 2500,
                phash_queries: 40,
            },
            Budget::Full => Params {
                registry_size: None,
                gen: GenBudget::default(),
                negatives: 5000,
                punycode_cases: 2000,
                idna_cases: 1500,
                dns_roundtrip_cases: 1500,
                dns_fuzz_cases: 5000,
                html_fuzz_cases: 1500,
                supervision_plans: 3,
                durability_bodies: 6,
                scan_diff_negatives: 8000,
                phash_corpus: 20_000,
                phash_queries: 120,
            },
        }
    }
}

/// Per-oracle case counts derived from a [`Budget`].
#[derive(Debug, Clone, Copy)]
pub(crate) struct Params {
    /// `Some(n)` → `BrandRegistry::with_size(n)`; `None` → full paper
    /// registry.
    pub registry_size: Option<usize>,
    /// Generation budget for the differential oracle.
    pub gen: GenBudget,
    /// Random non-squatting domains for the negative oracle.
    pub negatives: usize,
    /// Random punycode round-trip strings (on top of the RFC vectors).
    pub punycode_cases: usize,
    /// Random IDNA round-trip domains.
    pub idna_cases: usize,
    /// Random DNS message round-trips.
    pub dns_roundtrip_cases: usize,
    /// Mutated DNS packets fed to the never-panic fuzzer.
    pub dns_fuzz_cases: usize,
    /// Mutated HTML documents fed to the never-panic fuzzer.
    pub html_fuzz_cases: usize,
    /// Seeded fault plans driven through the supervised pipeline (each
    /// plan is one full `try_run`; one checkpoint/resume scenario rides
    /// on top).
    pub supervision_plans: usize,
    /// Seeded store bodies for the durability oracle; the byte-level
    /// damage sweep per body is exhaustive, so this scales total work.
    pub durability_bodies: usize,
    /// Seeded random domains for the legacy↔fingerprint matcher
    /// differential (`scan-diff`), on top of the exhaustive generated
    /// candidates and the snapshot-level scan it always runs.
    pub scan_diff_negatives: usize,
    /// Entries per corpus family for the pHash-index differential
    /// (`phash-index`); the degenerate corpora use a quarter of this.
    pub phash_corpus: usize,
    /// Queries per corpus family for the pHash-index differential.
    pub phash_queries: usize,
}

/// One harness invocation: a seed and a budget.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ConformanceConfig {
    /// Seed for every randomized oracle (the differential oracle itself is
    /// exhaustive over the generators and uses the seed only for the
    /// negative half).
    pub seed: u64,
    /// Work budget.
    pub budget: Budget,
}

/// Runs every oracle under `config` and collects the report. Two calls
/// with the same config produce byte-identical [`ConformanceReport::to_json`]
/// output (timings excluded).
pub fn run(config: &ConformanceConfig) -> ConformanceReport {
    let params = config.budget.params();
    let mut report = ConformanceReport::new(config.seed, config.budget.name());

    let mut coverage = [0u64; 5];
    report.push(timed("differential", || {
        differential::run_positive(&params, &mut coverage)
    }));
    report.type_coverage = coverage;
    report.push(timed("negative", || {
        differential::run_negative(config.seed, &params)
    }));
    report.push(timed("punycode-roundtrip", || {
        roundtrip::run_punycode(config.seed, &params)
    }));
    report.push(timed("idna-roundtrip", || {
        roundtrip::run_idna(config.seed, &params)
    }));
    report.push(timed("dnswire-roundtrip", || {
        roundtrip::run_dnswire(config.seed, &params)
    }));
    report.push(timed("dnswire-fuzz", || {
        fuzz::run_dnswire(config.seed, &params)
    }));
    report.push(timed("html-fuzz", || fuzz::run_html(config.seed, &params)));
    report.push(timed("supervision", || {
        supervision::run_supervision(config.seed, &params)
    }));
    report.push(timed("durability", || {
        durability::run_durability(config.seed, &params)
    }));
    report.push(timed("scan-diff", || {
        scan_diff::run_scan_diff(config.seed, &params)
    }));
    report.push(timed("phash-index", || {
        phash_index::run_phash_index(config.seed, &params)
    }));
    report
}

fn timed(name: &'static str, body: impl FnOnce() -> (u64, Vec<Violation>)) -> OracleOutcome {
    let start = std::time::Instant::now();
    let (cases, violations) = body();
    OracleOutcome {
        name,
        cases,
        violations,
        nanos: start.elapsed().as_nanos(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn budget_names_round_trip() {
        for b in [Budget::Ci, Budget::Full] {
            assert_eq!(Budget::parse(b.name()), Some(b));
        }
        assert_eq!(Budget::parse("bogus"), None);
    }

    #[test]
    fn ci_params_are_smaller_than_full() {
        let ci = Budget::Ci.params();
        let full = Budget::Full.params();
        assert!(ci.registry_size.is_some() && full.registry_size.is_none());
        assert!(ci.gen.combo < full.gen.combo);
        assert!(ci.dns_fuzz_cases < full.dns_fuzz_cases);
    }
}
