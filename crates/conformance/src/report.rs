//! Harness results and their text/JSON renderings.
//!
//! JSON goes through the shared [`squatphi_telemetry::Json`] encoder (the
//! workspace builds without registry access, so no serde). The default
//! rendering is byte-deterministic for a given seed and budget: per-oracle
//! wall-clock nanos exist in the struct but are only serialized when the
//! caller explicitly opts in (`--timings`), so two identical runs diff
//! clean — the same opt-in rule every other `--json` surface applies.

use squatphi_squat::SquatType;
use squatphi_telemetry::Json;
use std::fmt::Write as _;

/// One violating input, minimized by the shrinking loop before reporting.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Violation {
    /// Oracle that found it.
    pub oracle: &'static str,
    /// The shrunk input (domains and HTML verbatim, packets as hex).
    pub input: String,
    /// What went wrong, human-readable.
    pub detail: String,
}

/// The outcome of one oracle.
#[derive(Debug, Clone)]
pub struct OracleOutcome {
    /// Oracle name.
    pub name: &'static str,
    /// Inputs checked.
    pub cases: u64,
    /// Violations found (empty on a healthy tree).
    pub violations: Vec<Violation>,
    /// Wall-clock nanos spent (excluded from deterministic output).
    pub nanos: u128,
}

/// Everything one [`crate::run`] produced.
#[derive(Debug, Clone)]
pub struct ConformanceReport {
    /// Seed the harness ran with.
    pub seed: u64,
    /// Budget name (`ci` | `full`).
    pub budget: &'static str,
    /// Per-oracle outcomes, in execution order.
    pub oracles: Vec<OracleOutcome>,
    /// Differential-oracle cases per squatting type, in
    /// [`SquatType::ALL`] order — the harness asserts every type is
    /// actually exercised, so a generator regression can't silently turn
    /// the oracle vacuous.
    pub type_coverage: [u64; 5],
}

impl ConformanceReport {
    pub(crate) fn new(seed: u64, budget: &'static str) -> Self {
        ConformanceReport {
            seed,
            budget,
            oracles: Vec::new(),
            type_coverage: [0; 5],
        }
    }

    pub(crate) fn push(&mut self, outcome: OracleOutcome) {
        self.oracles.push(outcome);
    }

    /// Total inputs checked across all oracles.
    pub fn total_cases(&self) -> u64 {
        self.oracles.iter().map(|o| o.cases).sum()
    }

    /// Total violations across all oracles.
    pub fn total_violations(&self) -> usize {
        self.oracles.iter().map(|o| o.violations.len()).sum()
    }

    /// Pretty JSON (two-space indent, shared telemetry encoder).
    /// `with_timings` adds per-oracle `nanos`; without it the output is a
    /// pure function of seed+budget.
    pub fn to_json(&self, with_timings: bool) -> String {
        let mut coverage = Json::obj();
        for (ty, n) in SquatType::ALL.iter().zip(self.type_coverage.iter()) {
            coverage.push(ty.name(), Json::U64(*n));
        }
        let oracles = self
            .oracles
            .iter()
            .map(|o| {
                let mut entry = Json::obj();
                entry.push("name", Json::Str(o.name.to_string()));
                entry.push("cases", Json::U64(o.cases));
                entry.push(
                    "violations",
                    Json::Arr(
                        o.violations
                            .iter()
                            .map(|v| {
                                let mut violation = Json::obj();
                                violation.push("oracle", Json::Str(v.oracle.to_string()));
                                violation.push("input", Json::Str(v.input.clone()));
                                violation.push("detail", Json::Str(v.detail.clone()));
                                violation
                            })
                            .collect(),
                    ),
                );
                if with_timings {
                    entry.push("nanos", Json::U64(o.nanos as u64));
                }
                entry
            })
            .collect();
        let mut doc = Json::obj();
        doc.push("seed", Json::U64(self.seed));
        doc.push("budget", Json::Str(self.budget.to_string()));
        doc.push("cases", Json::U64(self.total_cases()));
        doc.push("violations", Json::U64(self.total_violations() as u64));
        doc.push("type_coverage", coverage);
        doc.push("oracles", Json::Arr(oracles));
        doc.render()
    }

    /// Human-readable table, `ScanMetrics` report style.
    pub fn render_text(&self, with_timings: bool) -> String {
        let mut out = format!(
            "conformance: seed {}, budget {}\n\n  {:<22} {:>10} {:>11}{}\n",
            self.seed,
            self.budget,
            "oracle",
            "cases",
            "violations",
            if with_timings { "          ms" } else { "" },
        );
        for o in &self.oracles {
            let _ = write!(
                out,
                "  {:<22} {:>10} {:>11}",
                o.name,
                o.cases,
                o.violations.len()
            );
            if with_timings {
                let _ = write!(out, " {:>11.1}", o.nanos as f64 / 1e6);
            }
            out.push('\n');
        }
        out.push_str("\n  differential type coverage:");
        for (ty, n) in SquatType::ALL.iter().zip(self.type_coverage.iter()) {
            let _ = write!(out, " {}={n}", ty.name());
        }
        let _ = write!(
            out,
            "\n  total: {} cases, {} violation(s)\n",
            self.total_cases(),
            self.total_violations()
        );
        for o in &self.oracles {
            for v in &o.violations {
                let _ = write!(
                    out,
                    "\n  VIOLATION [{}]\n    input:  {}\n    detail: {}\n",
                    v.oracle, v.input, v.detail
                );
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> ConformanceReport {
        let mut r = ConformanceReport::new(7, "ci");
        r.type_coverage = [1, 2, 3, 4, 5];
        r.push(OracleOutcome {
            name: "differential",
            cases: 100,
            violations: vec![],
            nanos: 1_500_000,
        });
        r.push(OracleOutcome {
            name: "html-fuzz",
            cases: 10,
            violations: vec![Violation {
                oracle: "html-fuzz",
                input: "<a\"b".into(),
                detail: "panicked".into(),
            }],
            nanos: 2_000_000,
        });
        r
    }

    #[test]
    fn totals_and_text() {
        let r = sample();
        assert_eq!(r.total_cases(), 110);
        assert_eq!(r.total_violations(), 1);
        let text = r.render_text(false);
        assert!(text.contains("differential"));
        assert!(text.contains("VIOLATION [html-fuzz]"));
        assert!(!text.contains("ms"));
        assert!(r.render_text(true).contains("ms"));
    }

    #[test]
    fn json_hides_nanos_unless_asked() {
        let r = sample();
        let plain = r.to_json(false);
        assert!(!plain.contains("nanos"));
        assert!(plain.contains("\"cases\": 110"));
        assert!(plain.contains("\\\"b")); // escaped violation input
        assert!(plain.contains("\"Homograph\": 1"));
        assert!(r.to_json(true).contains("\"nanos\": 1500000"));
    }

    #[test]
    fn json_is_reproducible_for_equal_reports() {
        assert_eq!(sample().to_json(false), sample().to_json(false));
        // Timings differ between the two constructions only if nanos do;
        // here they're fixed, so even the timed form matches.
        assert_eq!(sample().to_json(true), sample().to_json(true));
    }

    #[test]
    fn escape_covers_controls() {
        // The report leans on the shared telemetry escaper.
        assert_eq!(
            squatphi_telemetry::escape("a\"b\\c\nd\u{1}"),
            "a\\\"b\\\\c\\nd\\u0001"
        );
    }
}
