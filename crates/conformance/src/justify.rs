//! Independent ground-truth predicates for detector answers.
//!
//! The differential oracle cannot treat `PregeneratedDetector` as the
//! single source of truth: several generated candidates have *multiple*
//! correct readings (a `g`↔`q` transposition is both a Typo and a
//! canonical-class Homograph; a 1-bit flip of one brand can be the typo
//! of another). Instead of hard-coding the probing detector's precedence
//! into the oracle, each claimed `(brand, type)` is re-derived here from
//! first principles — edit distances, confusable folds, token structure —
//! re-implemented *without* reference to the detector's index structures.
//! A detector answer that passes its predicate is correct even when the
//! pregenerated table attributes the candidate differently; one that
//! fails is a violation.

use squatphi_domain::confusables::ConfusableTable;
use squatphi_domain::{distance, punycode, DomainName};
use squatphi_squat::detect::SquatMatch;
use squatphi_squat::words::COMBO_WORDS;
use squatphi_squat::{BrandRegistry, SquatType};

/// Maps a [`SquatType`] to its index in [`SquatType::ALL`].
pub fn type_index(ty: SquatType) -> usize {
    SquatType::ALL
        .iter()
        .position(|&t| t == ty)
        .expect("SquatType::ALL covers every variant")
}

/// Whether `m` is a defensible classification of `domain`: the claimed
/// brand/type pair must satisfy the ground-truth predicate for that
/// squatting type.
pub fn justified(
    registry: &BrandRegistry,
    table: &ConfusableTable,
    domain: &DomainName,
    m: &SquatMatch,
) -> bool {
    let Some(brand) = registry.get(m.brand) else {
        return false;
    };
    // A brand's own registrable domain is never squatting, whatever the
    // claimed type.
    if domain.registrable() == brand.domain.registrable() {
        return false;
    }
    let label = domain.core_label();
    let target = brand.label.as_str();
    match m.squat_type {
        SquatType::WrongTld => label == target,
        SquatType::Bits => distance::bit_flip_distance(label, target) == Some(1),
        SquatType::Typo => typo_justified(label, target),
        SquatType::Homograph => homograph_justified(table, label, target),
        SquatType::Combo => combo_justified(label, target),
    }
}

/// Typo = damerau-levenshtein 1 that is *not* a plain substitution
/// (insertion, omission, repetition or adjacent transposition — the
/// paper's typo set; same-length single substitutions belong to the
/// homograph/bits families).
fn typo_justified(label: &str, target: &str) -> bool {
    distance::damerau_levenshtein(label, target) == 1
        && !(label.len() == target.len() && distance::levenshtein(label, target) == 1)
}

/// Homograph = the label reaches the brand under the visual folds: the
/// canonical confusable-class fold (possibly after punycode decoding and
/// the Unicode skeleton fold), or a single character-sequence fold
/// (`rn`→`m`, `vv`→`w`, …).
fn homograph_justified(table: &ConfusableTable, label: &str, target: &str) -> bool {
    let folded;
    let ascii: &str = if let Some(ext) = label.strip_prefix("xn--") {
        match punycode::decode(ext) {
            Ok(unicode) => {
                folded = table.skeleton(&unicode);
                &folded
            }
            Err(_) => label,
        }
    } else {
        label
    };
    if canon_eq(ascii, target) {
        return true;
    }
    // One sequence fold: replace a single occurrence of a multi-char
    // lookalike (e.g. `rn`) with the letter it imitates (e.g. `m`).
    for c in b'a'..=b'z' {
        let c = c as char;
        for seq in table.sequences(c) {
            let mut start = 0;
            while let Some(off) = ascii[start..].find(seq) {
                let pos = start + off;
                let mut cand = String::with_capacity(ascii.len());
                cand.push_str(&ascii[..pos]);
                cand.push(c);
                cand.push_str(&ascii[pos + seq.len()..]);
                if canon_eq(&cand, target) {
                    return true;
                }
                start = pos + 1;
            }
        }
    }
    false
}

/// Whether two labels are equal under the canonical confusable-class fold
/// (`0`/`o`, `5`/`s`, `1`/`i`/`l`, `q`/`g`, `u`/`v`, `2`/`z`).
fn canon_eq(a: &str, b: &str) -> bool {
    if a.len() != b.len() {
        return false;
    }
    a.bytes().zip(b.bytes()).all(|(x, y)| {
        let (x, y) = if x.is_ascii() && y.is_ascii() {
            (
                ConfusableTable::canonical_fold_byte(x),
                ConfusableTable::canonical_fold_byte(y),
            )
        } else {
            (x, y)
        };
        x == y
    })
}

/// Combo = the brand appears as a hyphen-separated token, or heads/tails
/// a token whose remainder is plausible: any remainder for brands of 4+
/// characters, a known combo word for shorter brands (so `adpfreight`
/// counts but `btree` does not).
fn combo_justified(label: &str, target: &str) -> bool {
    for token in label.split('-') {
        if token == target {
            return true;
        }
        if token.len() <= target.len() {
            continue;
        }
        if let Some(rest) = token.strip_prefix(target) {
            if target.len() >= 4 || COMBO_WORDS.contains(&rest) {
                return true;
            }
        }
        if let Some(rest) = token.strip_suffix(target) {
            if target.len() >= 4 || COMBO_WORDS.contains(&rest) {
                return true;
            }
        }
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;
    use squatphi_squat::SquatDetector;

    fn setup() -> (BrandRegistry, ConfusableTable) {
        (BrandRegistry::paper(), ConfusableTable::new())
    }

    fn check(reg: &BrandRegistry, table: &ConfusableTable, domain: &str, expect: bool) {
        let det = SquatDetector::new(reg);
        let d = DomainName::parse(domain).unwrap();
        let m = det.classify(&d).expect("detector should match");
        assert_eq!(
            justified(reg, table, &d, &m),
            expect,
            "{domain} → {:?}",
            m.squat_type
        );
    }

    #[test]
    fn detector_answers_on_known_squats_are_justified() {
        let (reg, table) = setup();
        for domain in [
            "faceb00k.pw",         // homograph (digit swap)
            "a11iancebank.com.ua", // homograph (multi-position)
            "fernrnart.co",        // homograph (sequence fold)
            "xn--fcebook-8va.com", // homograph (IDN)
            "facebnok.com",        // bits
            "fcaebook.com",        // typo (transposition)
            "facebook-login.top",  // combo
            "go-adpfreight.com",   // combo (short brand, combo-word rest)
            "facebook.click",      // wrongTLD
        ] {
            check(&reg, &table, domain, true);
        }
    }

    #[test]
    fn wrong_claims_are_rejected() {
        let (reg, table) = setup();
        let fb = reg.by_label("facebook").unwrap().id;
        let d = DomainName::parse("winterpillow.net").unwrap();
        for ty in SquatType::ALL {
            let m = SquatMatch {
                brand: fb,
                squat_type: ty,
            };
            assert!(
                !justified(&reg, &table, &d, &m),
                "winterpillow accepted as {ty:?} of facebook"
            );
        }
    }

    #[test]
    fn brand_own_domain_is_never_justified() {
        let (reg, table) = setup();
        let fb = reg.by_label("facebook").unwrap();
        let m = SquatMatch {
            brand: fb.id,
            squat_type: SquatType::WrongTld,
        };
        assert!(!justified(&reg, &table, &fb.domain, &m));
    }

    #[test]
    fn canon_classes_match_the_confusable_table() {
        assert!(canon_eq("bloqqer", "blogger"));
        assert!(canon_eq("net553", "netss3"));
        assert!(!canon_eq("blogger", "bloggr"));
        assert!(!canon_eq("abc", "abd"));
    }

    #[test]
    fn short_brand_combo_gate() {
        assert!(combo_justified("go-adpfreight", "adp"));
        assert!(!combo_justified("my-btree", "bt"));
        assert!(combo_justified("paypal-zanzibar", "paypal"));
    }

    #[test]
    fn type_index_is_total() {
        for (i, ty) in SquatType::ALL.iter().enumerate() {
            assert_eq!(type_index(*ty), i);
        }
    }
}
