//! Supervision oracle: seeded fault plans through the full pipeline.
//!
//! Contract under test, per plan:
//!
//! * `SquatPhi::try_run` never lets a panic escape — injected analyzer
//!   panics are isolated per record,
//! * the run either completes `Ok` with a *reconciled*
//!   [`SupervisionReport`] (every injected fault accounted for as
//!   quarantined, recovered or degraded) or fails with a structured
//!   [`PipelineError`] — and never an unrequested `Interrupted`,
//! * a checkpointed run interrupted after the crawl stage resumes to a
//!   result with an identical [`PipelineResult::fingerprint`], leaving no
//!   partial (`.tmp`) checkpoint files behind.
//!
//! [`SupervisionReport`]: squatphi::SupervisionReport
//! [`PipelineError`]: squatphi::PipelineError
//! [`PipelineResult::fingerprint`]: squatphi::pipeline::PipelineResult::fingerprint

use crate::{Params, Violation};
use squatphi::{PipelineFaultPlan, PipelineStage, RunOptions, SimConfig, SquatPhi};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};

/// Concurrent harness invocations (the oracle test suite runs several in
/// parallel with the same seed) must not share a checkpoint directory.
static INVOCATION: AtomicU64 = AtomicU64::new(0);

/// The plan matrix, cycled by case index: a mixed storm, a panic-heavy
/// plan, and a poison/truncation-heavy plan.
fn plan_for(index: usize, seed: u64) -> PipelineFaultPlan {
    let plan_seed = seed ^ ((index as u64 + 1).wrapping_mul(0x9e37_79b9_7f4a_7c15));
    match index % 3 {
        0 => PipelineFaultPlan::none()
            .analyzer_panics(60)
            .flaky_panics(40)
            .poisons(50)
            .truncations(30),
        1 => PipelineFaultPlan::none()
            .analyzer_panics(150)
            .flaky_panics(80),
        _ => PipelineFaultPlan::none().poisons(120).truncations(80),
    }
    .with_seed(plan_seed)
}

pub(crate) fn run_supervision(seed: u64, params: &Params) -> (u64, Vec<Violation>) {
    let mut cases = 0u64;
    let mut violations = Vec::new();
    let config = SimConfig::micro();

    for index in 0..params.supervision_plans {
        let plan = plan_for(index, seed);
        cases += 1;
        let opts = RunOptions {
            faults: plan,
            ..RunOptions::default()
        };
        match catch_unwind(AssertUnwindSafe(|| SquatPhi::try_run(&config, &opts))) {
            Err(_) => violations.push(Violation {
                oracle: "supervision",
                input: plan.canonical(),
                detail: "panic escaped try_run".into(),
            }),
            Ok(Ok(result)) => {
                let report = &result.supervision;
                if !report.reconciles() {
                    violations.push(Violation {
                        oracle: "supervision",
                        input: plan.canonical(),
                        detail: format!("unreconciled report: {}", report.report_line()),
                    });
                }
                if result.train_split != result.eval.train_shape {
                    violations.push(Violation {
                        oracle: "supervision",
                        input: plan.canonical(),
                        detail: format!(
                            "train_split {:?} != train_shape {:?} after quarantine",
                            result.train_split, result.eval.train_shape
                        ),
                    });
                }
            }
            Ok(Err(e)) if e.is_interrupted() => violations.push(Violation {
                oracle: "supervision",
                input: plan.canonical(),
                detail: "unrequested Interrupted error".into(),
            }),
            // A structured PipelineError is an acceptable outcome of a
            // fault storm — the contract is no panic and no lie.
            Ok(Err(_)) => {}
        }
    }

    // Checkpoint/resume case: interrupt after the crawl checkpoint (the
    // deterministic kill stand-in), resume, and compare against an
    // uninterrupted run of the same plan.
    cases += 1;
    let plan = plan_for(0, seed);
    let invocation = INVOCATION.fetch_add(1, Ordering::Relaxed);
    let dir: PathBuf = std::env::temp_dir().join(format!(
        "squatphi-conformance-supervision-{}-{seed}-{invocation}",
        std::process::id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    let outcome = catch_unwind(AssertUnwindSafe(|| resume_case(&config, plan, &dir)));
    match outcome {
        Err(_) => violations.push(Violation {
            oracle: "supervision",
            input: plan.canonical(),
            detail: "panic escaped the checkpoint/resume scenario".into(),
        }),
        Ok(Err(detail)) => violations.push(Violation {
            oracle: "supervision",
            input: plan.canonical(),
            detail,
        }),
        Ok(Ok(())) => {}
    }
    let _ = std::fs::remove_dir_all(&dir);

    (cases, violations)
}

fn resume_case(config: &SimConfig, plan: PipelineFaultPlan, dir: &PathBuf) -> Result<(), String> {
    let opts = |resume: bool, stop: Option<PipelineStage>| RunOptions {
        checkpoint_dir: Some(dir.clone()),
        resume,
        stop_after: stop,
        faults: plan,
        ..RunOptions::default()
    };
    match SquatPhi::try_run(config, &opts(false, Some(PipelineStage::Crawl))) {
        Err(e) if e.is_interrupted() => {}
        Err(e) => return Err(format!("interrupt run failed: {e}")),
        Ok(_) => return Err("stop_after crawl did not interrupt".into()),
    }
    if let Some(leftover) = tmp_leftover(dir) {
        return Err(format!("partial checkpoint write left behind: {leftover}"));
    }
    let resumed =
        SquatPhi::try_run(config, &opts(true, None)).map_err(|e| format!("resume failed: {e}"))?;
    if !resumed.supervision.reconciles() {
        return Err(format!(
            "resumed report unreconciled: {}",
            resumed.supervision.report_line()
        ));
    }
    let direct = SquatPhi::try_run(
        config,
        &RunOptions {
            faults: plan,
            ..RunOptions::default()
        },
    )
    .map_err(|e| format!("direct run failed: {e}"))?;
    if resumed.fingerprint() != direct.fingerprint() {
        return Err("resumed fingerprint differs from the uninterrupted run".into());
    }
    if let Some(leftover) = tmp_leftover(dir) {
        return Err(format!("partial checkpoint write left behind: {leftover}"));
    }
    Ok(())
}

fn tmp_leftover(dir: &PathBuf) -> Option<String> {
    let entries = std::fs::read_dir(dir).ok()?;
    for e in entries.flatten() {
        let name = e.file_name().to_string_lossy().into_owned();
        if name.ends_with(".tmp") {
            return Some(name);
        }
    }
    None
}
