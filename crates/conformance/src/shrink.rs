//! Greedy delta-debugging minimizers for violating inputs.
//!
//! ddmin-style: try removing progressively smaller chunks while the
//! caller's predicate still reports a failure. The predicate sees every
//! candidate, so it must be a *total* check (return `false` for inputs
//! that no longer parse, not panic). A call budget bounds the worst case
//! so a pathological predicate can't hang the harness.

/// Upper bound on predicate evaluations per minimization.
const CALL_BUDGET: usize = 4000;

/// Minimizes a string: returns the smallest found input for which
/// `still_fails` holds. `input` itself must fail; it is returned unchanged
/// if no smaller failing input is found.
pub fn minimize_str(input: &str, mut still_fails: impl FnMut(&str) -> bool) -> String {
    let chars: Vec<char> = input.chars().collect();
    let out = minimize(&chars, &mut |cand| {
        let s: String = cand.iter().collect();
        still_fails(&s)
    });
    out.into_iter().collect()
}

/// Minimizes a byte string under `still_fails`.
pub fn minimize_bytes(input: &[u8], mut still_fails: impl FnMut(&[u8]) -> bool) -> Vec<u8> {
    minimize(input, &mut |cand| still_fails(cand))
}

fn minimize<T: Clone>(input: &[T], still_fails: &mut dyn FnMut(&[T]) -> bool) -> Vec<T> {
    let mut cur: Vec<T> = input.to_vec();
    let mut calls = 0usize;
    let mut chunk = (cur.len() / 2).max(1);
    loop {
        let mut progress = false;
        let mut i = 0;
        while i < cur.len() && calls < CALL_BUDGET {
            let end = (i + chunk).min(cur.len());
            if end - i == cur.len() {
                // Never propose the empty input.
                break;
            }
            let mut cand = cur.clone();
            cand.drain(i..end);
            calls += 1;
            if !cand.is_empty() && still_fails(&cand) {
                cur = cand;
                progress = true;
                // Retry the same offset: the next chunk slid into place.
            } else {
                i = end;
            }
        }
        if calls >= CALL_BUDGET {
            break;
        }
        if !progress {
            if chunk == 1 {
                break;
            }
            chunk = (chunk / 2).max(1);
        }
    }
    cur
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shrinks_to_the_failing_core() {
        // Failure: contains the byte sequence "xy".
        let input = "aaaaaaaaaaaaaaaaxybbbbbbbbbbbbbbbb";
        let out = minimize_str(input, |s| s.contains("xy"));
        assert_eq!(out, "xy");
    }

    #[test]
    fn returns_input_when_nothing_smaller_fails() {
        let out = minimize_str("ab", |s| s == "ab");
        assert_eq!(out, "ab");
    }

    #[test]
    fn never_proposes_empty() {
        // Predicate that "fails" on everything: the minimizer must still
        // return a non-empty input.
        let out = minimize_bytes(&[1, 2, 3, 4], |_| true);
        assert_eq!(out.len(), 1);
    }

    #[test]
    fn bytes_shrink_like_strings() {
        let mut input = vec![0u8; 64];
        input[40] = 0xC0;
        let out = minimize_bytes(&input, |b| b.contains(&0xC0));
        assert_eq!(out, vec![0xC0]);
    }

    #[test]
    fn terminates_under_the_call_budget() {
        let input = vec![7u8; 10_000];
        let mut calls = 0usize;
        let _ = minimize_bytes(&input, |_| {
            calls += 1;
            true
        });
        assert!(calls <= CALL_BUDGET);
    }
}
