//! The pHash-index differential oracle (`phash-index`).
//!
//! `imghash::index::HashIndex` (multi-index hashing with a BK-tree
//! fallback) carries the same compatibility contract the scan rebuild
//! did: **set-identical answers** to the preserved linear scan
//! (`imghash::index::linear`), at every radius, under the documented
//! tie-breaks (`within` → ascending insertion id; `nearest` → `(distance,
//! insertion id)`). This oracle streams seeded corpora through both:
//!
//! * **uniform** — random 64-bit hashes (the MIH fast path),
//! * **clustered** — hashes within a few flips of a small center set
//!   (bucket skew without degeneracy),
//! * **all-zeros / all-ones** — every entry identical (the adversarial
//!   distribution that floods MIH buckets and must take the BK-tree
//!   fallback without changing a single answer).
//!
//! Each query compares `within` at radii 0..=16 and `nearest` at several
//! `k`, element-for-element (id, hash *and* distance). On top, the
//! `phash.index.probes == verified + pruned` conservation identity must
//! hold on every index after its query stream.

use crate::report::Violation;
use crate::Params;
use rand::prelude::*;
use squatphi_imghash::index::{linear, HashIndex, Neighbor};
use squatphi_imghash::ImageHash;

const ORACLE: &str = "phash-index";

/// Formats a neighbor list compactly for violation details.
fn brief(ns: &[Neighbor]) -> String {
    let shown: Vec<String> = ns
        .iter()
        .take(6)
        .map(|n| format!("#{}@{}", n.id, n.distance))
        .collect();
    let more = ns.len().saturating_sub(6);
    if more > 0 {
        format!("[{} …+{more}] ({} total)", shown.join(" "), ns.len())
    } else {
        format!("[{}]", shown.join(" "))
    }
}

fn mismatch(
    kind: &str,
    corpus: &str,
    query: u64,
    arg: u64,
    got: &[Neighbor],
    want: &[Neighbor],
) -> Violation {
    Violation {
        oracle: ORACLE,
        input: format!("{corpus} corpus, query {query:016x}, {kind} {arg}"),
        detail: format!("index {} != linear {}", brief(got), brief(want)),
    }
}

/// One seeded corpus family: its name and entries.
fn corpora(seed: u64, params: &Params) -> Vec<(&'static str, Vec<ImageHash>)> {
    let n = params.phash_corpus;
    let mut rng = StdRng::seed_from_u64(seed ^ 0x7068_6173_682d_6978); // "phash-ix"
    let uniform: Vec<ImageHash> = (0..n).map(|_| ImageHash(rng.gen())).collect();

    let centers: Vec<u64> = (0..(n / 50).max(1)).map(|_| rng.gen()).collect();
    let clustered: Vec<ImageHash> = (0..n)
        .map(|_| {
            let mut h = centers[rng.gen_range(0..centers.len())];
            for _ in 0..rng.gen_range(0..=6usize) {
                h ^= 1u64 << rng.gen_range(0..64u32);
            }
            ImageHash(h)
        })
        .collect();

    // Degenerate corpora are smaller: every query touches every entry,
    // so the comparison cost is quadratic in their size.
    let deg = (n / 4).max(8);
    vec![
        ("uniform", uniform),
        ("clustered", clustered),
        ("all-zeros", vec![ImageHash(0); deg]),
        ("all-ones", vec![ImageHash(u64::MAX); deg]),
    ]
}

/// Seeded queries for one corpus: members, near-members, random hashes,
/// and near-degenerate probes so the zeros/ones corpora see non-empty
/// results at small radii too.
fn queries(rng: &mut StdRng, corpus: &[ImageHash], count: usize) -> Vec<u64> {
    let mut out = Vec::with_capacity(count);
    for i in 0..count {
        out.push(match i % 4 {
            0 => corpus[rng.gen_range(0..corpus.len())].0,
            1 => {
                let mut h = corpus[rng.gen_range(0..corpus.len())].0;
                for _ in 0..rng.gen_range(1..=10usize) {
                    h ^= 1u64 << rng.gen_range(0..64u32);
                }
                h
            }
            2 => rng.gen(),
            _ => {
                // A handful of set bits: close to all-zeros, far from
                // all-ones — exercises empty and full result sets.
                let mut h = 0u64;
                for _ in 0..rng.gen_range(0..=16usize) {
                    h |= 1u64 << rng.gen_range(0..64u32);
                }
                h
            }
        });
    }
    out
}

/// Streams every corpus family through `HashIndex` vs `linear`.
pub(crate) fn run_phash_index(seed: u64, params: &Params) -> (u64, Vec<Violation>) {
    let mut cases = 0u64;
    let mut violations = Vec::new();

    for (name, corpus) in corpora(seed, params) {
        let index = HashIndex::from_hashes(corpus.iter().copied());
        let mut rng = StdRng::seed_from_u64(seed ^ name.len() as u64 ^ 0xcafe);
        for query in queries(&mut rng, &corpus, params.phash_queries) {
            let q = ImageHash(query);
            for radius in 0..=16u32 {
                cases += 1;
                let got = index.within(&q, radius);
                let want = linear::within(&corpus, &q, radius);
                if got != want {
                    violations.push(mismatch("radius", name, query, radius as u64, &got, &want));
                }
            }
            for k in [1usize, 5, 17] {
                cases += 1;
                let got = index.nearest(&q, k);
                let want = linear::nearest(&corpus, &q, k);
                if got != want {
                    violations.push(mismatch("k", name, query, k as u64, &got, &want));
                }
            }
        }
        // The probe ledger must reconcile after the whole query stream.
        cases += 1;
        let snap = index.telemetry().snapshot();
        if let Err(vs) = squatphi_telemetry::invariants::phash_index_invariants().check_all(&snap) {
            for v in vs {
                violations.push(Violation {
                    oracle: ORACLE,
                    input: format!("{name} corpus telemetry"),
                    detail: v.to_string(),
                });
            }
        }
    }

    (cases, violations)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Budget;

    fn tiny_params() -> Params {
        let mut p = Budget::Ci.params();
        p.phash_corpus = 400;
        p.phash_queries = 12;
        p
    }

    #[test]
    fn phash_index_is_clean_and_deterministic() {
        let p = tiny_params();
        let (cases_a, va) = run_phash_index(7, &p);
        let (cases_b, vb) = run_phash_index(7, &p);
        assert_eq!(cases_a, cases_b);
        assert_eq!(va, vb);
        assert!(va.is_empty(), "violations: {va:#?}");
        // 4 corpora × 12 queries × (17 radii + 3 k) + 4 ledger checks.
        assert_eq!(cases_a, 4 * 12 * 20 + 4);
    }
}
