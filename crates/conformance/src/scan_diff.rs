//! The legacy↔fingerprint matcher differential oracle (`scan-diff`).
//!
//! The PR 6 scan rebuild replaced the string-probing detector with a
//! fingerprint-indexed one and the contiguous-chunk scheduler with an
//! atomic-cursor block scheduler. Both carry a hard compatibility
//! contract: **byte-identical answers**. This oracle pins it from three
//! directions:
//!
//! 1. **Candidate agreement** — every candidate the forward generators
//!    emit for every brand goes through [`LegacyDetector`] and
//!    [`SquatDetector`]; the match (brand *and* type) must be equal, and
//!    so must the `probes` / `allocations_avoided` counters, which are
//!    maintained at the same counting sites by construction.
//! 2. **Negative agreement** — seeded random domains (overwhelmingly
//!    non-squatting, occasionally mutated toward brand labels so some
//!    hits occur) through both; same equality.
//! 3. **Snapshot agreement** — a synthetic snapshot is scanned with the
//!    production multi-threaded engine and re-classified by a sequential
//!    legacy reference loop; `matches`, `by_type` and `by_brand` must be
//!    byte-identical, which additionally pins the scheduler's
//!    first-record-wins merge order.
//!
//! [`LegacyDetector`]: squatphi_squat::legacy::LegacyDetector
//! [`SquatDetector`]: squatphi_squat::SquatDetector

use crate::report::Violation;
use crate::shrink::minimize_str;
use crate::Params;
use rand::prelude::*;
use squatphi_dnsdb::{scan, synth, SnapshotConfig};
use squatphi_domain::DomainName;
use squatphi_squat::gen::generate_all;
use squatphi_squat::legacy::LegacyDetector;
use squatphi_squat::{BrandRegistry, ClassifyStats, SquatDetector};

fn registry(params: &Params) -> BrandRegistry {
    match params.registry_size {
        Some(n) => BrandRegistry::with_size(n),
        None => BrandRegistry::paper(),
    }
}

/// `Some((detail, minimizable))` when the two detectors disagree on a
/// domain. Counter divergence is reported but not shrunk (a shrunk label
/// changes the probe count trivially, so minimizing is meaningless).
fn disagree(new: &SquatDetector, old: &LegacyDetector, d: &DomainName) -> Option<(String, bool)> {
    let mut sn = ClassifyStats::default();
    let mut so = ClassifyStats::default();
    let a = new.classify_with_stats(d, &mut sn);
    let b = old.classify_with_stats(d, &mut so);
    if a != b {
        return Some((
            format!(
                "fingerprint answered {:?}, legacy answered {:?}",
                a.map(|m| (m.brand, m.squat_type)),
                b.map(|m| (m.brand, m.squat_type)),
            ),
            true,
        ));
    }
    if sn.probes != so.probes || sn.allocations_avoided != so.allocations_avoided {
        return Some((
            format!(
                "counters diverged: probes {} vs {}, allocations_avoided {} vs {}",
                sn.probes, so.probes, sn.allocations_avoided, so.allocations_avoided,
            ),
            false,
        ));
    }
    None
}

fn violation(
    new: &SquatDetector,
    old: &LegacyDetector,
    domain: &str,
    detail: String,
    minimizable: bool,
) -> Violation {
    let input = if minimizable {
        minimize_str(domain, |s| {
            DomainName::parse(s)
                .map(|d| {
                    let mut sn = ClassifyStats::default();
                    let mut so = ClassifyStats::default();
                    new.classify_with_stats(&d, &mut sn) != old.classify_with_stats(&d, &mut so)
                })
                .unwrap_or(false)
        })
    } else {
        domain.to_string()
    };
    Violation {
        oracle: "scan-diff",
        input,
        detail,
    }
}

/// Runs all three scan-diff halves (candidates, negatives, snapshot).
pub(crate) fn run_scan_diff(seed: u64, params: &Params) -> (u64, Vec<Violation>) {
    let reg = registry(params);
    let new = SquatDetector::new(&reg);
    let old = LegacyDetector::new(&reg);
    let mut cases = 0u64;
    let mut violations = Vec::new();

    // 1. Every generated candidate.
    for brand in reg.brands() {
        for cand in generate_all(brand, params.gen) {
            cases += 1;
            if let Some((detail, min)) = disagree(&new, &old, &cand.domain) {
                violations.push(violation(&new, &old, cand.domain.as_str(), detail, min));
            }
        }
    }

    // 2. Seeded negatives, some nudged toward brand labels so this half
    //    also exercises near-miss probe paths (deletion neighborhoods,
    //    confusable folds) rather than pure misses.
    let mut rng = StdRng::seed_from_u64(seed ^ 0x7363_616e_2d64_6966); // "scan-dif"
    let tlds = ["com", "net", "org", "com.ua", "top", "pw"];
    let confusable = ['0', '1', '5', 'q', 'v', '-'];
    for _ in 0..params.scan_diff_negatives {
        let label: String = if rng.gen_bool(0.5) {
            let len = rng.gen_range(4..=16usize);
            (0..len)
                .map(|_| (b'a' + rng.gen_range(0..26u8)) as char)
                .collect()
        } else {
            // Start from a brand label and mutate 1-2 positions.
            let b = &reg.brands()[rng.gen_range(0..reg.len())];
            let mut chars: Vec<char> = b.label.chars().collect();
            for _ in 0..rng.gen_range(1..=2usize) {
                let i = rng.gen_range(0..chars.len());
                chars[i] = if rng.gen_bool(0.5) {
                    confusable[rng.gen_range(0..confusable.len())]
                } else {
                    (b'a' + rng.gen_range(0..26u8)) as char
                };
            }
            chars.into_iter().collect()
        };
        let tld = tlds[rng.gen_range(0..tlds.len())];
        let Ok(domain) = DomainName::from_parts(&label, tld) else {
            continue;
        };
        cases += 1;
        if let Some((detail, min)) = disagree(&new, &old, &domain) {
            violations.push(violation(&new, &old, domain.as_str(), detail, min));
        }
    }

    // 3. Snapshot-level: production engine vs sequential legacy reference.
    let (store, _) = synth::generate(&SnapshotConfig::tiny(), &reg);
    let engine = scan(&store, &reg, &new, 4);
    let reference = legacy_reference_scan(&store, &reg, &old);
    cases += store.len() as u64;
    if engine.matches != reference.matches
        || engine.by_type != reference.by_type
        || engine.by_brand != reference.by_brand
        || engine.scanned != reference.scanned
        || engine.invalid != reference.invalid
    {
        violations.push(Violation {
            oracle: "scan-diff",
            input: format!("synthetic snapshot ({} records)", store.len()),
            detail: format!(
                "engine vs legacy reference: matches {} vs {}, by_type {:?} vs {:?}, scanned {} vs {}, invalid {} vs {}",
                engine.matches.len(),
                reference.matches.len(),
                engine.by_type,
                reference.by_type,
                engine.scanned,
                reference.scanned,
                engine.invalid,
                reference.invalid,
            ),
        });
    }

    (cases, violations)
}

/// What the scan must reproduce: a single-threaded walk of the store in
/// record order with the legacy detector and first-record-wins dedupe.
struct ReferenceOutcome {
    matches: Vec<squatphi_dnsdb::SquatRecord>,
    by_type: [usize; 5],
    by_brand: Vec<usize>,
    scanned: usize,
    invalid: usize,
}

fn legacy_reference_scan(
    store: &squatphi_dnsdb::RecordStore,
    reg: &BrandRegistry,
    old: &LegacyDetector,
) -> ReferenceOutcome {
    let mut out = ReferenceOutcome {
        matches: Vec::new(),
        by_type: [0; 5],
        by_brand: vec![0; reg.len()],
        scanned: 0,
        invalid: 0,
    };
    let mut seen = std::collections::HashSet::new();
    for r in store.records() {
        out.scanned += 1;
        let Ok(domain) = DomainName::parse(&r.domain) else {
            out.invalid += 1;
            continue;
        };
        if let Some(m) = old.classify(&domain) {
            if seen.insert(domain.registrable()) {
                out.by_type[crate::justify::type_index(m.squat_type)] += 1;
                out.by_brand[m.brand] += 1;
                out.matches.push(squatphi_dnsdb::SquatRecord {
                    domain,
                    ip: r.ip,
                    brand: m.brand,
                    squat_type: m.squat_type,
                });
            }
        }
    }
    debug_assert_eq!(
        out.by_type.iter().sum::<usize>(),
        out.matches.len(),
        "reference bookkeeping"
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Budget;

    fn tiny_params() -> Params {
        let mut p = Budget::Ci.params();
        p.registry_size = Some(20);
        p.gen = squatphi_squat::GenBudget {
            homograph: 10,
            bits: 8,
            typo: 10,
            combo: 12,
            wrong_tld: 4,
        };
        p.scan_diff_negatives = 200;
        p
    }

    #[test]
    fn scan_diff_is_clean_and_deterministic() {
        let p = tiny_params();
        let (cases_a, va) = run_scan_diff(7, &p);
        let (cases_b, vb) = run_scan_diff(7, &p);
        assert_eq!(cases_a, cases_b);
        assert_eq!(va, vb);
        assert!(va.is_empty(), "violations: {va:#?}");
        assert!(cases_a > 500, "too few cases: {cases_a}");
    }
}
